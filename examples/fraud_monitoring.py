"""Fraud-pattern emergence — the paper's second motivating application.

Section 1 motivates incremental summarization with "early detection of ...
fraudulent transactions on debit cards": a large transaction history where
a *new, small, dense* pattern appearing in a previously empty region of
feature space is exactly the signal an analyst needs surfaced quickly.

This example streams transaction batches into an incrementally maintained
summary and uses two built-in signals to raise an alert:

* the **β quality measure** flags a bubble as over-filled the moment the
  emerging pattern concentrates enough mass in one summary region — before
  any clustering is run at all;
* the **reachability plot** of the bubbles then confirms a new deep valley
  far from the established behaviour clusters.

Run:  python examples/fraud_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
)
from repro.clustering import BubbleOptics, extract_cluster_tree

DIM = 4  # amount, hour-of-day, merchant risk, geo distance (normalised)
HISTORY = 15_000
BUBBLES = 150
FRAUD_CENTER = np.array([9.0, 3.5, 8.5, 9.5])  # far from normal behaviour


def main() -> None:
    rng = np.random.default_rng(7)

    # Normal behaviour: three legitimate transaction patterns.
    normal = np.vstack(
        [
            rng.normal([2.0, 1.0, 1.0, 1.0], 0.6, size=(7_000, DIM)),
            rng.normal([5.0, 8.0, 2.0, 2.0], 0.6, size=(5_000, DIM)),
            rng.normal([1.0, 5.0, 6.0, 1.5], 0.6, size=(3_000, DIM)),
        ]
    )
    labels = np.array([0] * 7_000 + [1] * 5_000 + [2] * 3_000)
    store = PointStore(dim=DIM)
    store.insert(normal, labels)
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=BUBBLES, seed=7)).build(
        store
    )
    maintainer = IncrementalMaintainer(
        bubbles, store, MaintenanceConfig(seed=7)
    )
    print(
        f"monitoring {store.size} transactions, {BUBBLES} bubbles, "
        f"3 known behaviour patterns\n"
    )

    # Stream: mostly legitimate churn; fraud ramps up from batch 4.
    for batch_num in range(1, 9):
        fraud_count = 0 if batch_num < 4 else 60 * (batch_num - 3)
        legit_count = 450 - fraud_count
        legit = rng.normal(
            [2.0, 1.0, 1.0, 1.0], 0.6, size=(legit_count, DIM)
        )
        fraud = rng.normal(FRAUD_CENTER, 0.3, size=(fraud_count, DIM))
        expired = rng.choice(store.ids(), size=450, replace=False)
        batch = UpdateBatch(
            deletions=tuple(int(i) for i in expired),
            insertions=np.vstack([legit, fraud]),
            insertion_labels=tuple([0] * legit_count + [9] * fraud_count),
        )
        report = maintainer.apply_batch(batch)

        # Signal 1: summary-level anomaly — over-filled bubbles.
        if report.num_over_filled:
            flagged = maintainer.classify().over_filled_ids
            centers = [maintainer.bubbles[b].rep for b in flagged]
            dists = [
                float(np.linalg.norm(c - FRAUD_CENTER)) for c in centers
            ]
            print(
                f"batch {batch_num}: ALERT — {report.num_over_filled} "
                f"over-filled bubble(s); nearest flagged representative is "
                f"{min(dists):.1f} from the (unknown) fraud centre; "
                f"{report.num_rebuilt} bubbles repositioned"
            )
        else:
            print(f"batch {batch_num}: summary quiet ({fraud_count} fraud txns hidden in batch)")

    # Signal 2: the hierarchical clustering confirms a new pattern.
    result = BubbleOptics(min_pts=50).fit(maintainer.bubbles)
    expanded = result.expanded()
    tree = extract_cluster_tree(expanded.reachability, min_size=300)
    print(f"\nfinal clustering finds {len(tree.leaves())} behaviour patterns")
    ids, _, truth = store.snapshot()
    fraud_points = int((truth == 9).sum())

    # How much of the fraud ended up in dedicated bubbles?
    fraud_bubbles = 0
    covered = 0
    for bubble in maintainer.bubbles:
        if bubble.is_empty():
            continue
        member_labels = store.labels_of(bubble.member_ids())
        if (member_labels == 9).mean() > 0.8:
            fraud_bubbles += 1
            covered += int((member_labels == 9).sum())
    print(
        f"{fraud_points} fraudulent transactions live in the database; "
        f"{covered} of them are summarized by {fraud_bubbles} dedicated "
        f"bubble(s) that migrated there via merge/split"
    )


if __name__ == "__main__":
    main()
