"""Comparing summarization methods: bubbles, clustering features, k-means.

Section 1 of the paper frames the design space: compress the database into
summaries, then apply a (slightly modified) standard clustering algorithm
to the summaries. This example runs the three summary pipelines the
library provides over the same database and prints their structures side
by side:

1. **data bubbles + OPTICS** — the paper's choice;
2. **BIRCH CF-tree + OPTICS** with the bubble distance corrections — the
   summarization the paper decided against, upgraded with the same
   corrections (competitive, which is exactly Breunig et al.'s point that
   the corrections carry the quality);
3. **data bubbles + weighted k-means** — a partitioning algorithm on the
   same summary (fast flat clustering when the number of clusters is
   known).

Run:  python examples/summary_methods.py
"""

from __future__ import annotations

import numpy as np

from repro import BubbleBuilder, BubbleConfig, PointStore
from repro.birch import CFTree, cluster_cf_tree
from repro.clustering import (
    BubbleOptics,
    WeightedKMeans,
    extract_cluster_tree,
    render_reachability,
)

SUMMARY_SIZE = 60


def main() -> None:
    rng = np.random.default_rng(11)
    points = np.vstack(
        [
            rng.normal([0.0, 0.0], 0.7, size=(3_000, 2)),
            rng.normal([14.0, 2.0], 0.9, size=(2_500, 2)),
            rng.normal([6.0, 12.0], 0.5, size=(1_500, 2)),
            rng.uniform(-4.0, 18.0, size=(350, 2)),
        ]
    )
    labels = np.array([0] * 3_000 + [1] * 2_500 + [2] * 1_500 + [-1] * 350)
    print(f"database: {len(points)} points, 3 clusters + noise\n")

    # --- 1. data bubbles + OPTICS ---------------------------------------
    store = PointStore(dim=2)
    store.insert(points, labels)
    bubbles = BubbleBuilder(
        BubbleConfig(num_bubbles=SUMMARY_SIZE, seed=11)
    ).build(store)
    bubble_result = BubbleOptics(min_pts=60).fit(bubbles)
    expanded = bubble_result.expanded()
    tree = extract_cluster_tree(expanded.reachability, min_size=700)
    print(f"data bubbles ({SUMMARY_SIZE} summaries) — OPTICS reachability:")
    print(render_reachability(expanded.reachability, width=74, height=8))
    print(f"extracted leaves: {[leaf.size for leaf in tree.leaves()]}\n")

    # --- 2. BIRCH CF-tree + OPTICS --------------------------------------
    cf_tree = CFTree.fit_threshold(points, max_leaf_entries=SUMMARY_SIZE)
    cf_result = cluster_cf_tree(cf_tree, min_pts=60)
    cf_expanded = cf_result.expanded()
    cf_clusters = extract_cluster_tree(cf_expanded.reachability, min_size=700)
    print(
        f"BIRCH CF-tree ({cf_tree.num_leaf_entries} leaf entries, "
        f"threshold {cf_tree.threshold:.2f}) — OPTICS reachability:"
    )
    print(render_reachability(cf_expanded.reachability, width=74, height=8))
    print(
        f"extracted leaves: {[leaf.size for leaf in cf_clusters.leaves()]}\n"
    )

    # --- 3. weighted k-means over the bubbles ---------------------------
    kmeans = WeightedKMeans(k=3, seed=11)
    result = kmeans.fit_bubbles(bubbles)
    sizes = []
    mapping = kmeans.bubble_labels(bubbles)
    for cluster in range(3):
        member_bubbles = [b for b, c in mapping.items() if c == cluster]
        sizes.append(sum(bubbles[b].n for b in member_bubbles))
    print(
        f"weighted k-means (k=3) over the same bubbles: cluster masses "
        f"{sorted(sizes, reverse=True)} "
        f"(inertia {result.inertia:,.0f}, {result.iterations} iterations)"
    )
    print(
        "\nall three pipelines ran on summaries only — the raw "
        f"{len(points)}-point database was scanned once, at construction"
    )


if __name__ == "__main__":
    main()
