"""Quickstart: summarize, maintain incrementally, cluster hierarchically.

This walks the full public API on a small synthetic database:

1. build data bubbles over an initial database,
2. apply a batch of insertions/deletions through the incremental
   maintainer (watch the β quality classes and merge/split at work),
3. run OPTICS on the bubbles and extract the clustering structure,
4. compare the incremental summary's clustering against a from-scratch
   rebuild.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BubbleBuilder,
    BubbleConfig,
    DistanceCounter,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
    UpdateBatch,
)
from repro.clustering import (
    BubbleOptics,
    extract_cluster_tree,
    render_reachability,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. an initial database of two clusters plus noise --------------
    points = np.vstack(
        [
            rng.normal([0.0, 0.0], 1.0, size=(4_000, 2)),
            rng.normal([25.0, 25.0], 1.0, size=(4_000, 2)),
            rng.uniform(-10.0, 35.0, size=(400, 2)),
        ]
    )
    labels = np.array([0] * 4_000 + [1] * 4_000 + [-1] * 400)
    store = PointStore(dim=2)
    store.insert(points, labels)
    print(f"database: {store.size} points in {store.dim}d")

    # --- 2. summarize it into 80 data bubbles ---------------------------
    counter = DistanceCounter()
    builder = BubbleBuilder(BubbleConfig(num_bubbles=80, seed=0), counter)
    bubbles = builder.build(store)
    snap = counter.snapshot()
    print(
        f"built {len(bubbles)} bubbles; triangle inequality pruned "
        f"{snap.pruned_fraction:.0%} of {snap.considered} distance "
        f"computations"
    )

    # --- 3. the database changes: a third cluster appears ---------------
    maintainer = IncrementalMaintainer(
        bubbles, store, MaintenanceConfig(seed=0), counter=counter
    )
    deletions = tuple(
        int(i) for i in rng.choice(store.ids(), size=600, replace=False)
    )
    new_cluster = rng.normal([25.0, -15.0], 1.0, size=(600, 2))
    report = maintainer.apply_batch(
        UpdateBatch(
            deletions=deletions,
            insertions=new_cluster,
            insertion_labels=tuple([2] * 600),
        )
    )
    print(
        f"batch applied: -{report.num_deletions} +{report.num_insertions} "
        f"points; {report.num_over_filled} over-filled bubble(s) found, "
        f"{report.num_rebuilt} bubbles rebuilt by merge/split"
    )

    # --- 4. hierarchical clustering from the summary ---------------------
    result = BubbleOptics(min_pts=40).fit(maintainer.bubbles)
    expanded = result.expanded()
    tree = extract_cluster_tree(expanded.reachability, min_size=400)
    print(f"\nreachability plot over {len(expanded)} expanded entries:")
    print(render_reachability(expanded.reachability, width=72, height=9))
    print(f"cluster tree depth {tree.depth}; leaves:")
    for leaf in tree.leaves():
        print(
            f"  positions [{leaf.start:5d}, {leaf.end:5d})  "
            f"size {leaf.size:5d}  split at {leaf.split_value:.2f}"
        )


if __name__ == "__main__":
    main()
