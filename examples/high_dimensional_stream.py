"""High-dimensional dynamic summarization: incremental vs complete rebuild.

The paper evaluates up to 20 dimensions and measures efficiency in
*distance computations* (Figures 10–11). This example runs the complex
scenario in 20d and prints, per batch, the live cost comparison between

* the incremental scheme (triangle-inequality pruning on), and
* a complete from-scratch rebuild (the naive baseline, no pruning),

together with both summaries' clustering F-scores — the whole Table 1 /
Figure 11 story condensed into one run you can watch.

Run:  python examples/high_dimensional_stream.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig, run_comparison


def main() -> None:
    config = ExperimentConfig(
        scenario="complex",
        dim=20,
        initial_size=8_000,
        num_bubbles=100,
        update_fraction=0.04,
        num_batches=6,
        min_pts=40,
        seed=1,
    )
    print(
        f"complex scenario, {config.dim}d, {config.initial_size} points, "
        f"{config.num_bubbles} bubbles, "
        f"{config.update_fraction:.0%} updates/batch\n"
    )
    result = run_comparison(config)

    header = (
        f"{'batch':>5}  {'inc F':>6}  {'cmp F':>6}  "
        f"{'inc dists':>10}  {'cmp dists':>10}  {'saving':>7}  {'pruned':>6}"
    )
    print(header)
    print("-" * len(header))
    for i, (inc, cmp_) in enumerate(
        zip(result.incremental.measurements, result.complete.measurements),
        start=1,
    ):
        saving = (
            cmp_.report.computed_distances / inc.report.computed_distances
            if inc.report.computed_distances
            else float("inf")
        )
        print(
            f"{i:>5}  {inc.fscore:>6.3f}  {cmp_.fscore:>6.3f}  "
            f"{inc.report.computed_distances:>10,}  "
            f"{cmp_.report.computed_distances:>10,}  "
            f"{saving:>6.1f}x  "
            f"{inc.report.insertion_pruned_fraction:>6.0%}"
        )

    total_inc = result.incremental.total_computed()
    total_cmp = result.complete.total_computed()
    print(
        f"\ntotals: incremental {total_inc:,} vs complete rebuild "
        f"{total_cmp:,} distance computations "
        f"({total_cmp / total_inc:.0f}x saving), "
        f"mean F-scores {result.incremental.mean_fscore():.3f} vs "
        f"{result.complete.mean_fscore():.3f}"
    )


if __name__ == "__main__":
    main()
