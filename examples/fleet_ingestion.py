"""Multi-tenant fleet ingestion — one summarizer per customer stream.

The paper motivates data bubbles with *per-database* summarization:
each customer (tenant) owns an evolving transaction history whose
hierarchical clustering structure must stay current. At service scale
that means many independent summaries, ingested concurrently, each
durable on its own WAL.

This example drives the whole `repro.service` stack in-process:

1. generate a seeded, Zipf-skewed, bursty event stream for 8 tenants
   (a few heavy hitters, a long tail — the shape real traffic has);
2. serve it into a fleet of shards (synchronous mode, so the run is
   bit-reproducible), with bounded queues and micro-batched appends;
3. print the fleet rollup: per-tenant throughput, backpressure
   counters, p95 ingest latency, window/bubble sizes;
4. shut the fleet down and recover it wholesale from its WAL
   directories, verifying every shard resumes exactly where the
   durable log left it.

Run:  python examples/fleet_ingestion.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.service import (
    FleetConfig,
    FleetManager,
    LoadSpec,
    generate_events,
    render_rollup,
    serve_events,
)

SPEC = LoadSpec(
    tenants=8, events=3_000, dim=2, seed=42, zipf_s=1.1, burst_mean=24.0
)
CONFIG = FleetConfig(
    dim=2,
    window_size=1_000,
    points_per_bubble=40,
    checkpoint_every=8,
    seed=42,
    fsync=False,  # demo speed; production keeps fsync on
    queue_points=128,
    batch_points=32,
    workers=0,  # synchronous mode: bit-reproducible batch boundaries
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "fleet"

        print(f"=== serving {SPEC.events} events to {SPEC.tenants} "
              "tenants ===")
        fleet = FleetManager(root, CONFIG)
        stats = serve_events(fleet, generate_events(SPEC))
        print(render_rollup(stats.rollup))
        print(
            f"served {stats.accepted} events in "
            f"{stats.elapsed_seconds:.2f}s "
            f"({stats.points_per_second:.0f} points/s)"
        )

        applied = {
            tenant: fleet.shard(tenant).summarizer.batches_applied
            for tenant in fleet.tenants
        }

        print("\n=== recovering the fleet from its WAL directories ===")
        recovered = FleetManager.recover(root, CONFIG)
        try:
            for tenant in recovered.tenants:
                resumed = recovered.shard(tenant).summarizer
                expected = applied[tenant]
                status = "ok" if resumed.batches_applied == expected else (
                    f"MISMATCH (expected {expected})"
                )
                maintainer = resumed.maintainer
                bubbles = (
                    maintainer.active_count if maintainer is not None else 0
                )
                print(
                    f"  {tenant}: {resumed.batches_applied} batches, "
                    f"{resumed.size} window points, "
                    f"{bubbles} bubbles -> {status}"
                )
                assert resumed.batches_applied == expected
        finally:
            recovered.drain()
        print("\nevery shard resumed at its durable position.")


if __name__ == "__main__":
    main()
