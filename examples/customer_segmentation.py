"""Customer segmentation drift — the paper's marketing motivation.

Section 1: "for effective marketing and early detection of changing
purchasing patterns ... it is very important to maintain a large history of
transactions for all current customers, in order to detect possible
changes in the clustering structures, which could indicate possible
changes in the customer behaviour."

This example simulates customer profiles in a 5-dimensional feature space
(think: recency, frequency, monetary value, basket breadth, discount
affinity). Over time one established segment erodes (customers churn), a
new segment emerges (a product launch attracts a new audience), and one
segment drifts (gradual behaviour change). The incremental data bubbles
track all of it; after every batch we re-derive the hierarchical
clustering from the summary — never from the raw history — and report the
segment structure.

Run:  python examples/customer_segmentation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
    PointStore,
)
from repro.clustering import BubbleOptics, extract_cluster_tree
from repro.data import ComplexScenario, UpdateStream
from repro.evaluation import fscore_from_labels
from repro.clustering import majority_bubble_labels

DIM = 5
CUSTOMERS = 12_000
BUBBLES = 120
BATCHES = 8
UPDATE_FRACTION = 0.08  # 8% of profiles change per reporting period


def segment_report(maintainer, store) -> tuple[int, float]:
    """Cluster the current summary; return (num segments, F vs truth)."""
    result = BubbleOptics(min_pts=60).fit(maintainer.bubbles)
    expanded = result.expanded()
    tree = extract_cluster_tree(
        expanded.reachability, min_size=int(0.03 * store.size)
    )
    spans = [leaf.span() for leaf in tree.leaves()]
    mapping = majority_bubble_labels(expanded, spans)

    ids, _, truth = store.snapshot()
    position = {int(pid): i for i, pid in enumerate(ids)}
    predicted = np.full(store.size, -1, dtype=np.int64)
    for bubble in maintainer.bubbles:
        label = mapping.get(bubble.bubble_id, -1)
        for pid in bubble.members:
            predicted[position[pid]] = label
    fscore = fscore_from_labels(truth, predicted).overall
    return len(spans), fscore


def main() -> None:
    # The complex scenario IS the marketing story: stable segments churn,
    # one segment disappears, one emerges, one drifts.
    scenario = ComplexScenario(
        dim=DIM, initial_size=CUSTOMERS, seed=42, noise_fraction=0.04
    )
    store = PointStore(dim=DIM)
    scenario.populate(store)

    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=BUBBLES, seed=42)).build(
        store
    )
    maintainer = IncrementalMaintainer(
        bubbles, store, MaintenanceConfig(seed=42)
    )

    print(f"{CUSTOMERS} customer profiles, {DIM} features, {BUBBLES} bubbles")
    print(
        f"dynamics: segment {scenario.victim_label} churning away, "
        f"segment {scenario.appearing_label} emerging, "
        f"segment {scenario.mover_label} drifting\n"
    )
    num_segments, fscore = segment_report(maintainer, store)
    print(
        f"period  0: {num_segments} segments detected "
        f"(F-score vs truth {fscore:.3f})"
    )

    stream = UpdateStream(
        scenario, store, update_fraction=UPDATE_FRACTION, num_batches=BATCHES
    )
    for period, batch in enumerate(stream, start=1):
        report = maintainer.apply_batch(batch)
        num_segments, fscore = segment_report(maintainer, store)
        note = (
            f", {report.num_rebuilt} bubbles repositioned"
            if report.num_rebuilt
            else ""
        )
        print(
            f"period {period:2d}: {num_segments} segments detected "
            f"(F-score vs truth {fscore:.3f}){note}"
        )

    emerging = store.ids_with_label(scenario.appearing_label).size
    churned = store.ids_with_label(scenario.victim_label).size
    print(
        f"\nfinal state: emerging segment holds {emerging} customers; "
        f"churning segment is down to {churned}"
    )
    print(
        "the summary was never rebuilt from scratch — every report came "
        "from incrementally maintained data bubbles"
    )


if __name__ == "__main__":
    main()
