"""Stream summarization with a sliding window (future-work extension).

The paper frames a data stream as "a degenerate case of an incremental
database where the database size is extremely small (the size of a window
in a stream), and insertions and deletions arise such that the current
database content is completely replaced" (Section 1), and lists stream
compression via incremental bubbles as future work (Section 6).

This example feeds a sensor-style stream whose distribution shifts twice
into a :class:`repro.SlidingWindowSummarizer`. The summary follows the
window: after each regime change, the bubble population migrates to the
new distribution within a few chunks, and the reachability plot of the
summary shows the old structure dissolving while the new one forms — all
without ever re-summarizing the window from scratch.

Run:  python examples/stream_window.py
"""

from __future__ import annotations

import numpy as np

from repro import SlidingWindowSummarizer
from repro.clustering import BubbleOptics, extract_cluster_tree

WINDOW = 2_000
CHUNK = 250
REGIMES = [
    # (chunks, cluster centres) — three operating regimes of a "sensor"
    (10, [(0.0, 0.0), (12.0, 0.0)]),
    (10, [(0.0, 0.0), (6.0, 10.0), (12.0, 0.0)]),
    (10, [(25.0, 25.0)]),
]


def current_structure(stream: SlidingWindowSummarizer) -> list[int]:
    """Sizes of the clusters currently visible in the window summary."""
    result = BubbleOptics(min_pts=40).fit(stream.summary)
    expanded = result.expanded()
    tree = extract_cluster_tree(
        expanded.reachability, min_size=int(0.1 * stream.size)
    )
    return sorted((leaf.size for leaf in tree.leaves()), reverse=True)


def main() -> None:
    rng = np.random.default_rng(3)
    stream = SlidingWindowSummarizer(
        dim=2, window_size=WINDOW, points_per_bubble=50, seed=3
    )
    print(
        f"window {WINDOW} points, chunks of {CHUNK}, "
        f"~{WINDOW // 50} bubbles\n"
    )
    chunk_index = 0
    for regime, (chunks, centers) in enumerate(REGIMES, start=1):
        print(f"--- regime {regime}: {len(centers)} cluster(s) at {centers}")
        for _ in range(chunks):
            chunk_index += 1
            which = rng.integers(len(centers), size=CHUNK)
            points = np.stack(
                [
                    rng.normal(centers[k], 0.6, size=2)
                    for k in which
                ]
            )
            report = stream.append(points)
            if report is None:
                continue
            if chunk_index % 5 == 0:
                sizes = current_structure(stream)
                note = (
                    f", {report.num_rebuilt} bubbles repositioned"
                    if report.num_rebuilt
                    else ""
                )
                print(
                    f"  chunk {chunk_index:3d}: window clusters "
                    f"{sizes}{note} "
                    f"(active bubbles: {stream.maintainer.active_count})"
                )
    snap = stream.counter.snapshot()
    print(
        f"\nstream done: {snap.computed:,} distance computations total, "
        f"{snap.pruned_fraction:.0%} of assignment candidates pruned"
    )


if __name__ == "__main__":
    main()
