"""Experiment harness: one module per evaluation table/figure.

* :mod:`~repro.experiments.harness` — shared pipeline and the two-arm
  scenario comparison.
* :mod:`~repro.experiments.table1` — Table 1 (F-score + compactness).
* :mod:`~repro.experiments.figure7` — quality-measure comparison.
* :mod:`~repro.experiments.figure9` — rebuilt-bubble fraction sweep.
* :mod:`~repro.experiments.figure10` — triangle-inequality pruning sweep.
* :mod:`~repro.experiments.figure11` — distance saving factor sweep.
"""

from .figure7 import Figure7Result, render_figure7, run_figure7
from .figure9 import (
    DEFAULT_UPDATE_FRACTIONS,
    Figure9Point,
    render_figure9,
    run_figure9,
)
from .figure10 import (
    Figure10Point,
    construction_pruning,
    render_figure10,
    run_figure10,
)
from .figure8 import Figure8Snapshot, render_figure8, run_figure8
from .figure11 import Figure11Point, render_figure11, run_figure11
from .harness import (
    ArmTrace,
    BatchMeasurement,
    ComparisonResult,
    ExperimentConfig,
    candidate_point_sets,
    run_comparison,
    score_summary,
)
from .reporting import render_series, render_table
from .scalability import (
    DimensionPoint,
    SizePoint,
    render_dimension_sweep,
    render_size_sweep,
    run_dimension_sweep,
    run_size_sweep,
)
from .staleness import StalenessResult, render_staleness, run_staleness
from .table1 import TABLE1_DATASETS, Table1Row, render_table1, run_table1

__all__ = [
    "ArmTrace",
    "BatchMeasurement",
    "ComparisonResult",
    "DEFAULT_UPDATE_FRACTIONS",
    "DimensionPoint",
    "ExperimentConfig",
    "Figure7Result",
    "Figure8Snapshot",
    "Figure9Point",
    "Figure10Point",
    "Figure11Point",
    "SizePoint",
    "StalenessResult",
    "TABLE1_DATASETS",
    "Table1Row",
    "candidate_point_sets",
    "construction_pruning",
    "render_dimension_sweep",
    "render_figure7",
    "render_figure8",
    "render_figure9",
    "render_figure10",
    "render_figure11",
    "render_series",
    "render_size_sweep",
    "render_staleness",
    "render_table",
    "render_table1",
    "run_comparison",
    "run_dimension_sweep",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_size_sweep",
    "run_staleness",
    "run_table1",
    "score_summary",
]
