"""Staleness — the motivation experiment behind incremental summaries.

Section 1: completely reapplying the summarization after every batch "is
prohibitively slow for fast changing and large databases, especially if an
up-to-date clustering structure is required frequently". The practical
alternative to the incremental scheme is therefore *periodic* rebuilding —
and between rebuilds the analyst works with a **stale** summary: its
bubbles still describe points that may have been deleted, and know nothing
about the points inserted since.

This experiment makes that cost measurable. Both arms see the same update
stream on the same logical database:

* the **incremental** arm maintains its bubbles every batch (always
  current);
* the **periodic** arm rebuilds from scratch every ``rebuild_every``
  batches and serves the stale summary in between. Scoring is honest
  about staleness: extracted clusters keep only their still-alive member
  points (deleted members cannot be reported), and freshly inserted
  points belong to no cluster (pure recall loss).

The output is a per-batch F-score trace for each arm plus their average
distance cost — the quality-vs-cost frontier the paper's scheme improves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering import BubbleOptics, extract_candidates
from ..core import (
    BubbleBuilder,
    BubbleConfig,
    BubbleSet,
    IncrementalMaintainer,
    MaintenanceConfig,
)
from ..data import UpdateStream, apply_raw, clone_batch_for, make_scenario
from ..database import PointStore
from ..evaluation import RunSummary, best_match_fscore, summarize
from ..geometry import DistanceCounter
from .harness import ExperimentConfig
from .reporting import render_table

__all__ = ["StalenessResult", "run_staleness", "render_staleness"]


@dataclass(frozen=True)
class StalenessResult:
    """Outcome of one staleness comparison.

    Attributes:
        rebuild_every: the periodic arm's rebuild interval in batches.
        incremental_fscores: per-batch F of the always-current summary.
        periodic_fscores: per-batch F of the periodically rebuilt summary
            (stale between rebuilds).
        incremental_cost: distance computations per batch (summary).
        periodic_cost: distance computations per batch (summary; zero on
            non-rebuild batches).
    """

    rebuild_every: int
    incremental_fscores: tuple[float, ...]
    periodic_fscores: tuple[float, ...]
    incremental_cost: RunSummary
    periodic_cost: RunSummary

    @property
    def incremental_mean(self) -> float:
        """Mean per-batch F of the incremental arm."""
        return float(np.mean(self.incremental_fscores))

    @property
    def periodic_mean(self) -> float:
        """Mean per-batch F of the periodic arm."""
        return float(np.mean(self.periodic_fscores))


def _stale_score(
    bubbles: BubbleSet,
    store: PointStore,
    config: ExperimentConfig,
) -> float:
    """Score a possibly stale summary against the *current* database."""
    alive_ids, _, truth = store.snapshot()
    alive = set(int(i) for i in alive_ids)
    result = BubbleOptics(min_pts=config.min_pts).fit(bubbles)
    expanded = result.expanded()
    min_size = max(2, int(config.min_cluster_size * store.size))
    spans = extract_candidates(
        expanded.reachability, min_size=min_size, num_levels=config.num_levels
    )

    source = expanded.source
    totals = {
        int(b): int(c) for b, c in zip(*np.unique(source, return_counts=True))
    }
    candidates: list[np.ndarray] = []
    for start, end in spans:
        inside, counts = np.unique(source[start:end], return_counts=True)
        chosen = [
            int(b)
            for b, c in zip(inside, counts)
            if 2 * int(c) >= totals[int(b)]
        ]
        members: list[int] = []
        for bubble_id in chosen:
            # A stale summary may reference deleted points; only the
            # still-alive ones can be reported to the analyst.
            members.extend(
                pid for pid in bubbles[bubble_id].members if pid in alive
            )
        if members:
            positions = np.searchsorted(
                alive_ids, np.asarray(sorted(members), dtype=np.int64)
            )
            candidates.append(positions)
        else:
            candidates.append(np.empty(0, dtype=np.int64))
    return best_match_fscore(truth, candidates).overall


def run_staleness(
    config: ExperimentConfig | None = None,
    rebuild_every: int = 5,
    repetition: int = 0,
) -> StalenessResult:
    """Run the incremental-vs-periodic-rebuild comparison once."""
    if config is None:
        config = ExperimentConfig(scenario="complex")
    if rebuild_every < 1:
        raise ValueError(
            f"rebuild_every must be >= 1, got {rebuild_every}"
        )
    seed = config.seed + repetition
    scenario = make_scenario(
        config.scenario, config.dim, config.initial_size, seed=seed
    )
    points, labels = scenario.initial()

    store_inc = PointStore(dim=config.dim)
    store_inc.insert(points, labels)
    store_per = PointStore(dim=config.dim)
    store_per.insert(points, labels)

    counter_inc = DistanceCounter()
    bubbles_inc = BubbleBuilder(
        BubbleConfig(num_bubbles=config.num_bubbles, seed=seed),
        counter=counter_inc,
    ).build(store_inc)
    incremental = IncrementalMaintainer(
        bubbles_inc,
        store_inc,
        MaintenanceConfig(probability=config.probability, seed=seed),
        counter=counter_inc,
    )

    counter_per = DistanceCounter()
    periodic_builder = BubbleBuilder(
        BubbleConfig(
            num_bubbles=config.num_bubbles,
            use_triangle_inequality=False,
            seed=seed,
        ),
        counter=counter_per,
    )
    bubbles_per = periodic_builder.build(store_per)

    inc_fscores: list[float] = []
    per_fscores: list[float] = []
    inc_costs: list[float] = []
    per_costs: list[float] = []

    stream = UpdateStream(
        scenario,
        store_inc,
        update_fraction=config.update_fraction,
        num_batches=config.num_batches,
    )
    for index, batch in enumerate(stream, start=1):
        mirrored = clone_batch_for(batch, store_inc, store_per)

        before = counter_inc.snapshot()
        incremental.apply_batch(batch)
        inc_costs.append(float((counter_inc.snapshot() - before).computed))

        before = counter_per.snapshot()
        apply_raw(store_per, mirrored)
        if index % rebuild_every == 0:
            bubbles_per = periodic_builder.build(store_per)
        per_costs.append(float((counter_per.snapshot() - before).computed))

        inc_fscores.append(
            _stale_score(incremental.bubbles, store_inc, config)
        )
        per_fscores.append(_stale_score(bubbles_per, store_per, config))

    return StalenessResult(
        rebuild_every=rebuild_every,
        incremental_fscores=tuple(inc_fscores),
        periodic_fscores=tuple(per_fscores),
        incremental_cost=summarize(inc_costs),
        periodic_cost=summarize(per_costs),
    )


def render_staleness(result: StalenessResult) -> str:
    """Format the per-batch trace as a table."""
    rows = [
        [
            batch + 1,
            f"{inc:.4f}",
            f"{per:.4f}",
            "rebuild" if (batch + 1) % result.rebuild_every == 0 else "stale",
        ]
        for batch, (inc, per) in enumerate(
            zip(result.incremental_fscores, result.periodic_fscores)
        )
    ]
    table = render_table(
        headers=[
            "batch",
            "incremental F",
            f"periodic F (every {result.rebuild_every})",
            "periodic arm state",
        ],
        rows=rows,
        title="Staleness: always-current incremental summary vs periodic "
        "rebuilds (complex scenario).",
    )
    footer = (
        f"\nmeans: incremental {result.incremental_mean:.4f} at "
        f"{result.incremental_cost.mean:,.0f} dists/batch; periodic "
        f"{result.periodic_mean:.4f} at "
        f"{result.periodic_cost.mean:,.0f} dists/batch"
    )
    return table + footer
