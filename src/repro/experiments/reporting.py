"""Plain-text rendering of experiment results.

The benchmark harness "prints the same rows/series the paper reports":
Table 1 rows (dataset × scheme × F-score/compactness mean/std) and the
Figure 9/10/11 series (x = update percentage, y = the measured quantity).
These helpers produce aligned ASCII tables so the regenerated artifacts are
directly comparable to the paper side by side.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    Cells are stringified with ``str``; floats should be pre-formatted by
    the caller (each experiment knows its own precision).
    """
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[object, object]],
    title: str | None = None,
) -> str:
    """Render an (x, y) series as a two-column table."""
    return render_table(
        headers=[x_label, y_label],
        rows=[list(p) for p in points],
        title=title,
    )
