"""Figure 8 — the complex database and its clustering structure over time.

Figure 8 of the paper is an illustration: snapshots of the complex
database (random churn + appearing + disappearing + moving clusters) as
the updates progress. This module regenerates it in terminal form: for a
handful of checkpoints along the update stream it prints the ASCII
reachability plot of the incrementally maintained summary, so the
structural changes — a valley fading out, a new valley forming, a valley
sliding — are visible exactly where the paper shows scatter plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clustering import BubbleOptics, render_reachability
from ..core import (
    BubbleBuilder,
    BubbleConfig,
    IncrementalMaintainer,
    MaintenanceConfig,
)
from ..data import UpdateStream, make_scenario
from ..database import PointStore
from .harness import ExperimentConfig

__all__ = ["Figure8Snapshot", "run_figure8", "render_figure8"]


@dataclass(frozen=True)
class Figure8Snapshot:
    """One checkpoint of the evolving clustering structure.

    Attributes:
        batch_index: how many update batches had been applied (0 = the
            initial database).
        plot_text: ASCII reachability plot of the summary at that point.
        num_rebuilt: bubbles rebuilt by the batch leading to this
            checkpoint (0 for the initial one).
    """

    batch_index: int
    plot_text: str
    num_rebuilt: int


def run_figure8(
    config: ExperimentConfig | None = None,
    checkpoints: tuple[int, ...] = (0, 3, 6, 10),
    width: int = 78,
    height: int = 10,
) -> list[Figure8Snapshot]:
    """Drive the complex scenario and capture reachability snapshots."""
    if config is None:
        config = ExperimentConfig(scenario="complex")
    scenario = make_scenario(
        "complex", config.dim, config.initial_size, seed=config.seed
    )
    store = PointStore(dim=config.dim)
    scenario.populate(store)
    bubbles = BubbleBuilder(
        BubbleConfig(num_bubbles=config.num_bubbles, seed=config.seed)
    ).build(store)
    maintainer = IncrementalMaintainer(
        bubbles,
        store,
        MaintenanceConfig(probability=config.probability, seed=config.seed),
    )

    def snapshot(batch_index: int, rebuilt: int) -> Figure8Snapshot:
        result = BubbleOptics(min_pts=config.min_pts).fit(bubbles)
        expanded = result.expanded()
        return Figure8Snapshot(
            batch_index=batch_index,
            plot_text=render_reachability(
                expanded.reachability, width=width, height=height
            ),
            num_rebuilt=rebuilt,
        )

    snapshots: list[Figure8Snapshot] = []
    if 0 in checkpoints:
        snapshots.append(snapshot(0, 0))
    last = max(checkpoints)
    stream = UpdateStream(
        scenario,
        store,
        update_fraction=config.update_fraction,
        num_batches=last,
    )
    for index, batch in enumerate(stream, start=1):
        report = maintainer.apply_batch(batch)
        if index in checkpoints:
            snapshots.append(snapshot(index, report.num_rebuilt))
    return snapshots


def render_figure8(snapshots: list[Figure8Snapshot]) -> str:
    """Concatenate the checkpoint plots with headers."""
    blocks = [
        "Figure 8. Clustering structure of the complex database over time\n"
        "(reachability plots of the incrementally maintained summary)."
    ]
    for snap in snapshots:
        rebuilt = (
            f" ({snap.num_rebuilt} bubbles rebuilt by this batch)"
            if snap.num_rebuilt
            else ""
        )
        blocks.append(
            f"\nafter {snap.batch_index} update batch(es){rebuilt}:\n"
            f"{snap.plot_text}"
        )
    return "\n".join(blocks)
