"""Table 1 — F-score and compactness, incremental vs complete rebuild.

The paper's Table 1 evaluates eleven dataset/dimension combinations, each
under both schemes, reporting mean and standard deviation over 10
repetitions of the update simulation:

    Random2d, Appear2d, Disappear2d, Extappear2d, Gradmove2d,
    Random10d, Extappear10d, Complex2d, Complex5d, Complex10d, Complex20d

:func:`run_table1` reproduces exactly those rows. Expected shape (the
reproduction contract): the incremental F-scores stay within a few points
of — and sometimes above — the complete-rebuild scores, and incremental
compactness is comparable (often lower), demonstrating effective
repositioning.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..evaluation import RunSummary, summarize
from .harness import ExperimentConfig, run_comparison
from .reporting import render_table

__all__ = ["Table1Row", "TABLE1_DATASETS", "run_table1", "render_table1"]

#: The paper's dataset list as (display name, scenario kind, dimension).
TABLE1_DATASETS: tuple[tuple[str, str, int], ...] = (
    ("Random2d", "random", 2),
    ("Appear2d", "appear", 2),
    ("Disappear2d", "disappear", 2),
    ("Extappear2d", "extappear", 2),
    ("Gradmove2d", "gradmove", 2),
    ("Random10d", "random", 10),
    ("Extappear10d", "extappear", 10),
    ("Complex2d", "complex", 2),
    ("Complex5d", "complex", 5),
    ("Complex10d", "complex", 10),
    ("Complex20d", "complex", 20),
)


@dataclass(frozen=True)
class Table1Row:
    """One dataset × scheme row of Table 1.

    Attributes:
        dataset: display name (e.g. ``Complex10d``).
        scheme: ``"complete"`` or ``"inc"``.
        fscore: F-score summary over repetitions.
        compactness: compactness summary over repetitions.
    """

    dataset: str
    scheme: str
    fscore: RunSummary
    compactness: RunSummary


def run_table1(
    base: ExperimentConfig | None = None,
    repetitions: int = 10,
    datasets: tuple[tuple[str, str, int], ...] = TABLE1_DATASETS,
) -> list[Table1Row]:
    """Regenerate Table 1.

    Args:
        base: shared experiment parameters; the scenario kind and dimension
            are overridden per dataset.
        repetitions: simulation repetitions per dataset (10 in the paper).
        datasets: which rows to produce (subset for quick runs).

    Returns:
        Two rows (complete, inc) per dataset, in dataset order.
    """
    if base is None:
        base = ExperimentConfig()
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")

    rows: list[Table1Row] = []
    for name, kind, dim in datasets:
        config = replace(base, scenario=kind, dim=dim)
        fscores_inc, fscores_cmp = [], []
        compact_inc, compact_cmp = [], []
        for rep in range(repetitions):
            result = run_comparison(config, repetition=rep)
            fscores_inc.append(result.incremental.mean_fscore())
            fscores_cmp.append(result.complete.mean_fscore())
            compact_inc.append(result.incremental.mean_compactness())
            compact_cmp.append(result.complete.mean_compactness())
        rows.append(
            Table1Row(
                dataset=name,
                scheme="complete",
                fscore=summarize(fscores_cmp),
                compactness=summarize(compact_cmp),
            )
        )
        rows.append(
            Table1Row(
                dataset=name,
                scheme="inc",
                fscore=summarize(fscores_inc),
                compactness=summarize(compact_inc),
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Format Table 1 rows the way the paper prints them."""
    return render_table(
        headers=[
            "Dataset",
            "Scheme",
            "Fscore mean",
            "Fscore std",
            "Compactness mean",
            "Compactness std",
        ],
        rows=[
            [
                row.dataset,
                row.scheme,
                f"{row.fscore.mean:.4f}",
                f"{row.fscore.std:.4f}",
                f"{row.compactness.mean:.1f}",
                f"{row.compactness.std:.1f}",
            ]
            for row in rows
        ],
        title="Table 1. Performance evaluation of incremental data bubbles "
        "and the resulting clustering structure.",
    )
