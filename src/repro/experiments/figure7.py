"""Figure 7 — β quality measure vs the extent-based baseline.

The paper's qualitative experiment: a simple database with two clusters;
during the updates the middle cluster disappears and two new clusters
appear far to the right. With the **extent** measure, the bubbles freed by
the deleted cluster are repositioned, but the inserted clusters never
attract bubbles — one pre-existing bubble silently absorbs both, and the
clustering structure is distorted. With the **β** measure the absorbing
bubble's point fraction explodes, it is flagged over-filled, and the
merge/split machinery moves bubbles into the new region.

:func:`run_figure7` quantifies the picture: it drives the same update
stream through two incremental maintainers that differ only in their
quality measure and reports, per measure, the number of (non-empty)
bubbles that ended up summarizing the new clusters, the overall clustering
F-score, and the F-score restricted to the two appeared clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering import BubbleOptics, extract_candidates
from ..core import (
    BetaQuality,
    BubbleBuilder,
    BubbleConfig,
    ExtentQuality,
    IncrementalMaintainer,
    MaintenanceConfig,
)
from ..core.quality import QualityMeasure
from ..data import Figure7Scenario, UpdateStream, apply_raw, clone_batch_for
from ..database import PointStore, UpdateBatch
from ..evaluation import best_match_fscore
from .harness import ExperimentConfig, candidate_point_sets, score_summary
from .reporting import render_table

__all__ = ["Figure7Result", "run_figure7", "render_figure7"]

#: Ground-truth labels Figure7Scenario assigns to its appearing clusters.
_NEW_CLUSTER_LABELS: tuple[int, int] = (2, 3)


@dataclass(frozen=True)
class Figure7Result:
    """Outcome of the quality-measure comparison.

    Attributes:
        beta_fscore: final overall F-score under the β measure.
        extent_fscore: final overall F-score under the extent measure.
        beta_bubbles_on_new: non-empty bubbles summarizing the appeared
            clusters under the β measure.
        extent_bubbles_on_new: same under the extent measure.
        beta_new_cluster_fscore: F restricted to the appeared clusters.
        extent_new_cluster_fscore: same under the extent measure.
    """

    beta_fscore: float
    extent_fscore: float
    beta_bubbles_on_new: int
    extent_bubbles_on_new: int
    beta_new_cluster_fscore: float
    extent_new_cluster_fscore: float


def _bubbles_near(
    bubbles, centers: tuple[np.ndarray, ...], radius: float
) -> int:
    """Count non-empty bubbles whose representative lies near any centre."""
    count = 0
    for bubble in bubbles:
        if bubble.is_empty():
            continue
        if any(
            float(np.linalg.norm(bubble.rep - center)) <= radius
            for center in centers
        ):
            count += 1
    return count


def _new_cluster_fscore(
    bubbles, store: PointStore, config: ExperimentConfig
) -> float:
    """F-score counting only the two appeared clusters as ground truth."""
    alive_ids, _, truth = store.snapshot()
    result = BubbleOptics(min_pts=config.min_pts).fit(bubbles)
    expanded = result.expanded()
    min_size = max(2, int(config.min_cluster_size * store.size))
    spans = extract_candidates(
        expanded.reachability, min_size=min_size, num_levels=config.num_levels
    )
    candidates = candidate_point_sets(expanded, spans, bubbles, alive_ids)
    masked = np.where(np.isin(truth, list(_NEW_CLUSTER_LABELS)), truth, -1)
    return best_match_fscore(masked, candidates).overall


def _replay_arm(
    quality: QualityMeasure,
    scenario: Figure7Scenario,
    points: np.ndarray,
    labels: np.ndarray,
    raw_batches: list[UpdateBatch],
    config: ExperimentConfig,
) -> tuple[float, int, float]:
    """Drive one quality measure over the shared batch stream."""
    # A reference store replays the raw updates so batch deletion ids
    # (generated against the original stream store) can be translated.
    reference = PointStore(dim=config.dim)
    reference.insert(points, labels)
    store = PointStore(dim=config.dim)
    store.insert(points, labels)

    bubbles = BubbleBuilder(
        BubbleConfig(num_bubbles=config.num_bubbles, seed=config.seed)
    ).build(store)
    maintainer = IncrementalMaintainer(
        bubbles,
        store,
        config=MaintenanceConfig(
            probability=config.probability, seed=config.seed
        ),
        quality=quality,
    )
    for batch in raw_batches:
        translated = clone_batch_for(batch, reference, store)
        apply_raw(reference, batch)
        maintainer.apply_batch(translated)

    fscore, _ = score_summary(bubbles, store, config)
    near = _bubbles_near(bubbles, scenario.new_cluster_centers, radius=5.0)
    new_fscore = _new_cluster_fscore(bubbles, store, config)
    return fscore, near, new_fscore


def run_figure7(config: ExperimentConfig | None = None) -> Figure7Result:
    """Run the Figure 7 comparison (β vs extent quality measure)."""
    if config is None:
        config = ExperimentConfig(
            scenario="figure7",
            dim=2,
            initial_size=4000,
            num_bubbles=50,
            update_fraction=0.1,
            num_batches=12,
        )
    scenario = Figure7Scenario(
        dim=config.dim, initial_size=config.initial_size, seed=config.seed
    )
    points, labels = scenario.initial()

    # Generate one shared stream of batches; each arm replays a clone.
    stream_store = PointStore(dim=config.dim)
    stream_store.insert(points, labels)
    raw_batches: list[UpdateBatch] = []
    stream = UpdateStream(
        scenario,
        stream_store,
        update_fraction=config.update_fraction,
        num_batches=config.num_batches,
    )
    for batch in stream:
        raw_batches.append(batch)
        apply_raw(stream_store, batch)

    beta_f, beta_near, beta_new = _replay_arm(
        BetaQuality(config.probability),
        scenario, points, labels, raw_batches, config,
    )
    extent_f, extent_near, extent_new = _replay_arm(
        ExtentQuality(config.probability),
        scenario, points, labels, raw_batches, config,
    )
    return Figure7Result(
        beta_fscore=beta_f,
        extent_fscore=extent_f,
        beta_bubbles_on_new=beta_near,
        extent_bubbles_on_new=extent_near,
        beta_new_cluster_fscore=beta_new,
        extent_new_cluster_fscore=extent_new,
    )


def render_figure7(result: Figure7Result) -> str:
    """Format the Figure 7 comparison as a small table."""
    return render_table(
        headers=[
            "Quality measure",
            "Fscore",
            "Fscore (new clusters)",
            "Bubbles on new clusters",
        ],
        rows=[
            [
                "fraction of points (beta)",
                f"{result.beta_fscore:.4f}",
                f"{result.beta_new_cluster_fscore:.4f}",
                result.beta_bubbles_on_new,
            ],
            [
                "extent",
                f"{result.extent_fscore:.4f}",
                f"{result.extent_new_cluster_fscore:.4f}",
                result.extent_bubbles_on_new,
            ],
        ],
        title="Figure 7. Adaptation of data bubbles under the two quality "
        "measures (middle cluster deleted, two clusters inserted far right).",
    )
