"""Figure 11 — distance saving factor of incremental vs complete rebuild.

The headline efficiency result: "the average distance saving factor, which
measures the fraction of the distance computations we save by using the
incremental data bubbles with the triangle inequalities instead of the
completely rebuilt ones without using the triangle inequalities", with
"significant speed up factors between 40 (for an update size of 10% of the
database) up to approx. 200 for an update size of 2%".

:func:`run_figure11` runs both arms over the complex scenario (sharing the
stream exactly as the Table 1 harness does) and reports, per update
fraction, the summary of per-batch ratios::

    saving factor = (distance computations of the complete rebuild)
                    / (distance computations of the incremental scheme)

The factor shrinks as batches grow — the complete rebuild's cost is fixed
at roughly ``N · B`` per batch while the incremental cost scales with the
number of inserted points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..evaluation import RunSummary, summarize
from .figure9 import DEFAULT_UPDATE_FRACTIONS
from .harness import ExperimentConfig, run_comparison
from .reporting import render_table

__all__ = ["Figure11Point", "run_figure11", "render_figure11"]


@dataclass(frozen=True)
class Figure11Point:
    """One sweep point of Figure 11.

    Attributes:
        update_fraction: fraction of the database updated per batch.
        saving_factor: summary of per-batch complete/incremental distance
            computation ratios (over batches × repetitions).
    """

    update_fraction: float
    saving_factor: RunSummary


def run_figure11(
    base: ExperimentConfig | None = None,
    update_fractions: tuple[float, ...] = DEFAULT_UPDATE_FRACTIONS,
    repetitions: int = 3,
) -> list[Figure11Point]:
    """Regenerate the Figure 11 series on the complex scenario."""
    if base is None:
        base = ExperimentConfig(scenario="complex")
    points: list[Figure11Point] = []
    for fraction in update_fractions:
        config = replace(base, scenario="complex", update_fraction=fraction)
        ratios: list[float] = []
        for rep in range(repetitions):
            result = run_comparison(config, repetition=rep)
            complete = np.asarray(
                [
                    m.report.computed_distances
                    for m in result.complete.measurements
                ],
                dtype=np.float64,
            )
            incremental = np.asarray(
                [
                    m.report.computed_distances
                    for m in result.incremental.measurements
                ],
                dtype=np.float64,
            )
            valid = incremental > 0
            ratios.extend((complete[valid] / incremental[valid]).tolist())
        points.append(
            Figure11Point(
                update_fraction=fraction, saving_factor=summarize(ratios)
            )
        )
    return points


def render_figure11(points: list[Figure11Point]) -> str:
    """Format the Figure 11 series."""
    return render_table(
        headers=["% points updated", "distance saving factor (mean)", "std"],
        rows=[
            [
                f"{p.update_fraction * 100:.0f}%",
                f"{p.saving_factor.mean:.1f}",
                f"{p.saving_factor.std:.1f}",
            ]
            for p in points
        ],
        title="Figure 11. Average distance saving factor: incremental "
        "bubbles (with triangle inequality) vs complete rebuild (without).",
    )
