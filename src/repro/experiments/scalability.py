"""Scalability sweep — database size and dimensionality.

Section 5 opens with the claim that the scheme "is scalable and well
suited for high dimensional data", and argues that larger databases
behave like smaller ones with proportionally more bubbles. This
experiment makes both claims measurable:

* a **size sweep** at fixed points-per-bubble: per database size, the
  incremental cost per batch, the complete-rebuild cost per batch, and
  their ratio (the saving factor's N-dependence discussed in
  EXPERIMENTS.md);
* a **dimension sweep** at fixed size: F-scores of both schemes and the
  triangle-inequality pruning rate per dimensionality (2/5/10/20, the
  paper's grid).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..evaluation import RunSummary, summarize
from .harness import ExperimentConfig, run_comparison
from .reporting import render_table

__all__ = [
    "SizePoint",
    "DimensionPoint",
    "run_size_sweep",
    "run_dimension_sweep",
    "render_size_sweep",
    "render_dimension_sweep",
]


@dataclass(frozen=True)
class SizePoint:
    """One database-size sweep point.

    Attributes:
        size: initial database size.
        num_bubbles: bubbles used (size / points-per-bubble).
        incremental_cost: distance computations per batch (summary).
        complete_cost: distance computations per rebuild (summary).
        saving_factor: complete ÷ incremental per batch (summary).
    """

    size: int
    num_bubbles: int
    incremental_cost: RunSummary
    complete_cost: RunSummary
    saving_factor: RunSummary


@dataclass(frozen=True)
class DimensionPoint:
    """One dimensionality sweep point.

    Attributes:
        dim: data dimensionality.
        incremental_fscore: incremental scheme's F-score (summary).
        complete_fscore: complete rebuild's F-score (summary).
        pruned_fraction: insertion-assignment pruning rate (summary).
    """

    dim: int
    incremental_fscore: RunSummary
    complete_fscore: RunSummary
    pruned_fraction: RunSummary


def run_size_sweep(
    base: ExperimentConfig | None = None,
    sizes: tuple[int, ...] = (2_500, 5_000, 10_000, 20_000),
    points_per_bubble: int = 100,
    repetitions: int = 2,
) -> list[SizePoint]:
    """Sweep the database size at a fixed compression rate."""
    if base is None:
        base = ExperimentConfig(scenario="complex", num_batches=4)
    points: list[SizePoint] = []
    for size in sizes:
        num_bubbles = max(2, size // points_per_bubble)
        config = replace(
            base, initial_size=size, num_bubbles=num_bubbles
        )
        inc_cost, cmp_cost, ratios = [], [], []
        for rep in range(repetitions):
            result = run_comparison(config, repetition=rep)
            inc = np.array(
                [
                    m.report.computed_distances
                    for m in result.incremental.measurements
                ],
                dtype=np.float64,
            )
            cmp_ = np.array(
                [
                    m.report.computed_distances
                    for m in result.complete.measurements
                ],
                dtype=np.float64,
            )
            inc_cost.extend(inc.tolist())
            cmp_cost.extend(cmp_.tolist())
            ratios.extend((cmp_[inc > 0] / inc[inc > 0]).tolist())
        points.append(
            SizePoint(
                size=size,
                num_bubbles=num_bubbles,
                incremental_cost=summarize(inc_cost),
                complete_cost=summarize(cmp_cost),
                saving_factor=summarize(ratios),
            )
        )
    return points


def run_dimension_sweep(
    base: ExperimentConfig | None = None,
    dims: tuple[int, ...] = (2, 5, 10, 20),
    repetitions: int = 2,
) -> list[DimensionPoint]:
    """Sweep the dimensionality of the complex scenario."""
    if base is None:
        base = ExperimentConfig(scenario="complex", num_batches=4)
    points: list[DimensionPoint] = []
    for dim in dims:
        config = replace(base, dim=dim)
        inc_f, cmp_f, pruned = [], [], []
        for rep in range(repetitions):
            result = run_comparison(config, repetition=rep)
            inc_f.append(result.incremental.mean_fscore())
            cmp_f.append(result.complete.mean_fscore())
            pruned.extend(
                result.incremental.insertion_pruned_fractions().tolist()
            )
        points.append(
            DimensionPoint(
                dim=dim,
                incremental_fscore=summarize(inc_f),
                complete_fscore=summarize(cmp_f),
                pruned_fraction=summarize(pruned),
            )
        )
    return points


def render_size_sweep(points: list[SizePoint]) -> str:
    """Format the size sweep table."""
    return render_table(
        headers=[
            "database size",
            "bubbles",
            "incremental dists/batch",
            "rebuild dists/batch",
            "saving factor",
        ],
        rows=[
            [
                f"{p.size:,}",
                p.num_bubbles,
                f"{p.incremental_cost.mean:,.0f}",
                f"{p.complete_cost.mean:,.0f}",
                f"{p.saving_factor.mean:.1f}",
            ]
            for p in points
        ],
        title="Scalability: database size sweep at fixed compression rate "
        "(complex scenario).",
    )


def render_dimension_sweep(points: list[DimensionPoint]) -> str:
    """Format the dimensionality sweep table."""
    return render_table(
        headers=[
            "dimension",
            "incremental F",
            "complete F",
            "pruned distance computations",
        ],
        rows=[
            [
                f"{p.dim}d",
                f"{p.incremental_fscore.mean:.4f}",
                f"{p.complete_fscore.mean:.4f}",
                f"{p.pruned_fraction.mean:.1%}",
            ]
            for p in points
        ],
        title="Scalability: dimensionality sweep (complex scenario).",
    )
