"""Shared experiment harness.

Everything Section 5 measures flows through the same pipeline:

1. a :class:`~repro.data.scenarios.DynamicScenario` populates a database
   and streams batches of updates;
2. two summaries track it — the **incremental** data bubbles (the paper's
   scheme, triangle-inequality pruning on) and the **complete rebuild**
   baseline (fresh bubbles from scratch after every batch, pruning off,
   per the Figure 11 set-up);
3. after each batch, OPTICS is applied to each bubble set, clusters are
   extracted from the expanded reachability plot, every point inherits its
   bubble's cluster, and the result is scored against the ground-truth
   labels (F-score) alongside the summarization compactness.

:func:`run_comparison` drives one repetition and returns per-batch
measurements for both arms; the table/figure modules aggregate repetitions
into the paper's rows and series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..clustering import BubbleOptics, extract_candidates
from ..core import (
    BubbleBuilder,
    BubbleConfig,
    BubbleSet,
    CompleteRebuildMaintainer,
    IncrementalMaintainer,
    MaintenanceConfig,
)
from ..core.maintenance import BatchReport
from ..core.quality import QualityMeasure
from ..data import UpdateStream, clone_batch_for, make_scenario
from ..database import PointStore
from ..evaluation import best_match_fscore, compactness
from ..geometry import DistanceCounter
from ..observability import Observability

__all__ = [
    "ExperimentConfig",
    "BatchMeasurement",
    "ArmTrace",
    "ComparisonResult",
    "score_summary",
    "candidate_point_sets",
    "run_comparison",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one scenario run.

    Attributes:
        scenario: scenario kind (``random``, ``appear``, ``extappear``,
            ``disappear``, ``gradmove``, ``complex``, ``figure7``).
        dim: data dimensionality.
        initial_size: initial database size (the paper uses 50k–110k; the
            defaults here are scaled down, see DESIGN.md — all reported
            quantities are size-stable ratios).
        num_bubbles: summary size (compression-rate knob).
        update_fraction: per-batch update volume (deletes+inserts this
            fraction of the database, half each).
        num_batches: how many batches each repetition runs.
        min_pts: OPTICS MinPts, in points.
        min_cluster_size: smallest admissible extracted cluster, as a
            fraction of the database size.
        num_levels: quantile levels of the extraction candidate sweep.
        probability: Chebyshev probability of the β quality classes.
        seed: base RNG seed; repetition ``r`` derives ``seed + r``.
    """

    scenario: str = "complex"
    dim: int = 2
    initial_size: int = 10_000
    num_bubbles: int = 100
    update_fraction: float = 0.05
    num_batches: int = 10
    min_pts: int = 25
    min_cluster_size: float = 0.01
    num_levels: int = 32
    probability: float = 0.9
    seed: int = 0


@dataclass(frozen=True)
class BatchMeasurement:
    """One arm's measurements after one batch.

    Attributes:
        fscore: best-match clustering F-score vs ground truth.
        compactness: summarization compactness (Σ squared dist to rep).
        report: the maintainer's batch bookkeeping.
    """

    fscore: float
    compactness: float
    report: BatchReport


@dataclass
class ArmTrace:
    """Per-batch measurements of one arm across a repetition."""

    name: str
    measurements: list[BatchMeasurement] = field(default_factory=list)

    def fscores(self) -> np.ndarray:
        """F-score per batch."""
        return np.asarray([m.fscore for m in self.measurements])

    def compactnesses(self) -> np.ndarray:
        """Compactness per batch."""
        return np.asarray([m.compactness for m in self.measurements])

    def mean_fscore(self) -> float:
        """Mean F-score over batches (the repetition's quality value)."""
        return float(self.fscores().mean())

    def mean_compactness(self) -> float:
        """Mean compactness over batches."""
        return float(self.compactnesses().mean())

    def total_computed(self) -> int:
        """Total distance computations across all batches."""
        return sum(m.report.computed_distances for m in self.measurements)

    def rebuilt_fractions(self, num_bubbles: int) -> np.ndarray:
        """Per-batch fraction of bubbles rebuilt (Figure 9's quantity)."""
        return np.asarray(
            [m.report.num_rebuilt / num_bubbles for m in self.measurements]
        )

    def insertion_pruned_fractions(self) -> np.ndarray:
        """Per-batch insertion-assignment pruning rates (Figure 10)."""
        return np.asarray(
            [m.report.insertion_pruned_fraction for m in self.measurements]
        )


@dataclass(frozen=True)
class ComparisonResult:
    """Both arms of one repetition.

    Attributes:
        incremental: trace of the incremental maintainer.
        complete: trace of the complete-rebuild baseline.
        config: the configuration that produced the traces.
    """

    incremental: ArmTrace
    complete: ArmTrace
    config: ExperimentConfig


def candidate_point_sets(
    expanded,
    spans: list[tuple[int, int]],
    bubbles: BubbleSet,
    alive_ids: np.ndarray,
) -> list[np.ndarray]:
    """Convert extraction spans into point-position candidate sets.

    A span covers expanded plot entries; a bubble belongs to the span's
    cluster when at least half of its entries fall inside (spans may cut
    through a bubble's entry block at the separating bar). The candidate
    is then the union of the member point ids of its bubbles, translated
    to positions within ``alive_ids`` (the universe the truth labels are
    indexed by).
    """
    source = expanded.source
    totals: dict[int, int] = {}
    for bubble_id, count in zip(*np.unique(source, return_counts=True)):
        totals[int(bubble_id)] = int(count)

    candidates: list[np.ndarray] = []
    for start, end in spans:
        inside, counts = np.unique(source[start:end], return_counts=True)
        chosen = [
            int(b)
            for b, c in zip(inside, counts)
            if 2 * int(c) >= totals[int(b)]
        ]
        if not chosen:
            candidates.append(np.empty(0, dtype=np.int64))
            continue
        member_ids = np.concatenate(
            [bubbles[b].member_ids() for b in chosen]
        )
        positions = np.searchsorted(alive_ids, member_ids)
        candidates.append(positions)
    return candidates


def score_summary(
    bubbles: BubbleSet,
    store: PointStore,
    config: ExperimentConfig,
) -> tuple[float, float]:
    """Cluster one summary with OPTICS and score it: ``(fscore, compactness)``.

    The full evaluation pipeline of Section 5 for one summary at one point
    in time: bubble OPTICS → expanded reachability plot → candidate
    extraction (quantile sweep over the hierarchy) → per-point labels via
    bubble membership → best-match F-score against the store's ground
    truth.
    """
    alive_ids, _, truth = store.snapshot()
    result = BubbleOptics(min_pts=config.min_pts).fit(bubbles)
    expanded = result.expanded()
    min_size = max(2, int(config.min_cluster_size * store.size))
    spans = extract_candidates(
        expanded.reachability,
        min_size=min_size,
        num_levels=config.num_levels,
    )
    candidates = candidate_point_sets(expanded, spans, bubbles, alive_ids)
    fscore = best_match_fscore(truth, candidates).overall
    return fscore, compactness(bubbles)


def run_comparison(
    config: ExperimentConfig,
    repetition: int = 0,
    quality: QualityMeasure | None = None,
    maintenance: MaintenanceConfig | None = None,
    obs: Observability | None = None,
) -> ComparisonResult:
    """One repetition of the incremental-vs-complete comparison.

    Both arms see the *same* logical update stream: batches are generated
    against the incremental store and re-targeted to the mirror store by
    :func:`~repro.data.stream.clone_batch_for`.

    Args:
        config: experiment parameters.
        repetition: repetition index (shifts every RNG seed).
        quality: override the incremental arm's quality measure (used by
            the Figure 7 experiment to run the extent baseline).
        maintenance: override the incremental arm's maintenance config.
        obs: observability handle for the incremental arm (the baseline
            arm stays uninstrumented — its distance totals would pollute
            the Figure 10/11 pruning numbers).
    """
    seed = config.seed + repetition
    scenario = make_scenario(
        config.scenario, config.dim, config.initial_size, seed=seed
    )
    points, labels = scenario.initial()

    store_inc = PointStore(dim=config.dim)
    store_inc.insert(points, labels)
    store_cmp = PointStore(dim=config.dim)
    store_cmp.insert(points, labels)

    counter_inc = DistanceCounter()
    builder = BubbleBuilder(
        BubbleConfig(num_bubbles=config.num_bubbles, seed=seed),
        counter=counter_inc,
    )
    bubbles_inc = builder.build(store_inc)
    if maintenance is None:
        maintenance = MaintenanceConfig(
            probability=config.probability, seed=seed
        )
    incremental = IncrementalMaintainer(
        bubbles_inc,
        store_inc,
        config=maintenance,
        quality=quality,
        counter=counter_inc,
        obs=obs,
    )
    complete = CompleteRebuildMaintainer(
        store_cmp,
        CompleteRebuildMaintainer.default_config(
            config.num_bubbles, seed=seed
        ),
    )
    complete.rebuild()

    trace_inc = ArmTrace(name="incremental")
    trace_cmp = ArmTrace(name="complete")
    stream = UpdateStream(
        scenario,
        store_inc,
        update_fraction=config.update_fraction,
        num_batches=config.num_batches,
    )
    for batch in stream:
        mirrored = clone_batch_for(batch, store_inc, store_cmp)
        report_inc = incremental.apply_batch(batch)
        report_cmp = complete.apply_batch(mirrored)

        fscore_inc, compact_inc = score_summary(
            incremental.bubbles, store_inc, config
        )
        trace_inc.measurements.append(
            BatchMeasurement(fscore_inc, compact_inc, report_inc)
        )
        fscore_cmp, compact_cmp = score_summary(
            complete.bubbles, store_cmp, config
        )
        trace_cmp.measurements.append(
            BatchMeasurement(fscore_cmp, compact_cmp, report_cmp)
        )
    return ComparisonResult(
        incremental=trace_inc, complete=trace_cmp, config=config
    )
