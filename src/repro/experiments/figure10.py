"""Figure 10 — percentage of pruned distance computations vs update volume.

Section 5: "Typically, we can prune between 60 and 80 percent of all the
distance computations using the triangle inequalities", with the pruning
factor decreasing slowly as the update fraction grows (large batches
introduce whole new regions whose points have no nearby representative to
prune against — the appear-cluster effect the paper describes).

:func:`run_figure10` sweeps the update percentage over the complex
scenario and reports the assignment-phase pruning rate of the incremental
summarization (insertion assignments, net of the small seed-matrix
overhead, exactly as the paper's phrasing brackets it away). The static
construction pruning rate is reported alongside as the 0%-updates anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core import BubbleBuilder, BubbleConfig
from ..data import make_scenario
from ..database import PointStore
from ..evaluation import RunSummary, summarize
from .figure9 import DEFAULT_UPDATE_FRACTIONS
from .harness import ExperimentConfig, run_comparison
from .reporting import render_table

__all__ = [
    "Figure10Point",
    "run_figure10",
    "render_figure10",
    "construction_pruning",
]


@dataclass(frozen=True)
class Figure10Point:
    """One sweep point of Figure 10.

    Attributes:
        update_fraction: fraction of the database updated per batch.
        pruned_fraction: summary of the per-batch insertion-assignment
            pruning rates (over batches × repetitions).
    """

    update_fraction: float
    pruned_fraction: RunSummary


def construction_pruning(
    config: ExperimentConfig, repetitions: int = 3
) -> RunSummary:
    """Pruning rate of the *static* construction on the same data.

    The from-scratch summarization of the initial database: the anchor
    value the incremental rates are compared against.
    """
    values = []
    for rep in range(repetitions):
        scenario = make_scenario(
            config.scenario, config.dim, config.initial_size,
            seed=config.seed + rep,
        )
        store = PointStore(dim=config.dim)
        scenario.populate(store)
        builder = BubbleBuilder(
            BubbleConfig(num_bubbles=config.num_bubbles, seed=config.seed + rep)
        )
        builder.build(store)
        values.append(builder.last_pruned_fraction)
    return summarize(values)


def run_figure10(
    base: ExperimentConfig | None = None,
    update_fractions: tuple[float, ...] = DEFAULT_UPDATE_FRACTIONS,
    repetitions: int = 3,
) -> list[Figure10Point]:
    """Regenerate the Figure 10 series on the complex scenario."""
    if base is None:
        base = ExperimentConfig(scenario="complex")
    points: list[Figure10Point] = []
    for fraction in update_fractions:
        config = replace(base, scenario="complex", update_fraction=fraction)
        values: list[float] = []
        for rep in range(repetitions):
            result = run_comparison(config, repetition=rep)
            values.extend(result.incremental.insertion_pruned_fractions())
        points.append(
            Figure10Point(
                update_fraction=fraction, pruned_fraction=summarize(values)
            )
        )
    return points


def render_figure10(
    points: list[Figure10Point],
    construction: RunSummary | None = None,
) -> str:
    """Format the Figure 10 series."""
    rows = []
    if construction is not None:
        rows.append(
            [
                "0% (static construction)",
                f"{construction.mean * 100:.1f}%",
                f"{construction.std * 100:.1f}%",
            ]
        )
    rows.extend(
        [
            f"{p.update_fraction * 100:.0f}%",
            f"{p.pruned_fraction.mean * 100:.1f}%",
            f"{p.pruned_fraction.std * 100:.1f}%",
        ]
        for p in points
    )
    return render_table(
        headers=["% points updated", "% pruned distance computations", "std"],
        rows=rows,
        title="Figure 10. Percentage of pruned distance computations from "
        "the triangle inequality (complex scenario).",
    )
