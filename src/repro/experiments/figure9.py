"""Figure 9 — average percentage of rebuilt data bubbles vs update volume.

"Typically, the number of these sub-regions is small and thus the majority
of the data bubbles can adapt easily" (Section 1): the fraction of bubbles
touched by merge/split per batch stays low and grows only slowly with the
update volume. :func:`run_figure9` sweeps the update percentage over the
complex scenario and reports, per sweep point, the mean over batches and
repetitions of ``rebuilt bubbles / total bubbles``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..evaluation import RunSummary, summarize
from .harness import ExperimentConfig, run_comparison
from .reporting import render_table

__all__ = ["Figure9Point", "DEFAULT_UPDATE_FRACTIONS", "run_figure9", "render_figure9"]

#: The sweep of Figures 9–11: 2% to 10% of the database updated per batch.
DEFAULT_UPDATE_FRACTIONS: tuple[float, ...] = (0.02, 0.04, 0.06, 0.08, 0.10)


@dataclass(frozen=True)
class Figure9Point:
    """One sweep point of Figure 9.

    Attributes:
        update_fraction: fraction of the database updated per batch.
        rebuilt_fraction: summary (over batches × repetitions) of the
            fraction of bubbles rebuilt per batch.
    """

    update_fraction: float
    rebuilt_fraction: RunSummary


def run_figure9(
    base: ExperimentConfig | None = None,
    update_fractions: tuple[float, ...] = DEFAULT_UPDATE_FRACTIONS,
    repetitions: int = 3,
) -> list[Figure9Point]:
    """Regenerate the Figure 9 series on the complex scenario."""
    if base is None:
        base = ExperimentConfig(scenario="complex")
    points: list[Figure9Point] = []
    for fraction in update_fractions:
        config = replace(base, scenario="complex", update_fraction=fraction)
        values: list[float] = []
        for rep in range(repetitions):
            result = run_comparison(config, repetition=rep)
            values.extend(
                result.incremental.rebuilt_fractions(config.num_bubbles)
            )
        points.append(
            Figure9Point(
                update_fraction=fraction, rebuilt_fraction=summarize(values)
            )
        )
    return points


def render_figure9(points: list[Figure9Point]) -> str:
    """Format the Figure 9 series."""
    return render_table(
        headers=["% points updated", "% bubbles rebuilt (mean)", "std"],
        rows=[
            [
                f"{p.update_fraction * 100:.0f}%",
                f"{p.rebuilt_fraction.mean * 100:.2f}%",
                f"{p.rebuilt_fraction.std * 100:.2f}%",
            ]
            for p in points
        ],
        title="Figure 9. Average percentage of rebuilt data bubbles vs "
        "percentage of points updated (complex scenario).",
    )
