"""Information-theoretic clustering agreement measures.

Complements the paper's F-score with two standard measures implemented
from scratch:

* **purity** — the fraction of points whose predicted cluster's majority
  ground-truth class matches their own; trivially gamed by singletons, so
  only used alongside the others;
* **normalized mutual information (NMI)** — mutual information between
  the two labelings normalised by the arithmetic mean of their entropies
  (the ``NMI_sum`` variant); robust to label permutations and cluster
  counts.

Both treat noise (label ``-1``) as its own class, like
:func:`repro.evaluation.matching.adjusted_rand_index`, so the measures
stay proper partitions-over-all-points comparisons.
"""

from __future__ import annotations

import numpy as np

from .matching import contingency_table

__all__ = ["purity", "normalized_mutual_information"]


def purity(truth: np.ndarray, predicted: np.ndarray) -> float:
    """Cluster purity of ``predicted`` against ``truth``.

    ``(1/N) · Σ_clusters max_class |cluster ∩ class|`` — in [0, 1], higher
    is better; 1.0 iff every predicted cluster is class-pure.
    """
    table, _, _ = contingency_table(truth, predicted)
    total = table.sum()
    if total == 0:
        return 1.0
    return float(table.max(axis=0).sum() / total)


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of a count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-(probs * np.log(probs)).sum())


def normalized_mutual_information(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> float:
    """NMI between two labelings, normalised by mean entropy.

    Returns 1.0 for identical partitions (up to relabeling), 0.0 for
    independent ones. When both partitions are trivial (a single block),
    both entropies are zero and the agreement is perfect by convention.
    """
    table, _, _ = contingency_table(labels_a, labels_b)
    table = table.astype(np.float64)
    total = table.sum()
    if total == 0:
        return 1.0
    row_counts = table.sum(axis=1)
    col_counts = table.sum(axis=0)
    h_a = _entropy(row_counts)
    h_b = _entropy(col_counts)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0

    joint = table / total
    outer = np.outer(row_counts / total, col_counts / total)
    mask = joint > 0
    mutual = float((joint[mask] * np.log(joint[mask] / outer[mask])).sum())
    return max(0.0, min(1.0, 2.0 * mutual / (h_a + h_b)))
