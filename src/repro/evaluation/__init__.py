"""Evaluation metrics: clustering F-score, compactness, ARI, summaries."""

from .compactness import (
    bubble_compactness,
    compactness,
    compactness_from_points,
)
from .drift import ChangeReport, ClusterChange, detect_change
from .fscore import ClassMatch, FScoreResult, best_match_fscore, fscore_from_labels
from .information import normalized_mutual_information, purity
from .matching import adjusted_rand_index, contingency_table
from .summary import RunSummary, summarize

__all__ = [
    "ChangeReport",
    "ClassMatch",
    "ClusterChange",
    "FScoreResult",
    "RunSummary",
    "adjusted_rand_index",
    "best_match_fscore",
    "bubble_compactness",
    "compactness",
    "compactness_from_points",
    "contingency_table",
    "detect_change",
    "fscore_from_labels",
    "normalized_mutual_information",
    "purity",
    "summarize",
]
