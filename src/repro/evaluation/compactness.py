"""Compactness of a data summarization (Table 1's second metric).

Section 5: "the compactness (which is the sum of the square distances of
the points in the data bubble to its representative)" measures how well
the (re)positioned representatives sit among their points. Lower is
better; if the incremental repositioning is effective, "the overall
compactness of the incremental data bubbles should not (significantly)
exceed the overall compactness of the completely rebuilt data bubbles".

Given the sufficient statistics, each bubble's compactness has the closed
form ``SS - |LS|² / n`` (the points' squared deviation from their mean);
:func:`compactness` uses it directly, and
:func:`compactness_from_points` recomputes it from raw coordinates as a
cross-check (used in tests).
"""

from __future__ import annotations

import numpy as np

from ..core.bubble_set import BubbleSet
from ..database import PointStore

__all__ = ["compactness", "bubble_compactness", "compactness_from_points"]


def bubble_compactness(bubble_stats) -> float:
    """Σ ||x - rep||² of one bubble, from its sufficient statistics.

    ``Σ |x - mean|² = SS - |LS|²/n``; empty bubbles contribute 0.
    """
    n = bubble_stats.n
    if n == 0:
        return 0.0
    ls = bubble_stats.linear_sum
    value = bubble_stats.square_sum - float(np.dot(ls, ls)) / n
    return max(value, 0.0)  # clamp floating point cancellation noise


def compactness(bubbles: BubbleSet) -> float:
    """Total compactness of a summary: sum over all bubbles."""
    return sum(bubble_compactness(bubble.stats) for bubble in bubbles)


def compactness_from_points(bubbles: BubbleSet, store: PointStore) -> float:
    """Compactness recomputed from raw member coordinates.

    Numerically independent of the sufficient statistics; the property
    tests assert it agrees with :func:`compactness` to within floating
    point tolerance.
    """
    total = 0.0
    for bubble in bubbles:
        if bubble.is_empty():
            continue
        points = store.points_of(bubble.member_ids())
        rep = bubble.rep
        diff = points - rep
        total += float(np.einsum("ij,ij->", diff, diff))
    return total
