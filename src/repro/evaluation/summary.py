"""Aggregation of repeated experiment runs.

"All results are average values of 10 repetitions of simulating the
insertions and deletions" (Section 5); Table 1 reports mean and standard
deviation per cell. :class:`RunSummary` is that cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = ["RunSummary", "summarize"]


@dataclass(frozen=True)
class RunSummary:
    """Mean and standard deviation of one metric over repetitions.

    Attributes:
        mean: arithmetic mean of the values.
        std: population standard deviation (the convention used when the
            repetitions themselves are the quantity of interest).
        count: how many repetitions were aggregated.
        values: the raw per-repetition values, in run order.
    """

    mean: float
    std: float
    count: int
    values: tuple[float, ...]

    def __format__(self, spec: str) -> str:
        spec = spec or ".4f"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def summarize(values: Iterable[float]) -> RunSummary:
    """Aggregate repetition values into a :class:`RunSummary`.

    Raises:
        ValueError: for an empty sequence (a summary of nothing is a bug).
    """
    data = tuple(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize zero repetitions")
    mean = sum(data) / len(data)
    variance = sum((v - mean) ** 2 for v in data) / len(data)
    return RunSummary(
        mean=mean,
        std=math.sqrt(variance),
        count=len(data),
        values=data,
    )
