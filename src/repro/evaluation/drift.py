"""Structural change detection between two clusterings.

The paper's motivating application is not clustering per se but *change
detection*: "to detect possible changes in the clustering structures,
which could indicate possible changes in the customer/subscriber
behaviour" (Section 1). Incremental bubbles make a fresh clustering cheap
after every batch; this module supplies the last step — comparing the new
clustering against the previous one and reporting what changed:

* an overall **change score** (1 − ARI over the points present in both
  labelings);
* clusters that **appeared** (no counterpart covering ≥ ``overlap``
  of them before);
* clusters that **vanished** (no counterpart now);
* matched clusters whose membership **drifted** by more than
  ``drift_tolerance``.

Matching is greedy by overlap (Jaccard), which is the standard cluster
tracking heuristic; both labelings must be over the same point universe
(e.g. two :meth:`~repro.clustering.snapshot.ClusteringSnapshot.point_labels`
calls on the surviving points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import NOISE_LABEL
from .matching import adjusted_rand_index, contingency_table

__all__ = ["ClusterChange", "ChangeReport", "detect_change"]


@dataclass(frozen=True)
class ClusterChange:
    """One matched cluster pair and how much it moved.

    Attributes:
        old_label: the cluster's label in the previous clustering.
        new_label: its matched label in the current clustering.
        jaccard: overlap of the two member sets (``|∩| / |∪|``).
        old_size: members before.
        new_size: members now.
    """

    old_label: int
    new_label: int
    jaccard: float
    old_size: int
    new_size: int

    @property
    def drift(self) -> float:
        """``1 − jaccard`` — the fraction of membership that changed."""
        return 1.0 - self.jaccard


@dataclass(frozen=True)
class ChangeReport:
    """Outcome of comparing two clusterings of the same points.

    Attributes:
        change_score: ``1 − ARI``; 0 for identical structure.
        matches: matched cluster pairs with their drift.
        appeared: labels of current clusters without a counterpart.
        vanished: labels of previous clusters without a counterpart.
    """

    change_score: float
    matches: tuple[ClusterChange, ...]
    appeared: tuple[int, ...]
    vanished: tuple[int, ...]

    def drifted(self, tolerance: float = 0.2) -> tuple[ClusterChange, ...]:
        """Matched clusters whose drift exceeds ``tolerance``."""
        return tuple(m for m in self.matches if m.drift > tolerance)

    @property
    def is_stable(self) -> bool:
        """No appearances, no disappearances, change score below 5%."""
        return (
            not self.appeared
            and not self.vanished
            and self.change_score < 0.05
        )


def detect_change(
    old_labels: np.ndarray,
    new_labels: np.ndarray,
    min_overlap: float = 0.3,
) -> ChangeReport:
    """Compare two labelings of the same points.

    Args:
        old_labels: previous cluster labels, one per point.
        new_labels: current cluster labels, aligned with ``old_labels``.
        min_overlap: minimum Jaccard for two clusters to count as the same
            cluster tracked over time; below it they are an appearance +
            a disappearance.

    Raises:
        ValueError: if the labelings do not align.
    """
    old_labels = np.asarray(old_labels, dtype=np.int64)
    new_labels = np.asarray(new_labels, dtype=np.int64)
    if old_labels.shape != new_labels.shape:
        raise ValueError("labelings must cover the same points")
    if not 0.0 < min_overlap <= 1.0:
        raise ValueError(
            f"min_overlap must lie in (0, 1], got {min_overlap}"
        )

    change_score = 1.0 - adjusted_rand_index(old_labels, new_labels)

    table, old_values, new_values = contingency_table(old_labels, new_labels)
    old_sizes = table.sum(axis=1)
    new_sizes = table.sum(axis=0)

    # Candidate pairs by Jaccard, greedily matched best-first; noise rows
    # and columns never participate as clusters.
    candidates: list[tuple[float, int, int]] = []
    for i, old_value in enumerate(old_values):
        if old_value == NOISE_LABEL:
            continue
        for j, new_value in enumerate(new_values):
            if new_value == NOISE_LABEL:
                continue
            overlap = int(table[i, j])
            if overlap == 0:
                continue
            union = int(old_sizes[i] + new_sizes[j] - overlap)
            jaccard = overlap / union if union else 0.0
            if jaccard >= min_overlap:
                candidates.append((jaccard, i, j))
    candidates.sort(reverse=True)

    used_old: set[int] = set()
    used_new: set[int] = set()
    matches: list[ClusterChange] = []
    for jaccard, i, j in candidates:
        if i in used_old or j in used_new:
            continue
        used_old.add(i)
        used_new.add(j)
        matches.append(
            ClusterChange(
                old_label=int(old_values[i]),
                new_label=int(new_values[j]),
                jaccard=float(jaccard),
                old_size=int(old_sizes[i]),
                new_size=int(new_sizes[j]),
            )
        )

    vanished = tuple(
        int(v)
        for i, v in enumerate(old_values)
        if v != NOISE_LABEL and i not in used_old and old_sizes[i] > 0
    )
    appeared = tuple(
        int(v)
        for j, v in enumerate(new_values)
        if v != NOISE_LABEL and j not in used_new and new_sizes[j] > 0
    )
    return ChangeReport(
        change_score=float(max(0.0, change_score)),
        matches=tuple(matches),
        appeared=appeared,
        vanished=vanished,
    )
