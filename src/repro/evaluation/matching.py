"""Label-matching utilities: contingency tables and the adjusted Rand index.

The paper reports F-scores; the adjusted Rand index is provided as an
additional, threshold-free agreement measure used by the test suite to
cross-check that high F-scores and high ARI co-occur (a guard against the
F-score implementation silently rewarding degenerate matchings).
"""

from __future__ import annotations

import numpy as np

__all__ = ["contingency_table", "adjusted_rand_index"]


def contingency_table(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cross-tabulate two labelings.

    Returns:
        ``(table, values_a, values_b)`` where ``table[i, j]`` counts points
        with ``labels_a == values_a[i]`` and ``labels_b == values_b[j]``.
    """
    labels_a = np.asarray(labels_a, dtype=np.int64)
    labels_b = np.asarray(labels_b, dtype=np.int64)
    if labels_a.shape != labels_b.shape:
        raise ValueError("labelings must align")
    values_a, idx_a = np.unique(labels_a, return_inverse=True)
    values_b, idx_b = np.unique(labels_b, return_inverse=True)
    table = np.zeros((values_a.size, values_b.size), dtype=np.int64)
    np.add.at(table, (idx_a, idx_b), 1)
    return table, values_a, values_b


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand index between two labelings (noise treated as a class).

    1.0 for identical partitions, ~0 for independent ones; symmetric.
    """
    table, _, _ = contingency_table(labels_a, labels_b)
    n = int(table.sum())
    if n < 2:
        return 1.0

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(table.astype(np.float64)).sum()
    sum_rows = comb2(table.sum(axis=1).astype(np.float64)).sum()
    sum_cols = comb2(table.sum(axis=0).astype(np.float64)).sum()
    total = comb2(np.float64(n))
    expected = sum_rows * sum_cols / total
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))
