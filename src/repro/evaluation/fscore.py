"""F-score evaluation of clusterings against ground truth.

The paper measures clustering performance "using the F score measure [13]
(where F = 2p·r/(p+r), p is precision and r is recall)" — the clustering
F-measure of Larsen & Aone 1999: every ground-truth class is matched with
the candidate cluster that maximises its F value, and the overall score is
the size-weighted average over the classes.

Two entry points:

* :func:`fscore_from_labels` — candidates are the groups of a flat
  predicted labelling;
* :func:`best_match_fscore` — candidates are explicit member sets, which
  is how hierarchical results are scored (every node/extraction candidate
  competes, so the hierarchy is evaluated at each class's best
  resolution).

Noise (label ``-1``) in the ground truth is not a class to be recovered; it
only affects precision, by polluting candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import NOISE_LABEL

__all__ = ["ClassMatch", "FScoreResult", "best_match_fscore", "fscore_from_labels"]


@dataclass(frozen=True)
class ClassMatch:
    """Best candidate match for one ground-truth class.

    Attributes:
        label: the ground-truth class label.
        class_size: number of points with that label.
        candidate: index of the best-matching candidate (``-1`` when no
            candidate intersects the class).
        precision: ``|c ∩ t| / |c|`` of the best match.
        recall: ``|c ∩ t| / |t|`` of the best match.
        fscore: ``2pr / (p + r)`` of the best match.
    """

    label: int
    class_size: int
    candidate: int
    precision: float
    recall: float
    fscore: float


@dataclass(frozen=True)
class FScoreResult:
    """Overall F-score plus the per-class matches behind it.

    Attributes:
        overall: size-weighted mean of the per-class best F values.
        matches: one :class:`ClassMatch` per ground-truth class, in label
            order.
    """

    overall: float
    matches: tuple[ClassMatch, ...]

    def match_for(self, label: int) -> ClassMatch:
        """The match record of one ground-truth class."""
        for match in self.matches:
            if match.label == label:
                return match
        raise KeyError(f"no ground-truth class with label {label}")


def best_match_fscore(
    truth: np.ndarray,
    candidates: list[np.ndarray],
) -> FScoreResult:
    """Score candidate clusters against ground-truth labels.

    Args:
        truth: ground-truth labels, one per point (positions are the point
            universe); noise points carry :data:`~repro.types.NOISE_LABEL`.
        candidates: candidate clusters as arrays of point positions.

    Returns:
        The size-weighted best-match F-score. With no ground-truth classes
        at all (pure noise) the overall score is defined as 0.
    """
    truth = np.asarray(truth, dtype=np.int64)
    class_labels = np.unique(truth[truth != NOISE_LABEL])
    if class_labels.size == 0:
        return FScoreResult(overall=0.0, matches=())

    candidate_sizes = [int(len(c)) for c in candidates]
    matches: list[ClassMatch] = []
    weighted_sum = 0.0
    total_weight = 0
    for label in class_labels:
        class_size = int((truth == label).sum())
        best = ClassMatch(
            label=int(label),
            class_size=class_size,
            candidate=-1,
            precision=0.0,
            recall=0.0,
            fscore=0.0,
        )
        for idx, members in enumerate(candidates):
            size = candidate_sizes[idx]
            if size == 0:
                continue
            overlap = int((truth[members] == label).sum())
            if overlap == 0:
                continue
            precision = overlap / size
            recall = overlap / class_size
            fscore = 2.0 * precision * recall / (precision + recall)
            if fscore > best.fscore:
                best = ClassMatch(
                    label=int(label),
                    class_size=class_size,
                    candidate=idx,
                    precision=precision,
                    recall=recall,
                    fscore=fscore,
                )
        matches.append(best)
        weighted_sum += class_size * best.fscore
        total_weight += class_size
    overall = weighted_sum / total_weight if total_weight else 0.0
    return FScoreResult(overall=overall, matches=tuple(matches))


def fscore_from_labels(
    truth: np.ndarray,
    predicted: np.ndarray,
) -> FScoreResult:
    """Score a flat predicted labelling against ground truth.

    Predicted noise (label ``-1``) is not a candidate cluster; all other
    predicted labels compete as candidates for every ground-truth class.
    """
    truth = np.asarray(truth, dtype=np.int64)
    predicted = np.asarray(predicted, dtype=np.int64)
    if truth.shape != predicted.shape:
        raise ValueError("truth and predicted labels must align")
    candidates = [
        np.flatnonzero(predicted == label)
        for label in np.unique(predicted[predicted != NOISE_LABEL])
    ]
    return best_match_fscore(truth, candidates)
