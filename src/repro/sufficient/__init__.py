"""Sufficient statistics ``(n, LS, SS)`` and derived bubble quantities.

The additive statistics live in :class:`SufficientStatistics`; the
representative / extent / nnDist derivations of Definition 1 are the pure
functions in :mod:`repro.sufficient.derived`.
"""

from .derived import extent, nn_dist, radius_std, representative
from .stats import SufficientStatistics

__all__ = [
    "SufficientStatistics",
    "extent",
    "nn_dist",
    "radius_std",
    "representative",
]
