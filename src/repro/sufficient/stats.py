"""Sufficient statistics ``(n, LS, SS)`` for data summarization.

Both BIRCH clustering features and data bubbles are built on the same
sufficient statistics of a point set ``X = {x_1 .. x_n}``:

* ``n`` — the number of points,
* ``LS`` — the linear sum ``Σ x_i`` (a ``d``-dimensional vector),
* ``SS`` — the square sum ``Σ x_i · x_i`` (a scalar).

They are *additive*: inserting a point ``p`` updates them to
``(n + 1, LS + p, SS + p·p)`` and deleting an assigned point to
``(n - 1, LS - p, SS - p·p)`` — exactly the incremental update rule of
Section 4 of the paper. Two disjoint sets' statistics merge by element-wise
addition, which the split/merge operations rely on.

:class:`SufficientStatistics` is intentionally a mutable value object: a
data bubble owns exactly one and mutates it as points come and go.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionMismatchError, EmptyBubbleError
from ..types import Point, PointMatrix

__all__ = ["SufficientStatistics"]


class SufficientStatistics:
    """Additive sufficient statistics ``(n, LS, SS)`` of a point set.

    Args:
        dim: dimensionality of the points that will be absorbed.

    Example:
        >>> stats = SufficientStatistics(dim=2)
        >>> stats.insert(np.array([1.0, 2.0]))
        >>> stats.insert(np.array([3.0, 4.0]))
        >>> stats.n
        2
        >>> stats.mean().tolist()
        [2.0, 3.0]
    """

    __slots__ = ("_n", "_linear_sum", "_square_sum", "_dim")

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self._dim = int(dim)
        self._n = 0
        self._linear_sum = np.zeros(dim, dtype=np.float64)
        self._square_sum = 0.0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: PointMatrix) -> "SufficientStatistics":
        """Build statistics for a whole point matrix at once (vectorised)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("from_points expects a (m, d) matrix")
        stats = cls(dim=points.shape[1])
        stats._n = points.shape[0]
        stats._linear_sum = points.sum(axis=0)
        stats._square_sum = float(np.einsum("ij,ij->", points, points))
        return stats

    @classmethod
    def from_raw(
        cls, n: int, linear_sum: np.ndarray, square_sum: float
    ) -> "SufficientStatistics":
        """Reconstruct statistics from their raw ``(n, LS, SS)`` values.

        The persistence layer stores the accumulated sums verbatim (rather
        than recomputing them from member coordinates) so that a restored
        summary is *bit-identical* to the live one — incremental updates
        accumulate floating-point effects in insertion order, which a
        vectorised recomputation would not reproduce.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        linear_sum = np.asarray(linear_sum, dtype=np.float64)
        if linear_sum.ndim != 1:
            raise ValueError("linear_sum must be a (d,) vector")
        stats = cls(dim=linear_sum.shape[0])
        stats._n = int(n)
        stats._linear_sum = linear_sum.copy()
        stats._square_sum = float(square_sum)
        return stats

    def copy(self) -> "SufficientStatistics":
        """Independent deep copy."""
        dup = SufficientStatistics(self._dim)
        dup._n = self._n
        dup._linear_sum = self._linear_sum.copy()
        dup._square_sum = self._square_sum
        return dup

    # ------------------------------------------------------------------
    # Incremental updates (Section 4 of the paper)
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Absorb one point: ``(n, LS, SS) -> (n + 1, LS + p, SS + p·p)``."""
        self._check_dim(point)
        self._n += 1
        self._linear_sum += point
        self._square_sum += float(np.dot(point, point))

    def remove(self, point: Point) -> None:
        """Release one previously absorbed point.

        ``(n, LS, SS) -> (n - 1, LS - p, SS - p·p)``. Removing from empty
        statistics is a logic error and raises :class:`EmptyBubbleError`.
        """
        if self._n == 0:
            raise EmptyBubbleError("cannot remove a point from empty statistics")
        self._check_dim(point)
        self._n -= 1
        self._linear_sum -= point
        self._square_sum -= float(np.dot(point, point))
        if self._n == 0:
            # Snap accumulated floating point noise back to exact zero so an
            # emptied bubble is bit-identical to a fresh one.
            self._linear_sum[:] = 0.0
            self._square_sum = 0.0

    def insert_many(self, points: PointMatrix) -> None:
        """Absorb a batch of points with one vectorised update."""
        points = np.asarray(points, dtype=np.float64)
        if points.size == 0:
            return
        if points.ndim != 2 or points.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"expected (m, {self._dim}) points, got shape {points.shape}"
            )
        self._n += points.shape[0]
        self._linear_sum += points.sum(axis=0)
        self._square_sum += float(np.einsum("ij,ij->", points, points))

    def remove_many(self, points: PointMatrix) -> None:
        """Release a batch of previously absorbed points in one update."""
        points = np.asarray(points, dtype=np.float64)
        if points.size == 0:
            return
        if points.ndim != 2 or points.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"expected (m, {self._dim}) points, got shape {points.shape}"
            )
        if points.shape[0] > self._n:
            raise EmptyBubbleError(
                f"cannot remove {points.shape[0]} points from statistics of "
                f"{self._n}"
            )
        self._n -= points.shape[0]
        self._linear_sum -= points.sum(axis=0)
        self._square_sum -= float(np.einsum("ij,ij->", points, points))
        if self._n == 0:
            self._linear_sum[:] = 0.0
            self._square_sum = 0.0

    def merge(self, other: "SufficientStatistics") -> None:
        """Absorb another statistic (disjoint point sets): element-wise addition."""
        if other._dim != self._dim:
            raise DimensionMismatchError(
                f"cannot merge dim {other._dim} into dim {self._dim}"
            )
        self._n += other._n
        self._linear_sum += other._linear_sum
        self._square_sum += other._square_sum

    def clear(self) -> None:
        """Reset to the empty statistics."""
        self._n = 0
        self._linear_sum[:] = 0.0
        self._square_sum = 0.0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of points currently summarized."""
        return self._n

    @property
    def dim(self) -> int:
        """Dimensionality of the summarized points."""
        return self._dim

    @property
    def linear_sum(self) -> np.ndarray:
        """The linear sum ``LS`` (read-only view)."""
        view = self._linear_sum.view()
        view.flags.writeable = False
        return view

    @property
    def square_sum(self) -> float:
        """The square sum ``SS``."""
        return self._square_sum

    def mean(self) -> np.ndarray:
        """``LS / n`` — the representative of Definition 1.

        Raises:
            EmptyBubbleError: when no points are summarized.
        """
        if self._n == 0:
            raise EmptyBubbleError("mean of empty statistics is undefined")
        return self._linear_sum / self._n

    def is_empty(self) -> bool:
        """Whether no points are currently summarized."""
        return self._n == 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_dim(self, point: Point) -> None:
        if point.shape != (self._dim,):
            raise DimensionMismatchError(
                f"expected a ({self._dim},) point, got shape {point.shape}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SufficientStatistics):
            return NotImplemented
        return (
            self._n == other._n
            and self._dim == other._dim
            and np.array_equal(self._linear_sum, other._linear_sum)
            and self._square_sum == other._square_sum
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SufficientStatistics(n={self._n}, dim={self._dim}, "
            f"SS={self._square_sum:.4g})"
        )
