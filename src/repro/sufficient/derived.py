"""Derived bubble quantities: representative, extent, nnDist.

Definition 1 of the paper (following Breunig et al. 2001, "Data Bubbles:
Quality Preserving Performance Boosting for Hierarchical Clustering")
describes a data bubble ``B = (rep, n, extent, nnDist)``. All three derived
quantities can be computed from the sufficient statistics ``(n, LS, SS)``:

* ``rep = LS / n`` — the mean of the summarized points;
* ``extent`` — the radius around ``rep`` enclosing "the majority" of the
  points, estimated as the *average pairwise distance* within the bubble::

      extent = sqrt( (2 · n · SS - 2 · |LS|²) / (n · (n - 1)) )

  which follows from ``Σ_i Σ_j |x_i - x_j|² = 2n·SS - 2·|LS|²``;
* ``nnDist(k, B)`` — the expected ``k``-nearest-neighbour distance inside
  the bubble under a uniformity assumption::

      nnDist(k, B) = (k / n)^(1/d) · extent

These formulas are pure functions of ``(n, LS, SS, d)``; they are kept
separate from :class:`~repro.sufficient.stats.SufficientStatistics` so they
can also be applied to ad-hoc statistics (e.g. in tests and in the
extent-based baseline quality measure).
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import EmptyBubbleError
from .stats import SufficientStatistics

__all__ = ["representative", "extent", "nn_dist", "radius_std"]


def representative(stats: SufficientStatistics) -> np.ndarray:
    """The bubble representative ``rep = LS / n`` (Definition 1).

    Raises:
        EmptyBubbleError: for empty statistics.
    """
    return stats.mean()


def extent(stats: SufficientStatistics) -> float:
    """Average pairwise distance of the summarized points.

    Returns ``0.0`` for singleton bubbles (a single point has no pairwise
    distances; its radius is zero). Floating point cancellation can push the
    value under the square root slightly negative for near-degenerate
    bubbles; it is clamped to zero.

    Raises:
        EmptyBubbleError: for empty statistics.
    """
    n = stats.n
    if n == 0:
        raise EmptyBubbleError("extent of an empty bubble is undefined")
    if n == 1:
        return 0.0
    ls = stats.linear_sum
    sq = (2.0 * n * stats.square_sum - 2.0 * float(np.dot(ls, ls))) / (
        n * (n - 1)
    )
    return math.sqrt(max(sq, 0.0))


def radius_std(stats: SufficientStatistics) -> float:
    """Standard deviation of the distance from the mean.

    ``sqrt(SS/n - |LS/n|²)`` — the "spatial extent" statistic implicitly
    used as a quality measure by BIRCH-style clustering features, which
    Section 4.1 argues against. Provided for the extent-based baseline.
    """
    n = stats.n
    if n == 0:
        raise EmptyBubbleError("radius of an empty bubble is undefined")
    mean = stats.linear_sum / n
    sq = stats.square_sum / n - float(np.dot(mean, mean))
    return math.sqrt(max(sq, 0.0))


def nn_dist(stats: SufficientStatistics, k: int) -> float:
    """Expected ``k``-nearest-neighbour distance inside the bubble.

    Under the uniformity assumption of Breunig et al. 2001::

        nnDist(k, B) = (k / n)^(1/d) · extent(B)

    For ``k >= n`` the estimate saturates at the extent itself (there are no
    ``k`` neighbours inside the bubble; callers needing cross-bubble
    neighbourhoods handle that case explicitly, see
    :mod:`repro.clustering.bubble_optics`).

    Raises:
        EmptyBubbleError: for empty statistics.
        ValueError: for non-positive ``k``.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n = stats.n
    if n == 0:
        raise EmptyBubbleError("nnDist of an empty bubble is undefined")
    ext = extent(stats)
    if k >= n:
        return ext
    return (k / n) ** (1.0 / stats.dim) * ext
