"""Shared type aliases used across the :mod:`repro` package.

The library works with plain numpy arrays at its boundaries:

* a *point* is a 1-d ``float64`` array of shape ``(d,)``;
* a *point matrix* is a 2-d ``float64`` array of shape ``(m, d)``;
* *point ids* are opaque non-negative integers handed out by
  :class:`repro.database.PointStore` and stable across updates;
* *labels* are integers, with :data:`NOISE_LABEL` (``-1``) marking noise
  both in ground truth and in clustering results.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np
from numpy.typing import NDArray

Point: TypeAlias = NDArray[np.float64]
"""A single ``d``-dimensional point, shape ``(d,)``."""

PointMatrix: TypeAlias = NDArray[np.float64]
"""A batch of points, shape ``(m, d)``."""

PointId: TypeAlias = int
"""Stable identifier of a point inside a :class:`~repro.database.PointStore`."""

BubbleId: TypeAlias = int
"""Stable identifier of a data bubble inside a bubble set."""

Label: TypeAlias = int
"""Cluster label; ``NOISE_LABEL`` marks noise points."""

NOISE_LABEL: int = -1
"""Label reserved for noise, in ground truth and in clustering output."""


def as_point_matrix(points: object, dim: int | None = None) -> PointMatrix:
    """Coerce ``points`` to a C-contiguous float64 matrix of shape ``(m, d)``.

    Accepts any array-like (lists of lists, 1-d arrays promoted to a single
    row, existing matrices). When ``dim`` is given, the result is validated
    against it.

    Raises:
        ValueError: if the input cannot be shaped into ``(m, d)`` or the
            dimensionality does not match ``dim``.
    """
    matrix = np.ascontiguousarray(points, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.ndim != 2:
        raise ValueError(
            f"expected a (m, d) point matrix, got ndim={matrix.ndim}"
        )
    if dim is not None and matrix.shape[1] != dim:
        raise ValueError(
            f"expected {dim}-dimensional points, got {matrix.shape[1]}-dimensional"
        )
    return matrix


def as_point(point: object, dim: int | None = None) -> Point:
    """Coerce ``point`` to a 1-d float64 array of shape ``(d,)``.

    Raises:
        ValueError: if the input is not 1-dimensional or does not match
            ``dim`` when given.
    """
    vector = np.ascontiguousarray(point, dtype=np.float64)
    if vector.ndim != 1:
        raise ValueError(f"expected a (d,) point, got ndim={vector.ndim}")
    if dim is not None and vector.shape[0] != dim:
        raise ValueError(
            f"expected a {dim}-dimensional point, got {vector.shape[0]}-dimensional"
        )
    return vector
