"""Instrumented distance computation counting.

The paper evaluates efficiency in *numbers of distance calculations*, not
wall-clock time:

* Figure 10 reports the percentage of distance computations pruned by the
  triangle inequality during point-to-seed assignment;
* Figure 11 reports the "distance saving factor" — the ratio of distance
  computations performed by a complete rebuild without pruning to those
  performed by the incremental scheme with pruning.

:class:`DistanceCounter` is the single source of truth for those numbers.
Every code path that conceptually computes a point-to-seed distance either
calls :meth:`DistanceCounter.euclidean` (computed — counted) or
:meth:`DistanceCounter.record_pruned` (avoided via Lemma 1 — counted as
pruned). Vectorised bulk computations report their element counts through
:meth:`record_computed`.

Counters are cheap plain-int accumulators; they are *not* thread-safe, in
line with the single-threaded batch-update model of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import Point
from . import distance as _distance

__all__ = ["DistanceCounter", "CounterSnapshot"]


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable snapshot of a :class:`DistanceCounter`'s totals.

    Attributes:
        computed: number of actually executed distance computations.
        pruned: number of distance computations avoided by Lemma 1.
    """

    computed: int
    pruned: int

    @property
    def considered(self) -> int:
        """Total distance computations that a naive method would have done."""
        return self.computed + self.pruned

    @property
    def pruned_fraction(self) -> float:
        """Fraction of computations avoided; ``0.0`` when nothing was considered."""
        if self.considered == 0:
            return 0.0
        return self.pruned / self.considered

    def __sub__(self, other: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(
            computed=self.computed - other.computed,
            pruned=self.pruned - other.pruned,
        )


class DistanceCounter:
    """Accumulates the number of computed and pruned distance calculations.

    A counter is passed down into assigners and maintainers; code that does
    not care about instrumentation can pass ``None`` and the assigners fall
    back to an internal throwaway counter.

    Example:
        >>> counter = DistanceCounter()
        >>> a = np.array([0.0, 0.0]); b = np.array([3.0, 4.0])
        >>> counter.euclidean(a, b)
        5.0
        >>> counter.record_pruned(10)
        >>> counter.snapshot().considered
        11
    """

    __slots__ = ("_computed", "_pruned")

    def __init__(self) -> None:
        self._computed = 0
        self._pruned = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def euclidean(self, a: Point, b: Point) -> float:
        """Compute (and count) one Euclidean distance."""
        self._computed += 1
        return _distance.euclidean(a, b)

    def point_to_points(self, point: Point, points) -> np.ndarray:
        """Compute (and count) distances from ``point`` to every row of ``points``."""
        self._computed += len(points)
        return _distance.point_to_points(point, points)

    def record_computed(self, count: int = 1) -> None:
        """Account for ``count`` distance computations done elsewhere (bulk kernels)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._computed += count

    def record_pruned(self, count: int = 1) -> None:
        """Account for ``count`` distance computations avoided via Lemma 1."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._pruned += count

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def computed(self) -> int:
        """Number of distance computations actually executed so far."""
        return self._computed

    @property
    def pruned(self) -> int:
        """Number of distance computations avoided so far."""
        return self._pruned

    def snapshot(self) -> CounterSnapshot:
        """Immutable copy of the current totals."""
        return CounterSnapshot(computed=self._computed, pruned=self._pruned)

    def reset(self) -> None:
        """Zero both totals."""
        self._computed = 0
        self._pruned = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistanceCounter(computed={self._computed}, pruned={self._pruned})"
        )
