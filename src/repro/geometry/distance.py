"""Euclidean distance kernels.

Everything in the paper is defined over a metric space; the evaluation uses
Euclidean distance throughout. This module provides the scalar and batch
kernels the rest of the library builds on. The *instrumented* variants that
count distance computations (the paper's efficiency metric, Figures 10 and
11) live in :mod:`repro.geometry.counting` and wrap these kernels.

The kernels deliberately avoid fancy dispatch: they are the innermost loops
of bubble construction, so they stay small, allocation-light and easy for
numpy to execute.
"""

from __future__ import annotations

import numpy as np

from ..types import Point, PointMatrix

__all__ = [
    "euclidean",
    "squared_euclidean",
    "row_norms",
    "point_to_points",
    "pairwise",
    "cross_pairwise",
    "nearest_index",
]


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points.

    This is *the* distance computation the paper counts: one call equals one
    distance calculation in the sense of Figures 10–11.
    """
    diff = a - b
    return float(np.sqrt(np.dot(diff, diff)))


def squared_euclidean(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points.

    Used where only comparisons are needed (avoids the square root) and for
    the compactness measure, which is defined on squared distances.
    """
    diff = a - b
    return float(np.dot(diff, diff))


def row_norms(diffs: PointMatrix) -> np.ndarray:
    """Euclidean norm of each row of a ``(m, d)`` difference matrix.

    This is the shared reduction kernel behind every distance the
    assigners compare: scalar probes (a one-row matrix) and the batch
    assignment engine (a block of rows) both go through this exact einsum
    spec, so a given row of coordinates always reduces to the *bit-same*
    float regardless of how many rows travel together. That equality is
    what makes the batch assigners' results provably identical to their
    scalar counterparts, ties included.
    """
    return np.sqrt(np.einsum("ij,ij->i", diffs, diffs))


def point_to_points(point: Point, points: PointMatrix) -> np.ndarray:
    """Distances from one point to each row of ``points``; shape ``(m,)``."""
    return row_norms(points - point)


def pairwise(points: PointMatrix) -> np.ndarray:
    """Full symmetric pairwise distance matrix of shape ``(m, m)``.

    Used for the seed-to-seed distance matrix that powers the triangle
    inequality pruning of Section 3. The number of seeds is small (the
    paper's argument for why the matrix is cheap), so the dense ``(m, m)``
    representation is appropriate.
    """
    sq_norms = np.einsum("ij,ij->i", points, points)
    gram = points @ points.T
    sq = sq_norms[:, None] + sq_norms[None, :] - 2.0 * gram
    # Clamp tiny negative values produced by floating point cancellation.
    np.maximum(sq, 0.0, out=sq)
    dists = np.sqrt(sq)
    np.fill_diagonal(dists, 0.0)
    return dists


def cross_pairwise(left: PointMatrix, right: PointMatrix) -> np.ndarray:
    """Distance matrix between two point sets; shape ``(len(left), len(right))``."""
    left_sq = np.einsum("ij,ij->i", left, left)
    right_sq = np.einsum("ij,ij->i", right, right)
    sq = left_sq[:, None] + right_sq[None, :] - 2.0 * (left @ right.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def nearest_index(point: Point, points: PointMatrix) -> tuple[int, float]:
    """Index of the row of ``points`` closest to ``point`` and its distance.

    The vectorised (non-counting) nearest-neighbour primitive; the
    triangle-inequality assigner is the counting counterpart.
    """
    dists = point_to_points(point, points)
    idx = int(np.argmin(dists))
    return idx, float(dists[idx])
