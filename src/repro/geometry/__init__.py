"""Distance substrate: Euclidean kernels and instrumented counting.

See :mod:`repro.geometry.distance` for the raw kernels and
:mod:`repro.geometry.counting` for the :class:`DistanceCounter` used to
reproduce the paper's distance-calculation metrics (Figures 10–11).
"""

from .counting import CounterSnapshot, DistanceCounter
from .distance import (
    cross_pairwise,
    euclidean,
    nearest_index,
    pairwise,
    point_to_points,
    row_norms,
    squared_euclidean,
)

__all__ = [
    "CounterSnapshot",
    "DistanceCounter",
    "cross_pairwise",
    "euclidean",
    "nearest_index",
    "pairwise",
    "point_to_points",
    "row_norms",
    "squared_euclidean",
]
