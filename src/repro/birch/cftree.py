"""BIRCH clustering features and the CF-tree (Zhang et al. 1996).

BIRCH is the other data summarization the paper discusses at length: it
compresses a database into *clustering features* ``CF = (n, LS, SS)``
arranged in a height-balanced tree, where a leaf entry absorbs a point as
long as its radius stays below a global **threshold** — exactly the
"spatial extent as quality measure" policy that Section 4.1 argues
against. The paper chose data bubbles over CFs because bubbles were shown
(Breunig et al. 2001) to serve hierarchical clustering far better.

This module implements the substrate so that comparison is reproducible
in-repo (see ``benchmarks/test_bench_birch.py``): phase-1 BIRCH — CF-tree
construction by insertion — with the standard mechanics:

* descend to the child whose CF centroid is closest;
* at a leaf, absorb into the closest entry if the resulting **radius**
  (std of distances from the centroid) stays within the threshold,
  otherwise open a new entry;
* split overflowing nodes by farthest-pair seeding, propagating upward
  (the root split grows the tree's height);
* :meth:`CFTree.fit_threshold` reproduces BIRCH's rebuild loop in spirit:
  it doubles the threshold until the leaf-entry count fits a target, which
  is how the comparison benchmark matches the CF summary size to a bubble
  summary's.

The leaf entries ("micro clusters") are then ordered with the same
summary-level OPTICS as data bubbles via
:func:`repro.clustering.bubble_optics.optics_over_summaries`.
"""

from __future__ import annotations

import math

import numpy as np

from ..sufficient import SufficientStatistics
from ..types import Point, PointMatrix

__all__ = ["ClusteringFeature", "CFTree"]


class ClusteringFeature:
    """One clustering feature ``(n, LS, SS)`` with BIRCH's derived radii."""

    __slots__ = ("_stats",)

    def __init__(self, dim: int) -> None:
        self._stats = SufficientStatistics(dim=dim)

    @classmethod
    def of_point(cls, point: Point) -> "ClusteringFeature":
        """A CF summarizing a single point."""
        cf = cls(dim=point.shape[0])
        cf._stats.insert(point)
        return cf

    @property
    def stats(self) -> SufficientStatistics:
        """The underlying sufficient statistics."""
        return self._stats

    @property
    def n(self) -> int:
        """Number of points summarized."""
        return self._stats.n

    @property
    def dim(self) -> int:
        """Dimensionality."""
        return self._stats.dim

    def centroid(self) -> np.ndarray:
        """``LS / n``."""
        return self._stats.mean()

    def radius(self) -> float:
        """BIRCH's radius: std of member distances from the centroid."""
        n = self._stats.n
        if n == 0:
            return 0.0
        mean = self._stats.linear_sum / n
        sq = self._stats.square_sum / n - float(np.dot(mean, mean))
        return math.sqrt(max(sq, 0.0))

    def absorb(self, point: Point) -> None:
        """Add one point to this feature."""
        self._stats.insert(point)

    def radius_if_absorbed(self, point: Point) -> float:
        """The radius this CF would have after absorbing ``point``."""
        n = self._stats.n + 1
        ls = self._stats.linear_sum + point
        ss = self._stats.square_sum + float(np.dot(point, point))
        mean = ls / n
        sq = ss / n - float(np.dot(mean, mean))
        return math.sqrt(max(sq, 0.0))

    def merge(self, other: "ClusteringFeature") -> None:
        """Additive merge (disjoint point sets)."""
        self._stats.merge(other._stats)

    def centroid_distance(self, other: "ClusteringFeature") -> float:
        """Euclidean distance between centroids (BIRCH's D0 metric)."""
        diff = self.centroid() - other.centroid()
        return float(np.sqrt(np.dot(diff, diff)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusteringFeature(n={self.n}, dim={self.dim})"


class _Node:
    """CF-tree node: a leaf holds CFs, an internal node holds children
    with a summarizing CF each."""

    __slots__ = ("is_leaf", "entries", "children")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[ClusteringFeature] = []
        self.children: list["_Node"] = []


class CFTree:
    """Phase-1 BIRCH: an insertion-built CF-tree.

    Args:
        threshold: leaf-entry radius cap (the "spatial extent" quality
            parameter).
        branching: maximum children of an internal node.
        leaf_capacity: maximum entries of a leaf node.

    Example:
        >>> import numpy as np
        >>> tree = CFTree(threshold=0.5)
        >>> for p in np.random.default_rng(0).normal(size=(100, 2)):
        ...     tree.insert(p)
        >>> tree.num_points
        100
    """

    def __init__(
        self,
        threshold: float,
        branching: int = 8,
        leaf_capacity: int = 8,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if branching < 2 or leaf_capacity < 2:
            raise ValueError("branching and leaf_capacity must be >= 2")
        self._threshold = float(threshold)
        self._branching = branching
        self._leaf_capacity = leaf_capacity
        self._root = _Node(is_leaf=True)
        self._num_points = 0
        self._dim: int | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The leaf-entry radius cap."""
        return self._threshold

    @property
    def num_points(self) -> int:
        """Total points summarized by the tree."""
        return self._num_points

    @property
    def num_leaf_entries(self) -> int:
        """How many clustering features the leaves hold (micro clusters)."""
        return len(self.leaf_entries())

    def leaf_entries(self) -> list[ClusteringFeature]:
        """All leaf CFs, left to right."""
        result: list[ClusteringFeature] = []

        def walk(node: _Node) -> None:
            if node.is_leaf:
                result.extend(node.entries)
            else:
                for child in node.children:
                    walk(child)

        walk(self._root)
        return result

    @property
    def height(self) -> int:
        """Tree height (a lone leaf root has height 1)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert one point (phase-1 BIRCH absorption/split mechanics)."""
        point = np.asarray(point, dtype=np.float64)
        if self._dim is None:
            self._dim = int(point.shape[0])
        elif point.shape != (self._dim,):
            raise ValueError(
                f"expected a ({self._dim},) point, got {point.shape}"
            )
        split = self._insert_into(self._root, point)
        if split is not None:
            # Root split: grow a new root above the two halves.
            left, right = split
            new_root = _Node(is_leaf=False)
            new_root.children = [left, right]
            new_root.entries = [
                _summarize_node(left),
                _summarize_node(right),
            ]
            self._root = new_root
        self._num_points += 1

    def insert_many(self, points: PointMatrix) -> None:
        """Insert a batch of points (order preserved)."""
        for point in np.asarray(points, dtype=np.float64):
            self.insert(point)

    def _insert_into(
        self, node: _Node, point: Point
    ) -> tuple[_Node, _Node] | None:
        """Insert below ``node``; returns the two halves if it split."""
        if node.is_leaf:
            return self._insert_into_leaf(node, point)

        # Descend into the child with the closest summarizing centroid.
        idx = _closest_entry(node.entries, point)
        split = self._insert_into(node.children[idx], point)
        if split is None:
            node.entries[idx].absorb(point)
            return None
        # Child split: replace it with the two halves.
        left, right = split
        node.children[idx : idx + 1] = [left, right]
        node.entries[idx : idx + 1] = [
            _summarize_node(left),
            _summarize_node(right),
        ]
        # The inserted point lives in one of the halves already (the
        # recursive call absorbed it), so no further absorption here.
        if len(node.children) > self._branching:
            return self._split_node(node)
        return None

    def _insert_into_leaf(
        self, leaf: _Node, point: Point
    ) -> tuple[_Node, _Node] | None:
        if leaf.entries:
            idx = _closest_entry(leaf.entries, point)
            if leaf.entries[idx].radius_if_absorbed(point) <= self._threshold:
                leaf.entries[idx].absorb(point)
                return None
        leaf.entries.append(ClusteringFeature.of_point(point))
        if len(leaf.entries) > self._leaf_capacity:
            return self._split_node(leaf)
        return None

    def _split_node(self, node: _Node) -> tuple[_Node, _Node]:
        """Split an overflowing node by farthest-pair seeding."""
        centroids = np.stack([cf.centroid() for cf in node.entries])
        # Farthest pair among entries (quadratic in the node size, which
        # is capped by branching/leaf_capacity).
        sq = (
            np.einsum("ij,ij->i", centroids, centroids)[:, None]
            + np.einsum("ij,ij->i", centroids, centroids)[None, :]
            - 2.0 * (centroids @ centroids.T)
        )
        seed_a, seed_b = np.unravel_index(int(np.argmax(sq)), sq.shape)
        to_a = (
            np.linalg.norm(centroids - centroids[seed_a], axis=1)
            <= np.linalg.norm(centroids - centroids[seed_b], axis=1)
        )
        to_a[seed_a] = True
        to_a[seed_b] = False

        left = _Node(is_leaf=node.is_leaf)
        right = _Node(is_leaf=node.is_leaf)
        for i, goes_left in enumerate(to_a):
            target = left if goes_left else right
            target.entries.append(node.entries[i])
            if not node.is_leaf:
                target.children.append(node.children[i])
        return left, right

    # ------------------------------------------------------------------
    # Threshold fitting (the rebuild loop, simplified)
    # ------------------------------------------------------------------
    @classmethod
    def fit_threshold(
        cls,
        points: PointMatrix,
        max_leaf_entries: int,
        initial_threshold: float | None = None,
        branching: int = 8,
        leaf_capacity: int = 8,
        max_rebuilds: int = 32,
    ) -> "CFTree":
        """Build a tree whose leaf-entry count fits ``max_leaf_entries``.

        BIRCH grows the threshold and rebuilds when memory runs out; this
        simplified loop doubles the threshold until the summary fits,
        which is what the bubbles-vs-CFs comparison needs (equal summary
        sizes).
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("fit_threshold expects a non-empty (m, d) matrix")
        if max_leaf_entries < 1:
            raise ValueError("max_leaf_entries must be >= 1")
        if initial_threshold is None:
            spread = points.std(axis=0).mean()
            initial_threshold = max(spread / 100.0, 1e-9)
        threshold = float(initial_threshold)
        for _ in range(max_rebuilds):
            tree = cls(
                threshold=threshold,
                branching=branching,
                leaf_capacity=leaf_capacity,
            )
            tree.insert_many(points)
            if tree.num_leaf_entries <= max_leaf_entries:
                return tree
            threshold *= 2.0
        raise RuntimeError(
            f"could not fit {points.shape[0]} points into "
            f"{max_leaf_entries} leaf entries within {max_rebuilds} rebuilds"
        )


def _closest_entry(entries: list[ClusteringFeature], point: Point) -> int:
    """Index of the entry whose centroid is closest to ``point``."""
    centroids = np.stack([cf.centroid() for cf in entries])
    diff = centroids - point
    return int(np.argmin(np.einsum("ij,ij->i", diff, diff)))


def _summarize_node(node: _Node) -> ClusteringFeature:
    """A fresh CF summarizing everything below ``node``."""
    merged: ClusteringFeature | None = None
    for cf in node.entries:
        if merged is None:
            merged = ClusteringFeature(dim=cf.dim)
        clone = ClusteringFeature(dim=cf.dim)
        clone.stats.merge(cf.stats)
        merged.merge(clone)
    if merged is None:  # pragma: no cover - nodes are never empty
        raise ValueError("cannot summarize an empty node")
    return merged
