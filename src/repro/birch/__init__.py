"""BIRCH substrate: clustering features, the CF-tree, and its clustering.

The summarization baseline the paper *chose against* (Section 1), built
here so the bubbles-vs-clustering-features comparison is reproducible —
see :mod:`repro.birch.cftree` and :func:`repro.birch.cluster_cf_tree`.
"""

from .cftree import CFTree, ClusteringFeature
from .summary import CFSummaryResult, cluster_cf_tree

__all__ = [
    "CFSummaryResult",
    "CFTree",
    "ClusteringFeature",
    "cluster_cf_tree",
]
