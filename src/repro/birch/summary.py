"""Hierarchical clustering over a CF-tree summary.

The bridge that makes BIRCH's clustering features comparable to data
bubbles within this library: the leaf entries of a
:class:`~repro.birch.cftree.CFTree` are treated as summaries
(representative = centroid, extent = the bubble-style average pairwise
distance derived from the same ``(n, LS, SS)``) and ordered by the shared
summary-level OPTICS. The comparison benchmark then runs the identical
extraction + F-score pipeline over both summary kinds.

This reproduces the methodological setup of Breunig et al. 2001 (and the
premise of the paper under reproduction, Section 1): data bubbles and
clustering features carry the same sufficient statistics — the difference
lies in how the summaries are *formed* (nearest-seed partitioning vs
threshold absorption), which is exactly what the comparison isolates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering.bubble_optics import optics_over_summaries
from ..clustering.reachability import ExpandedPlot, ReachabilityPlot
from ..sufficient import extent as stats_extent, nn_dist
from .cftree import CFTree

__all__ = ["CFSummaryResult", "cluster_cf_tree"]


@dataclass(frozen=True)
class CFSummaryResult:
    """OPTICS output over a CF-tree's leaf entries.

    Attributes:
        plot: reachability plot over leaf-entry indices (tree order).
        counts: per-entry point counts.
        virtual_reachability: per-entry interior reachability estimate.
    """

    plot: ReachabilityPlot
    counts: np.ndarray
    virtual_reachability: np.ndarray

    def expanded(self) -> ExpandedPlot:
        """One plot entry per summarized point (same trick as bubbles)."""
        return self.plot.expand(self.counts, self.virtual_reachability)


def cluster_cf_tree(
    tree: CFTree, min_pts: int = 25, eps: float = np.inf
) -> CFSummaryResult:
    """Order a CF-tree's leaf entries with summary-level OPTICS.

    Raises:
        ValueError: for an empty tree.
    """
    entries = tree.leaf_entries()
    if not entries:
        raise ValueError("cannot cluster an empty CF-tree")
    reps = np.stack([cf.centroid() for cf in entries])
    extents = np.asarray(
        [stats_extent(cf.stats) if cf.n > 1 else 0.0 for cf in entries]
    )
    counts = np.asarray([cf.n for cf in entries], dtype=np.int64)
    internal_core = np.asarray(
        [
            nn_dist(cf.stats, min_pts) if cf.n > 1 else 0.0
            for cf in entries
        ]
    )
    plot = optics_over_summaries(
        reps, extents, counts, internal_core, min_pts=min_pts, eps=eps
    )
    virtual = plot.core_distances.copy()
    fallback = ~np.isfinite(virtual) | (virtual <= 0.0)
    virtual[fallback] = extents[fallback]
    return CFSummaryResult(
        plot=plot, counts=counts, virtual_reachability=virtual
    )
