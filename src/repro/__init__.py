"""repro — incremental data bubbles for dynamic hierarchical clustering.

A faithful, self-contained reproduction of Nassar, Sander & Cheng,
*"Incremental and Effective Data Summarization for Dynamic Hierarchical
Clustering"* (SIGMOD 2004), including every substrate the paper relies on:
data bubbles over sufficient statistics, triangle-inequality accelerated
point assignment, the β quality measure with Chebyshev classification,
synchronized merge/split maintenance, OPTICS (on points and on bubbles),
reachability-plot cluster extraction, the paper's six dynamic workload
scenarios, and the full evaluation harness for Table 1 and Figures 7–11.

Quickstart::

    import numpy as np
    from repro import (
        BubbleBuilder, BubbleConfig, IncrementalMaintainer, PointStore,
    )

    store = PointStore(dim=2)
    store.insert(np.random.default_rng(0).normal(size=(10_000, 2)))
    bubbles = BubbleBuilder(BubbleConfig(num_bubbles=100, seed=0)).build(store)
    maintainer = IncrementalMaintainer(bubbles, store)
    # ... maintainer.apply_batch(update) as the database changes ...
"""

from .core import (
    AdaptiveMaintainer,
    Assigner,
    AssignerCache,
    AuditReport,
    BatchReport,
    BetaQuality,
    BubbleBuilder,
    BubbleClass,
    BubbleConfig,
    BubbleSet,
    CompleteRebuildMaintainer,
    DataBubble,
    DonorPolicy,
    ExtentQuality,
    IncrementalMaintainer,
    InvariantAuditor,
    MaintenanceConfig,
    NaiveAssigner,
    QualityMeasure,
    QualityReport,
    SplitStrategy,
    TriangleInequalityAssigner,
    chebyshev_k,
    make_assigner,
)
from .database import PointStore, UpdateBatch
from .exceptions import (
    CorruptStateError,
    DimensionMismatchError,
    DuplicatePointError,
    EmptyBubbleError,
    InvalidConfigError,
    InvalidPointError,
    NotFittedError,
    PersistenceError,
    ReproError,
    SnapshotError,
    UnknownPointError,
    WalCorruptionError,
)
from .geometry import CounterSnapshot, DistanceCounter
from .io import load_session, save_session
from .streaming import DurableSummarizer, SlidingWindowSummarizer
from .sufficient import SufficientStatistics

__version__ = "1.2.0"

__all__ = [
    "AdaptiveMaintainer",
    "Assigner",
    "AssignerCache",
    "AuditReport",
    "BatchReport",
    "BetaQuality",
    "BubbleBuilder",
    "BubbleClass",
    "BubbleConfig",
    "BubbleSet",
    "CompleteRebuildMaintainer",
    "CorruptStateError",
    "CounterSnapshot",
    "DataBubble",
    "DimensionMismatchError",
    "DistanceCounter",
    "DonorPolicy",
    "DuplicatePointError",
    "DurableSummarizer",
    "EmptyBubbleError",
    "ExtentQuality",
    "IncrementalMaintainer",
    "InvalidConfigError",
    "InvalidPointError",
    "InvariantAuditor",
    "MaintenanceConfig",
    "NaiveAssigner",
    "NotFittedError",
    "PersistenceError",
    "PointStore",
    "QualityMeasure",
    "QualityReport",
    "ReproError",
    "SlidingWindowSummarizer",
    "SnapshotError",
    "SplitStrategy",
    "SufficientStatistics",
    "TriangleInequalityAssigner",
    "UnknownPointError",
    "UpdateBatch",
    "WalCorruptionError",
    "chebyshev_k",
    "load_session",
    "make_assigner",
    "save_session",
    "__version__",
]
