"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-specific failures with a
single ``except`` clause while still letting programming errors (plain
``TypeError``/``ValueError`` raised by numpy and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class EmptyBubbleError(ReproError):
    """An operation required a non-empty data bubble.

    Raised, for example, when asking an empty bubble for its representative
    or extent: with ``n == 0`` the sufficient statistics ``(n, LS, SS)``
    cannot be turned into a mean or a radius.
    """


class UnknownPointError(ReproError):
    """A point id was not found in the :class:`~repro.database.PointStore`.

    Typically signals a deletion of a point that was never inserted (or was
    already deleted), which would silently corrupt the sufficient statistics
    if allowed through.
    """


class DuplicatePointError(ReproError):
    """A point id was inserted twice into the same store."""


class InvalidConfigError(ReproError):
    """A configuration dataclass carries out-of-range values.

    Configurations are validated eagerly in ``__post_init__`` so that a bad
    parameter fails at construction time rather than deep inside a batch
    update.
    """


class NotFittedError(ReproError):
    """A model/summary object was used before it was built.

    Mirrors the scikit-learn convention: accessing results (reachability
    plot, cluster labels, bubble set) before the corresponding ``build`` /
    ``fit`` / ``run`` call is a caller error, reported explicitly.
    """


class DimensionMismatchError(ReproError):
    """Points of differing dimensionality were mixed in one structure."""


class InvalidPointError(ReproError, ValueError):
    """A point failed ingestion validation (NaN/Inf coordinates, a
    dimension mismatch, or a duplicate id within one batch).

    Also a :class:`ValueError`, because malformed input at this boundary
    was historically reported as one — ``except ValueError`` keeps
    working.

    Raised at the summarizer/maintainer boundary under the ``strict``
    bad-point policy, *before* the batch is write-ahead logged or applied
    — a single malformed point must never poison the sufficient
    statistics ``(n, LS, SS)``, which incremental maintenance would then
    propagate forever. The ``skip`` and ``quarantine`` policies reject
    the offending points without raising.
    """


class ServiceError(ReproError):
    """Base class for ingestion-service failures (:mod:`repro.service`).

    Raised for fleet-level misuse (submitting to a drained fleet, a
    tenant whose shard has failed) and for malformed service
    configuration. Shard-level *data* problems are not errors: a full
    queue under the ``shed`` policy drops the event and counts it, and a
    bad point follows the summarizer's ``on_bad_point`` policy.
    """


class EventError(ServiceError):
    """An NDJSON point event failed to parse or validate.

    Carries the offending line number when known. Under the service's
    ``strict`` event policy this aborts ingestion; under ``skip`` the
    line is dropped and counted.
    """

    def __init__(self, message: str, lineno: int | None = None) -> None:
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)
        self.lineno = lineno


class PersistenceError(ReproError):
    """Base class for durable-state failures (WAL, snapshots, recovery)."""


class WalCorruptionError(PersistenceError):
    """The write-ahead log contains an unreadable record.

    Raised when a record *before* the log tail fails its checksum or has an
    impossible header — data that was previously acknowledged as durable is
    damaged, so recovery must not silently continue past it. A torn *final*
    record (an interrupted append) is not corruption; it is truncated and
    recovery proceeds.
    """


class SnapshotError(PersistenceError):
    """A snapshot file is unreadable or has an unsupported format version."""


class CorruptStateError(PersistenceError):
    """A durable state directory is damaged beyond automatic fallback.

    Raised when recovery cannot assemble *any* consistent state — for
    example, no snapshot generation loads but the write-ahead log starts
    past batch zero, so the missing history cannot be replayed. Less
    severe damage degrades instead of raising: a corrupt newest snapshot
    is quarantined (renamed ``*.corrupt``) and recovery falls back to the
    previous generation plus a longer WAL replay.
    """
