"""Trace queries: reconstruct fleet span trees from per-tenant JSONL.

The fleet stamps one trace id onto each micro-batch
(``<tenant>:<epoch>:<seq>``), the shard opens an ``ingest_batch`` span
carrying it, and :class:`~repro.observability.spans.SpanTracer`
propagates the id to every nested span — so each tenant's
``trace.jsonl`` holds causally-parented fragments of one fleet-wide
trace stream. This module reads those files back and answers the
operator questions the raw JSONL cannot: *which ops dominate latency*
(exact per-op p50/p95 over closed spans, not bucket-granular) and *where
did the slowest batches spend their time* (the critical path down the
max-duration child chain).

Critical-path attribution telescopes: each node on the chain is charged
its duration minus its largest child's, the terminal node keeps its full
duration, so the path's self-times sum exactly to the root span's
measured wall-clock — the invariant the acceptance test checks against
the batch duration.

Trace files are append-only and survive fleet restarts; a restarted
fleet's fresh ``SpanTracer`` restarts span numbering at 0, so the reader
segments each file into **generations** (a reused span id starts a new
one) and never links spans across runs. Events that cannot be parsed or
paired are counted, not fatal — a crashed run's torn tail still yields
every complete trace before it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SpanRecord",
    "TraceSet",
    "critical_path",
    "load_fleet_traces",
    "read_span_records",
    "render_trace_report",
]

#: Envelope/identity keys excluded from a record's free-form fields.
_ENVELOPE_KEYS = frozenset(
    {"schema", "seq", "ts", "kind", "span", "parent", "op", "trace"}
)


@dataclass
class SpanRecord:
    """One span reassembled from its ``span_start``/``span_end`` pair."""

    tenant: str
    generation: int
    span_id: int
    parent_id: int | None
    op: str
    trace: str | None
    start_ts: float
    fields: dict = field(default_factory=dict)
    seconds: float | None = None
    error: bool = False
    children: list["SpanRecord"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        """Whether the span's ``span_end`` was found."""
        return self.seconds is not None


def read_span_records(
    path: str | Path, tenant: str
) -> tuple[list[SpanRecord], int]:
    """Parse one tenant trace file into parented span records.

    Returns ``(records, skipped_lines)``; non-span events (the same file
    carries ``wal_append`` etc. when full event tracing is on) are
    ignored, unparseable lines are counted.
    """
    records: list[SpanRecord] = []
    skipped = 0
    generation = 0
    live: dict[int, SpanRecord] = {}  # span id -> record, this generation
    by_id: dict[int, SpanRecord] = {}  # for parent links & end pairing
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            kind = event.get("kind")
            if kind == "span_start":
                span_id = event.get("span")
                if not isinstance(span_id, int):
                    skipped += 1
                    continue
                if span_id in by_id:
                    # A reused id means a fresh SpanTracer (fleet
                    # resume); start a new generation so parent links
                    # never cross runs.
                    generation += 1
                    live = {}
                    by_id = {}
                record = SpanRecord(
                    tenant=tenant,
                    generation=generation,
                    span_id=span_id,
                    parent_id=event.get("parent"),
                    op=event.get("op", ""),
                    trace=event.get("trace"),
                    start_ts=float(event.get("ts", 0.0)),
                    fields={
                        key: value
                        for key, value in event.items()
                        if key not in _ENVELOPE_KEYS
                    },
                )
                live[span_id] = record
                by_id[span_id] = record
                records.append(record)
                parent = by_id.get(record.parent_id)
                if record.parent_id is not None and parent is not None:
                    parent.children.append(record)
            elif kind == "span_end":
                span_id = event.get("span")
                record = live.pop(span_id, None)
                if record is None:
                    skipped += 1
                    continue
                record.seconds = float(event.get("seconds", 0.0))
                record.error = bool(event.get("error", False))
    return records, skipped


def critical_path(root: SpanRecord) -> list[dict]:
    """The max-duration child chain from ``root`` down, with self-times.

    Each step carries the node's full duration and its *self* time
    (duration minus its largest closed child's); the terminal node keeps
    everything, so ``sum(step["self_seconds"])`` equals
    ``root.seconds`` exactly.
    """
    path: list[dict] = []
    node = root
    while True:
        closed = [c for c in node.children if c.closed]
        child = max(closed, key=lambda c: c.seconds, default=None)
        seconds = node.seconds or 0.0
        child_seconds = child.seconds if child is not None else 0.0
        path.append(
            {
                "tenant": node.tenant,
                "span": node.span_id,
                "op": node.op,
                "seconds": seconds,
                "self_seconds": max(0.0, seconds - child_seconds),
            }
        )
        if child is None:
            return path
        node = child


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over an ascending-sorted list."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


class TraceSet:
    """Every span from a fleet directory, indexed for querying."""

    def __init__(
        self,
        spans: list[SpanRecord],
        files: int = 0,
        skipped_lines: int = 0,
    ) -> None:
        self.spans = spans
        self.files = files
        self.skipped_lines = skipped_lines
        #: Trace roots (spans that carry a trace id and have no parent),
        #: keyed by trace id; first writer wins on the (never expected)
        #: chance of a duplicate id.
        self.traces: dict[str, SpanRecord] = {}
        for record in spans:
            if record.trace is not None and record.parent_id is None:
                self.traces.setdefault(record.trace, record)

    @property
    def closed_spans(self) -> list[SpanRecord]:
        return [record for record in self.spans if record.closed]

    @property
    def unclosed(self) -> int:
        """Spans whose end event never arrived (crash mid-span)."""
        return sum(1 for record in self.spans if not record.closed)

    def op_stats(self) -> list[dict]:
        """Exact per-op latency stats over closed spans, slowest first."""
        durations: dict[str, list[float]] = {}
        for record in self.closed_spans:
            durations.setdefault(record.op, []).append(record.seconds)
        rows = []
        for op, values in durations.items():
            values.sort()
            rows.append(
                {
                    "op": op,
                    "count": len(values),
                    "total_seconds": sum(values),
                    "p50_seconds": _percentile(values, 0.50),
                    "p95_seconds": _percentile(values, 0.95),
                }
            )
        rows.sort(key=lambda row: row["total_seconds"], reverse=True)
        return rows

    def slowest_traces(self, n: int = 3) -> list[SpanRecord]:
        """The ``n`` slowest closed trace roots, slowest first."""
        roots = [root for root in self.traces.values() if root.closed]
        roots.sort(key=lambda root: root.seconds, reverse=True)
        return roots[:n]


def load_fleet_traces(fleet_dir: str | Path) -> TraceSet:
    """Read every ``tenants/*/trace.jsonl`` under a fleet directory."""
    root = Path(fleet_dir)
    spans: list[SpanRecord] = []
    skipped = 0
    files = sorted((root / "tenants").glob("*/trace.jsonl"))
    for path in files:
        records, bad = read_span_records(path, path.parent.name)
        spans.extend(records)
        skipped += bad
    return TraceSet(spans, files=len(files), skipped_lines=skipped)


def render_trace_report(traces: TraceSet, top: int = 3) -> str:
    """Aligned text report: totals, per-op table, critical paths."""
    lines: list[str] = []
    lines.append(
        f"fleet trace query: {traces.files} tenant trace file(s), "
        f"{len(traces.traces)} trace(s), {len(traces.spans)} span(s)"
        + (
            f" ({traces.unclosed} unclosed)"
            if traces.unclosed
            else ""
        )
    )
    if traces.skipped_lines:
        lines.append(f"skipped {traces.skipped_lines} unparseable line(s)")
    if not traces.spans:
        lines.append(
            "no spans found — run serve with --trace to record them"
        )
        return "\n".join(lines) + "\n"

    stats = traces.op_stats()
    lines.append("")
    lines.append("per-op latency (closed spans, exact quantiles)")
    width = max(len(row["op"]) for row in stats)
    lines.append(
        f"  {'op'.ljust(width)}  {'count':>7}  {'total_s':>9}  "
        f"{'p50_ms':>9}  {'p95_ms':>9}"
    )
    for row in stats:
        lines.append(
            f"  {row['op'].ljust(width)}  {row['count']:>7}  "
            f"{row['total_seconds']:>9.4f}  "
            f"{row['p50_seconds'] * 1e3:>9.3f}  "
            f"{row['p95_seconds'] * 1e3:>9.3f}"
        )

    slowest = traces.slowest_traces(top)
    if slowest:
        lines.append("")
        lines.append(f"slowest micro-batches (critical path, top {top})")
        for rank, root in enumerate(slowest, start=1):
            points = root.fields.get("points")
            detail = f", {points} point(s)" if points is not None else ""
            lines.append(
                f"  #{rank} trace {root.trace}  tenant {root.tenant}  "
                f"{root.seconds * 1e3:.3f} ms{detail}"
            )
            for step in critical_path(root):
                lines.append(
                    f"     {step['op']:<{width}}  "
                    f"{step['self_seconds'] * 1e3:>9.3f} ms self  "
                    f"({step['seconds'] * 1e3:.3f} ms total)"
                )
        lines.append(
            "exemplar trace ids: "
            + "  ".join(root.trace for root in slowest)
        )
    return "\n".join(lines) + "\n"
