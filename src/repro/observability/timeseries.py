"""Windowed time-series telemetry: per-window counter deltas and gauges.

Cumulative counters answer "how much, ever"; the paper's evaluation plots
answer "how much, *when*" — distance computations saved per arriving
batch (Figures 10-11), split/merge activity as the stream drifts
(Section 4.2). This module closes that gap with a bounded ring of
windowed samples, in the spirit of the snapshot-over-time exposition
streaming-clustering monitors use (cf. CluStream's pyramidal time
frames): every ``interval`` appended batches the recorder diffs the
metrics registry against the previous window boundary and stores the
per-window *deltas* of the key flow counters alongside instantaneous
gauges of summary state (bubble count, β spread, quality-class fill,
cache hit rate).

Windows are counted in **batches**, not wall-clock seconds — the
summarizer is batch-driven and deterministic, so batch index is the only
time axis that is reproducible across runs. No wall clock or RNG is
touched; rolling a window costs one registry snapshot plus one gauge
probe, both outside the per-point hot loops.

Samples serialize as JSONL (one window per line, ``"schema": 1``) via
``summarize --timeseries-out``; :class:`WindowSample` is also what
:mod:`~repro.observability.health` aggregates for trend sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .registry import Counter, MetricsSnapshot

__all__ = [
    "TIMESERIES_SCHEMA_VERSION",
    "TRACKED_COUNTERS",
    "TimeseriesRecorder",
    "WindowSample",
]

#: Version stamped on every serialized window line.
TIMESERIES_SCHEMA_VERSION = 1

#: Counter families whose per-window deltas every sample records. Values
#: are summed across label sets of the same name, so e.g. WAL appends
#: keep counting if a future PR labels them by domain.
TRACKED_COUNTERS: tuple[str, ...] = (
    "repro_distance_computed_total",
    "repro_distance_pruned_total",
    "repro_maintenance_bubble_splits_total",
    "repro_maintenance_donor_migrations_total",
    "repro_maintenance_class_changes_total",
    "repro_stream_evictions_total",
    "repro_wal_appends_total",
    "repro_snapshot_writes_total",
    "repro_io_retries_total",
)


@dataclass(frozen=True)
class WindowSample:
    """One closed window: counter deltas plus end-of-window gauges."""

    window: int
    start_batch: int
    end_batch: int
    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, int | float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready representation (one JSONL line)."""
        return {
            "schema": TIMESERIES_SCHEMA_VERSION,
            "window": self.window,
            "start_batch": self.start_batch,
            "end_batch": self.end_batch,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }


def _sum_counters(
    snapshot: MetricsSnapshot,
    names: tuple[str, ...] = TRACKED_COUNTERS,
) -> dict[str, int | float]:
    """Tracked counter totals in ``snapshot``, summed across label sets."""
    totals: dict[str, int | float] = dict.fromkeys(names, 0)
    for sample in snapshot:
        if sample.kind == "counter" and sample.name in totals:
            totals[sample.name] += sample.value
    return totals


def _live_totals(
    registry,
    names: tuple[str, ...] = TRACKED_COUNTERS,
) -> dict[str, int | float]:
    """Tracked counter totals read straight off the live registry.

    Equivalent to ``_sum_counters(registry.snapshot())`` but without
    materializing a full snapshot — a snapshot copies every histogram's
    bucket array, which at one window per batch would dominate the
    recorder's cost (the overhead benchmark gates this path).
    """
    totals: dict[str, int | float] = dict.fromkeys(names, 0)
    for metric in registry:
        if isinstance(metric, Counter) and metric.name in totals:
            totals[metric.name] += metric.value
    return totals


class TimeseriesRecorder:
    """Bounded ring of windowed counter deltas and instantaneous gauges.

    Attach one to an :class:`~repro.observability.Observability` handle
    (``Observability(timeseries=TimeseriesRecorder())``); the streaming
    layer then ticks it once per appended batch via :meth:`maybe_roll`,
    passing a zero-argument callable that probes the summarizer's gauges.
    Every ``interval`` ticks a window closes: tracked counters are diffed
    against the previous boundary, the gauge probe runs, and the
    :class:`WindowSample` joins the ring. When the ring is full the
    oldest window is dropped (and counted), keeping memory bounded on
    unbounded streams.

    Args:
        interval: batches per window (≥ 1).
        capacity: maximum retained windows (≥ 1); older windows fall off.
        counters: counter families whose per-window deltas every sample
            records; defaults to :data:`TRACKED_COUNTERS`. The SLO
            engine passes its own good/bad counter set here, reusing
            the windowing/ring machinery for burn-rate bookkeeping.
    """

    __slots__ = (
        "interval",
        "capacity",
        "counters",
        "dropped",
        "_obs",
        "_samples",
        "_window",
        "_batches",
        "_window_start",
        "_baseline",
    )

    def __init__(
        self,
        interval: int = 1,
        capacity: int = 4096,
        counters: tuple[str, ...] | None = None,
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.interval = interval
        self.capacity = capacity
        self.counters = (
            TRACKED_COUNTERS if counters is None else tuple(counters)
        )
        self.dropped = 0
        self._obs = None
        self._samples: list[WindowSample] = []
        self._window = 0
        self._batches = 0
        self._window_start = 0
        self._baseline: dict[str, int | float] | None = None

    def bind(self, obs) -> None:
        """Attach to an Observability handle (called by its constructor)."""
        if self._obs is not None and self._obs is not obs:
            raise ValueError(
                "TimeseriesRecorder is already bound to another "
                "Observability handle; create one recorder per handle"
            )
        self._obs = obs

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def maybe_roll(self, gauges_fn=None) -> WindowSample | None:
        """Count one batch; close the window when the interval is full.

        Returns the closed :class:`WindowSample`, or ``None`` when the
        window is still open. ``gauges_fn`` (zero-argument, returning a
        flat ``{name: number}`` dict) is only called at window
        boundaries, so gauge probing cost is amortised over ``interval``
        batches.
        """
        if self._obs is None:
            raise ValueError(
                "TimeseriesRecorder is not bound; attach it to an "
                "Observability handle before recording"
            )
        self._batches += 1
        if self._batches - self._window_start < self.interval:
            return None
        return self._close_window(gauges_fn)

    def flush(self, gauges_fn=None) -> WindowSample | None:
        """Close a partial window (end of stream), if any batches remain."""
        if self._obs is None or self._batches == self._window_start:
            return None
        return self._close_window(gauges_fn)

    def _close_window(self, gauges_fn) -> WindowSample:
        totals = _live_totals(self._obs.metrics, self.counters)
        if self._baseline is None:
            deltas = dict(totals)
        else:
            deltas = {
                name: totals[name] - self._baseline.get(name, 0)
                for name in totals
            }
        gauges = dict(gauges_fn()) if gauges_fn is not None else {}
        sample = WindowSample(
            window=self._window,
            start_batch=self._window_start,
            end_batch=self._batches,
            counters=deltas,
            gauges=gauges,
        )
        self._samples.append(sample)
        if len(self._samples) > self.capacity:
            del self._samples[0]
            self.dropped += 1
        self._baseline = totals
        self._window += 1
        self._window_start = self._batches
        self._obs.emit(
            "timeseries_window",
            window=sample.window,
            start_batch=sample.start_batch,
            end_batch=sample.end_batch,
        )
        return sample

    # ------------------------------------------------------------------
    # Reading / serialization
    # ------------------------------------------------------------------
    @property
    def samples(self) -> tuple[WindowSample, ...]:
        """Retained windows, oldest first."""
        return tuple(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def to_jsonl(self) -> str:
        """Retained windows as JSON lines (trailing newline included)."""
        import json

        lines = [
            json.dumps(sample.as_dict(), sort_keys=True)
            for sample in self._samples
        ]
        return "".join(line + "\n" for line in lines)

    def write_jsonl(self, path) -> None:
        """Write retained windows to ``path`` as JSONL."""
        from pathlib import Path

        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeseriesRecorder(interval={self.interval}, "
            f"windows={len(self._samples)}, dropped={self.dropped})"
        )
