"""Health reports: one-page summary of a run's quality and cost signals.

The metrics registry, the event trace, the span histograms, and the
windowed time-series each expose one axis of a run; this module folds
them into the single document an operator actually wants — "is bubble
quality degrading, is Lemma 1 pruning still paying, where does the time
go, did anything degrade or self-heal?" — rendered as JSON (``"schema":
1``) or aligned text.

:func:`collect_health` reads a live :class:`~repro.observability.Observability`
handle (plus, when available, the summarizer itself for the β quality
histogram of Definitions 2-3); the ``repro-bubbles report`` CLI command
builds the same document from a ``--wal-dir`` state directory by
recovering it under a fresh instrumented handle, so the span latency
table reflects genuinely measured recovery/audit work.

Report sections:

* ``stream`` — window fill, active bubbles, batches/points ingested.
* ``quality`` — good/under-filled/over-filled histogram, β min/median/
  max and the Chebyshev boundaries (Definition 3).
* ``pruning`` — distances computed vs pruned and the savings ratio
  (the Figures 10-11 quantity).
* ``spans`` — per-operation latency table (count, total, mean, ~p95
  from the fixed histogram buckets).
* ``events`` — event counts by kind.
* ``robustness`` — recoveries, audits/repairs, degraded-mode incidents
  (quarantined snapshots, torn WAL tails, stale tmp sweeps, IO retries).
* ``timeseries`` — retained/dropped window counts when a recorder is
  attached.
* ``slo`` — burn-rate objective states when an
  :class:`~repro.observability.slo.SLOEngine` summary is supplied.
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import MetricsSnapshot
from .spans import SPAN_SECONDS_METRIC

__all__ = [
    "HEALTH_SCHEMA_VERSION",
    "collect_health",
    "render_health",
    "write_health",
]

#: Version stamped on every health-report document.
HEALTH_SCHEMA_VERSION = 1


def collect_health(
    obs, summarizer=None, source: str = "live", slo: dict | None = None
) -> dict:
    """Build a health-report document from an observability handle.

    Args:
        obs: the :class:`~repro.observability.Observability` handle whose
            registry/spans/timeseries the report reads.
        summarizer: optionally, the live
            :class:`~repro.streaming.SlidingWindowSummarizer` (or a
            ``DurableSummarizer``) — enables the quality section, which
            needs the bubbles themselves, not just metrics.
        source: provenance string recorded in the document (``"live"``
            or the state-directory path).
        slo: optionally, an :meth:`SLOEngine.summary()
            <repro.observability.slo.SLOEngine.summary>` document —
            surfaces burn-rate objective states in the report.
    """
    snapshot = obs.metrics.snapshot()
    report: dict = {
        "schema": HEALTH_SCHEMA_VERSION,
        "source": source,
        "stream": _stream_section(snapshot, summarizer),
        "quality": _quality_section(summarizer),
        "pruning": _pruning_section(snapshot, summarizer),
        "spans": _span_section(snapshot),
        "events": _event_section(snapshot),
        "robustness": _robustness_section(snapshot),
    }
    if obs.timeseries is not None:
        report["timeseries"] = {
            "windows": len(obs.timeseries),
            "dropped": obs.timeseries.dropped,
            "interval": obs.timeseries.interval,
        }
    if slo is not None:
        report["slo"] = slo
    return report


def write_health(report: dict, path) -> None:
    """Write a health document to ``path`` as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _counter_total(
    snapshot: MetricsSnapshot, name: str
) -> int | float:
    """A counter family's total across all label sets."""
    total: int | float = 0
    for sample in snapshot:
        if sample.name == name and sample.kind == "counter":
            total += sample.value
    return total


def _stream_section(snapshot: MetricsSnapshot, summarizer) -> dict:
    section = {
        "window_points": snapshot.value("repro_stream_window_points"),
        "active_bubbles": snapshot.value("repro_stream_active_bubbles"),
        "chunks": snapshot.value("repro_stream_chunks_total"),
        "points_ingested": snapshot.value("repro_stream_points_total"),
        "points_evicted": snapshot.value("repro_stream_evictions_total"),
        "points_rejected": _counter_total(
            snapshot, "repro_points_rejected_total"
        ),
        "batches": snapshot.value("repro_maintenance_batches_total"),
    }
    if summarizer is None:
        return section
    # A recovered summarizer carries its real state while the registry
    # gauges still read zero (they only move on live appends) — prefer
    # the object itself for the instantaneous values.
    store = getattr(summarizer, "store", None)
    if store is not None:
        section["window_points"] = store.size
    maintainer = getattr(summarizer, "maintainer", None)
    if maintainer is not None:
        section["active_bubbles"] = getattr(
            maintainer, "active_count", len(maintainer.bubbles)
        )
    return section


def _quality_section(summarizer) -> dict | None:
    if summarizer is None:
        return None
    maintainer = getattr(summarizer, "maintainer", None)
    if maintainer is None:
        return None
    # β classification is counts-only (Definition 2) — no distance
    # computations, no RNG — so probing it here cannot perturb the run.
    report = maintainer.classify()
    values = sorted(float(v) for v in report.values)
    classes = {"good": 0, "under-filled": 0, "over-filled": 0}
    for cls in report.classes:
        classes[cls.value] += 1
    mid = len(values) // 2
    if not values:
        median = 0.0
    elif len(values) % 2:
        median = values[mid]
    else:
        median = (values[mid - 1] + values[mid]) / 2.0
    return {
        "classes": classes,
        "beta": {
            "min": values[0] if values else 0.0,
            "median": median,
            "max": values[-1] if values else 0.0,
            "mean": report.mean,
            "std": report.std,
        },
        "boundaries": {"lower": report.lower, "upper": report.upper},
        "bubbles": len(values),
    }


def _pruning_section(snapshot: MetricsSnapshot, summarizer) -> dict:
    if summarizer is not None:
        counter = summarizer.counter
        computed = int(counter.computed)
        pruned = int(counter.pruned)
    else:
        computed = int(snapshot.value("repro_distance_computed_total"))
        pruned = int(snapshot.value("repro_distance_pruned_total"))
    considered = computed + pruned
    return {
        "distances_computed": computed,
        "distances_pruned": pruned,
        "savings_ratio": pruned / considered if considered else 0.0,
    }


def _span_section(snapshot: MetricsSnapshot) -> list[dict]:
    rows = []
    for sample in snapshot:
        if sample.name != SPAN_SECONDS_METRIC:
            continue
        if sample.kind != "histogram" or not sample.count:
            continue
        op = dict(sample.labels).get("op", "")
        rows.append(
            {
                "op": op,
                "count": sample.count,
                "total_seconds": sample.sum,
                "mean_seconds": sample.sum / sample.count,
                "p95_seconds": _approx_quantile(sample, 0.95),
            }
        )
    rows.sort(key=lambda row: row["total_seconds"], reverse=True)
    return rows


def _approx_quantile(sample, q: float) -> float | None:
    """Upper bucket bound covering quantile ``q`` (``None`` ⇒ +Inf bucket).

    Fixed-bucket histograms only support bound-granular quantiles; the
    report states the guarantee ("p95 ≤ bound") rather than inventing
    precision the data does not carry.
    """
    target = q * sample.count
    cumulative = 0
    for bound, count in zip(sample.bounds, sample.bucket_counts):
        cumulative += count
        if cumulative >= target:
            return bound
    return None  # quantile falls in the +Inf bucket


def _event_section(snapshot: MetricsSnapshot) -> dict:
    counts = {}
    for sample in snapshot:
        if sample.name == "repro_events_total" and sample.kind == "counter":
            kind = dict(sample.labels).get("kind", "")
            counts[kind] = int(sample.value)
    return dict(sorted(counts.items()))


def _robustness_section(snapshot: MetricsSnapshot) -> dict:
    return {
        "recoveries": snapshot.value("repro_recovery_replays_total"),
        "replayed_batches": snapshot.value(
            "repro_recovery_replayed_batches_total"
        ),
        "audit_runs": snapshot.value("repro_audit_runs_total"),
        "audit_violations": snapshot.value("repro_audit_violations_total"),
        "audit_repairs": snapshot.value("repro_audit_repairs_total"),
        "points_reassigned": snapshot.value(
            "repro_audit_points_reassigned_total"
        ),
        "snapshots_quarantined": snapshot.value(
            "repro_snapshots_quarantined_total"
        ),
        "wal_torn_tails": snapshot.value("repro_wal_torn_tails_total"),
        "stale_tmp_removed": snapshot.value("repro_stale_tmp_removed_total"),
        "io_retries": snapshot.value("repro_io_retries_total"),
    }


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def render_health(report: dict) -> str:
    """Render a health document as an aligned plain-text report."""
    lines: list[str] = []
    lines.append(f"health report (schema {report['schema']})")
    lines.append(f"source: {report['source']}")

    stream = report["stream"]
    lines.append("")
    lines.append("stream")
    lines.append(
        f"  window points     {_num(stream['window_points'])}"
    )
    lines.append(
        f"  active bubbles    {_num(stream['active_bubbles'])}"
    )
    lines.append(f"  chunks            {_num(stream['chunks'])}")
    lines.append(
        f"  points ingested   {_num(stream['points_ingested'])}"
    )
    lines.append(
        f"  points evicted    {_num(stream['points_evicted'])}"
    )
    lines.append(
        f"  points rejected   {_num(stream['points_rejected'])}"
    )
    lines.append(f"  batches           {_num(stream['batches'])}")

    quality = report.get("quality")
    lines.append("")
    lines.append("quality (Definitions 2-3)")
    if quality is None:
        lines.append("  (no live summary — quality unavailable)")
    else:
        classes = quality["classes"]
        beta = quality["beta"]
        lines.append(
            f"  good              {classes['good']}"
        )
        lines.append(
            f"  under-filled      {classes['under-filled']}"
        )
        lines.append(
            f"  over-filled       {classes['over-filled']}"
        )
        lines.append(
            f"  beta min/med/max  {beta['min']:.6f} / "
            f"{beta['median']:.6f} / {beta['max']:.6f}"
        )
        lines.append(
            f"  chebyshev bounds  [{quality['boundaries']['lower']:.6f}, "
            f"{quality['boundaries']['upper']:.6f}]"
        )

    pruning = report["pruning"]
    lines.append("")
    lines.append("pruning (Figures 10-11)")
    lines.append(
        f"  computed          {_num(pruning['distances_computed'])}"
    )
    lines.append(
        f"  pruned            {_num(pruning['distances_pruned'])}"
    )
    lines.append(
        f"  savings ratio     {pruning['savings_ratio']:.3f}"
    )

    spans = report["spans"]
    lines.append("")
    lines.append("span latency (by total time)")
    if not spans:
        lines.append("  (no spans recorded — run with span tracing)")
    else:
        width = max(len(row["op"]) for row in spans)
        header = (
            f"  {'op'.ljust(width)}  {'count':>7}  {'total_s':>9}  "
            f"{'mean_ms':>9}  {'p95_ms':>9}"
        )
        lines.append(header)
        for row in spans:
            p95 = row["p95_seconds"]
            p95_text = "inf" if p95 is None else f"{p95 * 1e3:>.3f}"
            lines.append(
                f"  {row['op'].ljust(width)}  {row['count']:>7}  "
                f"{row['total_seconds']:>9.4f}  "
                f"{row['mean_seconds'] * 1e3:>9.3f}  {p95_text:>9}"
            )

    events = report["events"]
    lines.append("")
    lines.append("events")
    if not events:
        lines.append("  (none)")
    else:
        width = max(len(kind) for kind in events)
        for kind, count in events.items():
            lines.append(f"  {kind.ljust(width)}  {count}")

    robustness = report["robustness"]
    lines.append("")
    lines.append("robustness")
    lines.append(
        f"  recoveries        {_num(robustness['recoveries'])} "
        f"({_num(robustness['replayed_batches'])} batches replayed)"
    )
    lines.append(
        f"  audits            {_num(robustness['audit_runs'])} runs, "
        f"{_num(robustness['audit_violations'])} violations, "
        f"{_num(robustness['audit_repairs'])} repairs"
    )
    lines.append(
        f"  degraded mode     "
        f"{_num(robustness['snapshots_quarantined'])} snapshots "
        f"quarantined, {_num(robustness['wal_torn_tails'])} torn tails, "
        f"{_num(robustness['stale_tmp_removed'])} stale tmp, "
        f"{_num(robustness['io_retries'])} io retries"
    )

    timeseries = report.get("timeseries")
    if timeseries is not None:
        lines.append("")
        lines.append("timeseries")
        lines.append(
            f"  windows           {timeseries['windows']} retained, "
            f"{timeseries['dropped']} dropped "
            f"(interval {timeseries['interval']} batches)"
        )

    slo = report.get("slo")
    if slo is not None:
        lines.append("")
        lines.append(
            f"slo burn rates (fast {slo['fast_window_seconds']:g}s / "
            f"slow {slo['slow_window_seconds']:g}s)"
        )
        objectives = slo.get("objectives", [])
        if not objectives:
            lines.append("  (no objectives declared)")
        else:
            width = max(len(row["name"]) for row in objectives)
            for row in objectives:
                lines.append(
                    f"  {row['name'].ljust(width)}  {row['state']:<8}  "
                    f"target {row['target']:.4f}  "
                    f"burn fast {row['fast_burn_rate']:.2f} / "
                    f"slow {row['slow_burn_rate']:.2f}"
                )

    return "\n".join(lines) + "\n"


def _num(value: int | float) -> str:
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    return str(value)
