"""Live telemetry plane: HTTP scrape endpoints over a running fleet.

Everything the repo measures — the paper's distance-computation counters
(Figures 10-11), per-shard ingest latency histograms, breaker and
supervision state, SLO burn rates — becomes *scrapeable while the fleet
runs*: a stdlib :class:`~http.server.ThreadingHTTPServer` (no new
dependencies) serves

* ``/metrics`` — Prometheus text format 0.0.4. Every shard registry is
  frozen with one snapshot (so one tenant's series never mix values from
  two instants), stamped with a ``tenant`` label, merged with the
  fleet-level registry and synthetic fleet gauges, and sorted by name so
  each family renders under a single ``# HELP``/``# TYPE`` header.
* ``/health`` — always-200 JSON: overall status (``ok``/``degraded``),
  failed-shard and firing-alert counts, and the full fleet rollup
  (supervision, breaker states, DLQ totals, SLO summary).
* ``/ready`` — readiness probe: 200 while every shard is live, **503**
  when any shard is failed or the fleet is draining/closed, so an
  orchestrator stops routing to a degraded fleet.
* ``/tenants/<id>/stats`` — one shard's stats row (404 for unknown
  tenants).

The listener also owns the SLO ticker: a daemon thread calls
``fleet.slo_tick()`` every ``tick_seconds`` so burn-rate windows advance
on wall-clock cadence even when no requests arrive. Scrapes read
counters the shards already maintain — no ingest hot path ever blocks on
the plane, and the serve-with-listener arm of ``BENCH_observability``
gates the end-to-end overhead at ≤ 5%.

Counters stay monotone across consecutive scrapes even through shard
failures: supervisor restarts re-attach the replacement shard to the old
shard's observability handle, so each tenant's registry survives its
shard.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .export import to_prometheus
from .registry import MetricsRegistry, MetricsSnapshot

__all__ = [
    "PLANE_SCHEMA_VERSION",
    "TelemetryListener",
    "merged_fleet_snapshot",
]

#: Version stamped on the plane's JSON documents.
PLANE_SCHEMA_VERSION = 1

_JSON = "application/json; charset=utf-8"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

#: The endpoint catalogue served at ``/``.
ENDPOINTS: tuple[str, ...] = (
    "/metrics",
    "/health",
    "/ready",
    "/tenants/<id>/stats",
)


def merged_fleet_snapshot(fleet) -> MetricsSnapshot:
    """One merged scrape: every shard registry plus fleet-level series.

    Each shard registry is frozen atomically via
    :meth:`~repro.observability.registry.MetricsRegistry.snapshot`, so a
    tenant's samples are mutually consistent; samples are stamped with a
    ``tenant`` label and sorted by ``(name, labels)`` so the Prometheus
    renderer groups each family under one header.
    """
    samples = []
    tenants = fleet.tenants
    for tenant in tenants:
        try:
            shard = fleet.shard(tenant)
        except Exception:
            continue  # shard vanished between listing and scrape
        for sample in shard.obs.metrics.snapshot():
            samples.append(sample.relabeled(tenant=tenant))
    obs = getattr(fleet, "obs", None)
    if obs is not None:
        samples.extend(obs.metrics.snapshot())
    samples.extend(_fleet_series(fleet, tenants))
    samples.sort(key=lambda sample: (sample.name, sample.labels))
    return MetricsSnapshot(samples=tuple(samples))


def _fleet_series(fleet, tenants) -> list:
    """Synthetic fleet-level gauges (shard states, SLO burn rates)."""
    registry = MetricsRegistry()
    states: dict[str, int] = {}
    for tenant in tenants:
        try:
            state = fleet.shard(tenant).state
        except Exception:
            continue
        states[state] = states.get(state, 0) + 1
    registry.gauge(
        "repro_fleet_tenants", help="Tenants with live shards."
    ).set(len(tenants))
    for state, count in sorted(states.items()):
        registry.gauge(
            "repro_fleet_shards",
            help="Shards by lifecycle state.",
            labels={"state": state},
        ).set(count)
    engine = getattr(fleet, "slo", None)
    if engine is not None:
        summary = engine.summary()
        registry.gauge(
            "repro_slo_alerts_firing",
            help="SLO objectives currently firing.",
        ).set(summary["firing"])
        for row in summary["objectives"]:
            for window in ("fast", "slow"):
                registry.gauge(
                    "repro_slo_burn_rate",
                    help="SLO burn rate by objective and window.",
                    labels={"objective": row["name"], "window": window},
                ).set(row[f"{window}_burn_rate"])
    return list(registry.snapshot())


class _PlaneServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its owning listener."""

    daemon_threads = True
    allow_reuse_address = True
    listener: "TelemetryListener"


class _PlaneHandler(BaseHTTPRequestHandler):
    server_version = "repro-plane"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        listener = self.server.listener
        try:
            status, body, content_type = listener.route(self.path)
        except Exception as exc:
            status = 500
            body = json.dumps({"error": str(exc)}) + "\n"
            content_type = _JSON
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *args: object) -> None:
        # Scrapes arrive once a second; stderr chatter would drown the
        # serve transcript. Telemetry about telemetry is the registry's
        # job, not the access log's.
        return


def _json_body(document: dict) -> str:
    return json.dumps(document, sort_keys=True) + "\n"


class TelemetryListener:
    """Serves the scrape endpoints for one fleet; owns the SLO ticker.

    Args:
        fleet: the :class:`~repro.service.fleet.FleetManager` to expose.
        host: bind address (loopback by default — the plane is an
            operator surface, not a public API).
        port: TCP port; ``0`` binds an ephemeral port (read it back from
            :attr:`port` after :meth:`start`).
        tick_seconds: SLO evaluation cadence; ``0`` disables the ticker
            (the drain path still runs a final evaluation).

    ``start``/``stop`` are idempotent; the listener is also a context
    manager. :func:`~repro.service.server.serve_events` stops it only
    after the final rollup is captured, so ``/metrics`` and ``/health``
    answer throughout the drain.
    """

    def __init__(
        self,
        fleet,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_seconds: float = 1.0,
    ) -> None:
        self.fleet = fleet
        self.tick_seconds = float(tick_seconds)
        self._host = host
        self._requested_port = int(port)
        self._server: _PlaneServer | None = None
        self._server_thread: threading.Thread | None = None
        self._ticker: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TelemetryListener":
        """Bind the socket and start the serving and ticker threads."""
        with self._lock:
            if self._server is not None:
                return self
            server = _PlaneServer(
                (self._host, self._requested_port), _PlaneHandler
            )
            server.listener = self
            self._server = server
            self._stopping.clear()
            # A tight poll interval keeps stop() fast: shutdown() blocks
            # for a full poll while serve_forever's select loop notices
            # the flag, and the 0.5 s default would put a visible
            # constant latency on every drain (and into the
            # serve-overhead benchmark gate). 10 ms costs one idle
            # selector wakeup per 10 ms — noise — and bounds the drain
            # tax at ~10 ms.
            self._server_thread = threading.Thread(
                target=lambda: server.serve_forever(poll_interval=0.01),
                name="repro-plane-http",
                daemon=True,
            )
            self._server_thread.start()
            if self.tick_seconds > 0:
                self._ticker = threading.Thread(
                    target=self._tick_loop,
                    name="repro-plane-slo-ticker",
                    daemon=True,
                )
                self._ticker.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join both threads (idempotent)."""
        with self._lock:
            server = self._server
            if server is None:
                return
            self._server = None
            self._stopping.set()
            server.shutdown()
            server.server_close()
            server_thread = self._server_thread
            ticker = self._ticker
            self._server_thread = None
            self._ticker = None
        if server_thread is not None:
            server_thread.join(timeout=5.0)
        if ticker is not None:
            ticker.join(timeout=5.0)

    def _tick_loop(self) -> None:
        while not self._stopping.wait(self.tick_seconds):
            try:
                self.fleet.slo_tick()
            except Exception:
                # The ticker must never take the ingest path down; a
                # failed evaluation just waits for the next tick.
                continue

    def __enter__(self) -> "TelemetryListener":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 after start)."""
        server = self._server
        if server is not None:
            return server.server_address[1]
        return self._requested_port

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, path: str) -> tuple[int, str, str]:
        """Dispatch one GET path to ``(status, body, content type)``."""
        path = path.split("?", 1)[0]
        if path == "/metrics":
            snapshot = merged_fleet_snapshot(self.fleet)
            return 200, to_prometheus(snapshot), _PROMETHEUS
        if path == "/health":
            return 200, _json_body(self.health_document()), _JSON
        if path == "/ready":
            document = self.ready_document()
            status = 200 if document["ready"] else 503
            return status, _json_body(document), _JSON
        if path.startswith("/tenants/") and path.endswith("/stats"):
            tenant = path[len("/tenants/"): -len("/stats")]
            try:
                shard = self.fleet.shard(tenant)
            except Exception:
                return (
                    404,
                    _json_body(
                        {"error": f"no shard for tenant {tenant!r}"}
                    ),
                    _JSON,
                )
            return 200, _json_body(shard.stats()), _JSON
        if path in ("", "/"):
            return (
                200,
                _json_body(
                    {
                        "schema": PLANE_SCHEMA_VERSION,
                        "endpoints": list(ENDPOINTS),
                    }
                ),
                _JSON,
            )
        return 404, _json_body({"error": f"unknown path {path!r}"}), _JSON

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def health_document(self) -> dict:
        """The ``/health`` body: status summary plus the full rollup."""
        rollup = self.fleet.rollup()
        fleet_section = rollup.get("fleet", {})
        failed = fleet_section.get("states", {}).get("failed", 0)
        firing = fleet_section.get("slo", {}).get("firing", 0)
        status = "degraded" if failed or firing else "ok"
        return {
            "schema": PLANE_SCHEMA_VERSION,
            "status": status,
            "failed_shards": failed,
            "firing_alerts": firing,
            "rollup": rollup,
        }

    def ready_document(self) -> dict:
        """The ``/ready`` body; ``ready`` gates the 200/503 split."""
        fleet = self.fleet
        failed = 0
        for tenant in fleet.tenants:
            try:
                if fleet.shard(tenant).state == "failed":
                    failed += 1
            except Exception:
                continue
        draining = bool(getattr(fleet, "draining", False))
        closed = bool(getattr(fleet, "closed", False))
        return {
            "schema": PLANE_SCHEMA_VERSION,
            "ready": not (failed or draining or closed),
            "failed_shards": failed,
            "draining": draining,
            "closed": closed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "started" if self._server is not None else "stopped"
        return f"TelemetryListener({self.url()}, {state})"
