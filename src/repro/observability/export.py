"""Metric exposition: JSON documents and Prometheus text format.

Both formats render a :class:`~repro.observability.registry.MetricsSnapshot`
— a frozen view — so an export never races the live registry. The JSON
document is the machine-readable artifact the CLI's ``--metrics-out`` and
the benchmark suite's ``BENCH_observability.json`` are built from; the
Prometheus form follows the text exposition format (version 0.0.4):
``# HELP`` / ``# TYPE`` headers, escaped help strings and label values,
cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count`` for
histograms.
"""

from __future__ import annotations

import json
import math
import pathlib

from .registry import MetricSample, MetricsSnapshot

__all__ = [
    "to_json",
    "to_prometheus",
    "render_text",
    "write_metrics",
    "escape_help",
    "escape_label_value",
]

METRICS_FORMAT_VERSION = 1


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` string: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text: str) -> str:
    """Escape a label value: backslash, double quote, newline."""
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: int | float) -> str:
    if isinstance(value, float):
        # The 0.0.4 text format spells non-finite values "NaN", "+Inf",
        # and "-Inf"; Python's repr() would render "nan"/"inf", which
        # Prometheus rejects.
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _format_bound(bound: float) -> str:
    # 1.0 renders as "1.0" (any fixed spelling is fine as long as it is
    # consistent; Prometheus parses both "1" and "1.0").
    return repr(float(bound))


def _label_string(sample: MetricSample, extra: str = "") -> str:
    parts = [
        f'{key}="{escape_label_value(value)}"'
        for key, value in sample.labels
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def to_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for sample in snapshot:
        if sample.name not in seen_headers:
            seen_headers.add(sample.name)
            if sample.help:
                lines.append(
                    f"# HELP {sample.name} {escape_help(sample.help)}"
                )
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if sample.kind == "histogram":
            cumulative = 0
            for bound, count in zip(sample.bounds, sample.bucket_counts):
                cumulative += count
                labels = _label_string(
                    sample, f'le="{_format_bound(bound)}"'
                )
                lines.append(f"{sample.name}_bucket{labels} {cumulative}")
            labels = _label_string(sample, 'le="+Inf"')
            lines.append(f"{sample.name}_bucket{labels} {sample.count}")
            plain = _label_string(sample)
            lines.append(
                f"{sample.name}_sum{plain} "
                f"{_format_value(float(sample.sum))}"
            )
            lines.append(f"{sample.name}_count{plain} {sample.count}")
        else:
            lines.append(
                f"{sample.name}{_label_string(sample)} "
                f"{_format_value(sample.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(snapshot: MetricsSnapshot, extra: dict | None = None) -> dict:
    """Render a snapshot as a JSON-ready document.

    Args:
        extra: additional top-level keys (run parameters, derived
            figures) merged into the document.
    """
    document: dict = {
        # "schema" is the cross-format version key (trace lines,
        # timeseries windows, and health reports carry it too);
        # "metrics_format_version" is kept for pre-schema consumers.
        "schema": METRICS_FORMAT_VERSION,
        "metrics_format_version": METRICS_FORMAT_VERSION,
        "metrics": [sample.as_dict() for sample in snapshot],
    }
    if extra:
        document.update(extra)
    return document


def render_text(snapshot: MetricsSnapshot) -> str:
    """Human-readable one-metric-per-line rendering (the ``stats`` CLI)."""
    lines: list[str] = []
    width = max((len(_display_name(s)) for s in snapshot), default=0)
    for sample in snapshot:
        name = _display_name(sample)
        if sample.kind == "histogram":
            mean = sample.sum / sample.count if sample.count else 0.0
            value = (
                f"count={sample.count} sum={sample.sum:.6g} "
                f"mean={mean:.6g}"
            )
        elif isinstance(sample.value, float):
            value = f"{sample.value:.6g}"
        else:
            value = str(sample.value)
        unit = f" {sample.unit}" if sample.unit else ""
        lines.append(f"{name:<{width}}  {value}{unit}")
    return "\n".join(lines)


def _display_name(sample: MetricSample) -> str:
    if not sample.labels:
        return sample.name
    labels = ",".join(f"{k}={v}" for k, v in sample.labels)
    return f"{sample.name}{{{labels}}}"


def write_metrics(
    path: str | pathlib.Path,
    snapshot: MetricsSnapshot,
    extra: dict | None = None,
) -> tuple[pathlib.Path, pathlib.Path]:
    """Write a snapshot as JSON at ``path`` and Prometheus text beside it.

    The Prometheus twin replaces the suffix with ``.prom`` (``m.json`` →
    ``m.prom``); returns ``(json_path, prom_path)``.
    """
    json_path = pathlib.Path(path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    prom_path = json_path.with_suffix(".prom")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(to_json(snapshot, extra=extra), handle, indent=2)
        handle.write("\n")
    prom_path.write_text(to_prometheus(snapshot), encoding="utf-8")
    return json_path, prom_path
