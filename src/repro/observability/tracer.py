"""Structured tracing of maintenance, streaming, and persistence events.

Where the :mod:`~repro.observability.registry` answers "how much", the
tracer answers "what happened, in order": every maintenance event the
paper's Section 4.2 reasons about (bubble splits, donor migrations, seed
redistributions, over-/under-filled class changes per Definitions 2-3),
every streaming event (insert batches, FIFO evictions, bootstrap), and
every persistence event (WAL appends, snapshot writes, compactions,
recovery replays) is recorded as one timestamped JSON line.

Timestamping honours the no-wall-clock-in-hot-paths rule: the wall clock
is read **once**, in the constructor, as an anchor; each event then costs
a single monotonic ``time.perf_counter()`` read and its timestamp is
``anchor + elapsed``. Events carry a process-ordered sequence number, so
equal-timestamp events still have a total order.

Events are kept in a bounded in-memory ring (newest ``capacity`` events)
and, when a ``sink`` is given, appended to it as JSON lines immediately —
a crash loses at most the final unflushed line.
"""

from __future__ import annotations

import io
import json
import pathlib
import time
from dataclasses import dataclass

__all__ = ["TraceEvent", "EventTracer", "EVENT_KINDS", "TRACE_SCHEMA_VERSION"]

#: Version stamped on every serialized trace line (the JSONL contract).
TRACE_SCHEMA_VERSION = 1

#: Canonical event kinds emitted by the instrumented subsystems, grouped
#: by layer. Free-form kinds are allowed; these are the ones the shipped
#: instrumentation produces (documented in docs/OBSERVABILITY.md).
EVENT_KINDS: tuple[str, ...] = (
    # maintenance (Section 4.2)
    "bubble_split",
    "donor_migration",
    "seed_redistribution",
    "class_change",
    "bubble_grow",
    "bubble_retire",
    # streaming
    "insert_batch",
    "fifo_eviction",
    "bootstrap",
    # persistence
    "wal_append",
    "snapshot_write",
    "wal_compaction",
    "recovery_replay",
    # robustness (fault handling, degraded modes, audits)
    "io_retry",
    "wal_torn_tail",
    "stale_tmp_removed",
    "snapshot_quarantined",
    "bad_points_rejected",
    "audit",
    "audit_repair",
    # flight recorder (hierarchical spans, windowed telemetry)
    "span_start",
    "span_end",
    "timeseries_window",
    # service fleet (multi-tenant ingestion, self-healing supervision)
    "shard_created",
    "shard_failed",
    "shard_restarted",
    "restart_failed",
    "restart_budget_exhausted",
    "breaker_open",
    "dead_lettered",
    "dead_letter_failed",
    "fleet_drained",
    # SLO burn-rate alerting (multi-window objectives over the fleet)
    "slo_alert_firing",
    "slo_alert_resolved",
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        seq: process-ordered event number (0-based).
        ts: wall-clock timestamp in seconds since the epoch, derived from
            the tracer's anchor plus monotonic elapsed time.
        kind: event kind (see :data:`EVENT_KINDS`).
        fields: event-specific payload (JSON-serializable scalars).
    """

    seq: int
    ts: float
    kind: str
    fields: dict

    def as_dict(self) -> dict:
        """JSON-ready representation (one trace line).

        Envelope keys (``schema``/``seq``/``ts``/``kind``) always win:
        an event field sharing one of those names cannot corrupt the
        line's own sequencing or typing.
        """
        return {
            **self.fields,
            "schema": TRACE_SCHEMA_VERSION,
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
        }


class EventTracer:
    """Bounded in-memory event ring with an optional JSON-lines sink.

    Args:
        sink: a path or text file object to append JSON lines to; omitted
            means in-memory only.
        capacity: how many most-recent events the in-memory ring retains.

    Example:
        >>> tracer = EventTracer()
        >>> tracer.emit("bubble_split", over=3, donor=7)
        >>> tracer.counts()["bubble_split"]
        1
    """

    def __init__(
        self,
        sink: str | pathlib.Path | io.TextIOBase | None = None,
        capacity: int = 10_000,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._events: list[TraceEvent] = []
        self._counts: dict[str, int] = {}
        self._seq = 0
        # The one wall-clock read; every event timestamp is this anchor
        # plus monotonic elapsed time.
        self._anchor = time.time()
        self._origin = time.perf_counter()
        self._owns_sink = False
        if sink is None:
            self._sink = None
        elif isinstance(sink, (str, pathlib.Path)):
            path = pathlib.Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(path, "a", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> TraceEvent:
        """Record one event; returns the stored :class:`TraceEvent`."""
        return self.emit_fields(kind, fields)

    def emit_fields(self, kind: str, fields: dict) -> TraceEvent:
        """:meth:`emit` with a pre-built payload dict.

        The span tracer emits two events per span from hot paths; taking
        the dict directly (adopted, not copied) skips a kwargs repack
        per event.
        """
        event = TraceEvent(
            seq=self._seq,
            ts=self._anchor + (time.perf_counter() - self._origin),
            kind=kind,
            fields=fields,
        )
        self._seq += 1
        self._events.append(event)
        if len(self._events) > self._capacity:
            del self._events[0]
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if self._sink is not None:
            self._sink.write(
                json.dumps(event.as_dict(), sort_keys=True) + "\n"
            )
        return event

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def total_emitted(self) -> int:
        """Events emitted over the tracer's lifetime (ring may hold fewer)."""
        return self._seq

    def events(self, kind: str | None = None) -> tuple[TraceEvent, ...]:
        """Retained events in order, optionally filtered by ``kind``."""
        if kind is None:
            return tuple(self._events)
        return tuple(e for e in self._events if e.kind == kind)

    def counts(self) -> dict[str, int]:
        """Lifetime event counts per kind (not limited by the ring)."""
        return dict(self._counts)

    def to_jsonl(self) -> str:
        """The retained events as newline-delimited JSON."""
        return "".join(
            json.dumps(e.as_dict(), sort_keys=True) + "\n"
            for e in self._events
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush the sink, if any."""
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and, when the tracer opened the sink itself, close it."""
        if self._sink is None:
            return
        self._sink.flush()
        if self._owns_sink:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "EventTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventTracer(events={self._seq}, "
            f"kinds={sorted(self._counts)})"
        )
