"""SLO burn-rate evaluation: multi-window alerts over fleet telemetry.

A fleet serving millions of users is judged against *objectives* — "99.9%
of submitted points are not shed", "95% of points are applied within the
ingest latency bound" — not against raw counters. This module evaluates
declared objectives with the multi-window burn-rate method (Google SRE
workbook, ch. 5): the *burn rate* is how fast the error budget
(``1 - target``) is being consumed, and an alert fires only when **both**
a fast window (catches sudden cliffs quickly) and a slow window (rejects
short blips) exceed their thresholds. A burn rate of 1.0 spends exactly
the whole budget over the objective's nominal period; the default
thresholds (14.4 fast / 6.0 slow) mirror the canonical page-worthy tier.

The engine reuses the existing windowed-telemetry machinery rather than
growing its own: each :meth:`SLOEngine.observe` call converts the fleet's
cumulative totals into per-objective good/bad **counters** on a private
registry, then closes one :class:`~repro.observability.timeseries.WindowSample`
(interval 1, stamped with the observation's clock reading as a gauge).
Burn rates are then window sums over the retained ring — no second
ring-buffer implementation, and the same JSONL serialization for free.

Shipped objectives (:data:`DEFAULT_OBJECTIVES`):

* ``ingest_p95`` — share of applied points inside the ingest latency
  bound (default 0.25 s, a standard bucket bound of the per-shard
  ``repro_service_ingest_seconds`` histogram).
* ``shed_fraction`` — share of submitted points *not* shed by
  backpressure.
* ``dlq_rate`` — share of submitted points *not* dead-lettered.
* ``breaker_open`` — share of wall-clock time with every tenant breaker
  closed (integrated from the supervisor's breaker states).

Clocks are injectable (``clock=``) and every burn-rate computation is
pure arithmetic over retained windows, so alert transitions are exactly
testable without sleeping. The engine never touches shard hot paths: it
reads counters the service layer already maintains, on whatever cadence
the caller (the telemetry plane's ticker, or the drain path) chooses.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from . import Observability
from .timeseries import TimeseriesRecorder

__all__ = [
    "DEFAULT_OBJECTIVES",
    "SLO_SCHEMA_VERSION",
    "SLOEngine",
    "SLObjective",
]

#: Version stamped on every SLO summary document.
SLO_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SLObjective:
    """One declared objective: a target good-fraction plus alert tiers.

    Attributes:
        name: objective identifier (also the counter-name stem).
        description: operator-facing one-liner.
        target: required good fraction in ``[0, 1)``; the error budget
            is ``1 - target``.
        fast_burn: burn-rate threshold the fast window must exceed.
        slow_burn: burn-rate threshold the slow window must exceed.
    """

    name: str
    description: str
    target: float
    fast_burn: float = 14.4
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.target < 1.0:
            raise ValueError(
                f"objective {self.name}: target must be in [0, 1), "
                f"got {self.target}"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError(
                f"objective {self.name}: burn thresholds must be > 0"
            )

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.target


#: The shipped fleet objectives (see module docstring).
DEFAULT_OBJECTIVES: tuple[SLObjective, ...] = (
    SLObjective(
        "ingest_p95",
        "share of points applied within the ingest latency bound",
        target=0.95,
    ),
    SLObjective(
        "shed_fraction",
        "share of submitted points not shed by backpressure",
        target=0.999,
    ),
    SLObjective(
        "dlq_rate",
        "share of submitted points not dead-lettered",
        target=0.999,
    ),
    SLObjective(
        "breaker_open",
        "share of wall-clock with every tenant breaker closed",
        target=0.99,
    ),
)

#: Sample keys :meth:`SLOEngine.observe` consumes; all cumulative totals
#: except ``breakers_open``, which is the instantaneous open-breaker
#: count the engine integrates over time itself.
SAMPLE_KEYS: tuple[str, ...] = (
    "submitted",
    "shed",
    "dead_lettered",
    "ingest_count",
    "ingest_slow",
    "breakers_open",
)


def _bad_counter(name: str) -> str:
    return f"slo_{name}_bad_total"


def _total_counter(name: str) -> str:
    return f"slo_{name}_events_total"


class SLOEngine:
    """Evaluates burn-rate objectives from periodic fleet samples.

    Feed it with :meth:`observe` on any cadence (the telemetry plane
    ticks once per second by default; the drain path ticks once more so
    the final window is never lost). Each observation converts the
    fleet's cumulative totals into per-objective good/bad counter
    increments, closes one timeseries window stamped with the clock
    reading, re-evaluates every objective over the fast and slow
    horizons, and emits ``slo_alert_firing`` / ``slo_alert_resolved``
    events on state transitions (via ``obs``, when given).

    Args:
        objectives: the declared objectives (unique names).
        fast_window_seconds: fast-horizon length (> 0).
        slow_window_seconds: slow-horizon length (>= fast).
        ingest_latency_bound: the ``ingest_p95`` good/bad latency split,
            in seconds; should coincide with a bucket bound of the
            per-shard ingest histogram so the split is exact.
        capacity: retained windows (bounds memory on long runs).
        clock: monotonic clock used when ``observe`` is not handed an
            explicit ``now`` (injectable for tests).
        obs: optional :class:`~repro.observability.Observability` handle
            alert-transition events are emitted through.
    """

    def __init__(
        self,
        objectives: tuple[SLObjective, ...] = DEFAULT_OBJECTIVES,
        fast_window_seconds: float = 60.0,
        slow_window_seconds: float = 300.0,
        ingest_latency_bound: float = 0.25,
        capacity: int = 4096,
        clock=time.monotonic,
        obs: Observability | None = None,
    ) -> None:
        if fast_window_seconds <= 0:
            raise ValueError(
                f"fast_window_seconds must be > 0, got {fast_window_seconds}"
            )
        if slow_window_seconds < fast_window_seconds:
            raise ValueError(
                "slow_window_seconds must be >= fast_window_seconds, got "
                f"{slow_window_seconds} < {fast_window_seconds}"
            )
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"objective names must be unique, got {names}")
        self.objectives = tuple(objectives)
        self.fast_window_seconds = float(fast_window_seconds)
        self.slow_window_seconds = float(slow_window_seconds)
        self.ingest_latency_bound = float(ingest_latency_bound)
        self._clock = clock
        self._obs = obs
        self._lock = threading.Lock()
        tracked = tuple(
            counter_name
            for o in self.objectives
            for counter_name in (_bad_counter(o.name), _total_counter(o.name))
        )
        self._recorder = TimeseriesRecorder(
            interval=1, capacity=capacity, counters=tracked
        )
        self._inner = Observability(timeseries=self._recorder)
        self._counters = {
            o.name: (
                self._inner.metrics.counter(
                    _bad_counter(o.name),
                    help=f"SLO bad events: {o.description}",
                ),
                self._inner.metrics.counter(
                    _total_counter(o.name),
                    help=f"SLO total events: {o.description}",
                ),
            )
            for o in self.objectives
        }
        self._last_sample: dict[str, int | float] = {}
        self._last_now: float | None = None
        self._states: dict[str, str] = {
            o.name: "ok" for o in self.objectives
        }
        self._since: dict[str, float | None] = {
            o.name: None for o in self.objectives
        }
        self._rows: list[dict] = []
        self.transitions = 0
        self.observations = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def observe(
        self, sample: dict[str, int | float], now: float | None = None
    ) -> list[dict]:
        """Ingest one fleet sample; returns the currently firing alerts.

        ``sample`` carries the cumulative fleet totals named in
        :data:`SAMPLE_KEYS` (missing keys read as 0). Totals are diffed
        against the previous observation and clamped at zero, so a
        restarted counter can never produce a negative increment.
        """
        with self._lock:
            if now is None:
                now = self._clock()
            previous = self._last_now
            dt = max(0.0, now - previous) if previous is not None else 0.0
            self._increment("shed_fraction", sample, "shed", "submitted")
            self._increment("dlq_rate", sample, "dead_lettered", "submitted")
            self._increment(
                "ingest_p95", sample, "ingest_slow", "ingest_count"
            )
            self._integrate_breaker(sample, dt)
            self._last_sample = dict(sample)
            self._last_now = now
            self.observations += 1
            self._recorder.maybe_roll(lambda: {"now": now})
            self._evaluate(now)
            return [dict(row) for row in self._rows if row["state"] == "firing"]

    def _increment(
        self,
        objective: str,
        sample: dict,
        bad_key: str,
        total_key: str,
    ) -> None:
        counters = self._counters.get(objective)
        if counters is None:
            return
        bad_counter, total_counter = counters
        last = self._last_sample
        bad_delta = max(0, sample.get(bad_key, 0) - last.get(bad_key, 0))
        total_delta = max(
            0, sample.get(total_key, 0) - last.get(total_key, 0)
        )
        # Clamp: a torn read can briefly report more bad events than
        # total events; the bad share of one window never exceeds 1.
        bad_counter.inc(min(bad_delta, total_delta))
        total_counter.inc(total_delta)

    def _integrate_breaker(self, sample: dict, dt: float) -> None:
        counters = self._counters.get("breaker_open")
        if counters is None or dt <= 0:
            return
        bad_counter, total_counter = counters
        if sample.get("breakers_open", 0) > 0:
            bad_counter.inc(dt)
        total_counter.inc(dt)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _window_rates(
        self, objective: SLObjective, now: float
    ) -> tuple[float, float, int]:
        bad_name = _bad_counter(objective.name)
        total_name = _total_counter(objective.name)
        fast_bad = fast_total = 0.0
        slow_bad = slow_total = 0.0
        fast_cut = now - self.fast_window_seconds
        slow_cut = now - self.slow_window_seconds
        windows = 0
        for window in reversed(self._recorder.samples):
            end = window.gauges.get("now", 0.0)
            if end < slow_cut:
                break
            windows += 1
            bad = window.counters.get(bad_name, 0)
            total = window.counters.get(total_name, 0)
            slow_bad += bad
            slow_total += total
            if end >= fast_cut:
                fast_bad += bad
                fast_total += total
        budget = objective.budget
        fast_rate = (fast_bad / fast_total / budget) if fast_total else 0.0
        slow_rate = (slow_bad / slow_total / budget) if slow_total else 0.0
        return fast_rate, slow_rate, windows

    def _evaluate(self, now: float) -> None:
        rows: list[dict] = []
        for objective in self.objectives:
            fast_rate, slow_rate, windows = self._window_rates(
                objective, now
            )
            breached = (
                fast_rate >= objective.fast_burn
                and slow_rate >= objective.slow_burn
            )
            state = self._states[objective.name]
            if breached and state != "firing":
                state = "firing"
                self._since[objective.name] = now
                self.transitions += 1
                self._emit(
                    "slo_alert_firing", objective, fast_rate, slow_rate
                )
            elif not breached and state == "firing":
                state = "resolved"
                self._since[objective.name] = now
                self.transitions += 1
                self._emit(
                    "slo_alert_resolved", objective, fast_rate, slow_rate
                )
            self._states[objective.name] = state
            rows.append(
                {
                    "name": objective.name,
                    "description": objective.description,
                    "target": objective.target,
                    "budget": objective.budget,
                    "state": state,
                    "since": self._since[objective.name],
                    "fast_burn_rate": fast_rate,
                    "slow_burn_rate": slow_rate,
                    "fast_threshold": objective.fast_burn,
                    "slow_threshold": objective.slow_burn,
                    "windows": windows,
                }
            )
        self._rows = rows

    def _emit(
        self,
        kind: str,
        objective: SLObjective,
        fast_rate: float,
        slow_rate: float,
    ) -> None:
        if self._obs is not None:
            self._obs.emit(
                kind,
                objective=objective.name,
                fast_burn_rate=fast_rate,
                slow_burn_rate=slow_rate,
                target=objective.target,
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def alerts(self) -> list[dict]:
        """Objective rows currently in the ``firing`` state."""
        with self._lock:
            return [
                dict(row) for row in self._rows if row["state"] == "firing"
            ]

    def summary(self) -> dict:
        """JSON-ready summary: every objective's state and burn rates."""
        with self._lock:
            rows = [dict(row) for row in self._rows]
            if not rows:
                # Never observed: report the declared objectives at rest.
                rows = [
                    {
                        "name": o.name,
                        "description": o.description,
                        "target": o.target,
                        "budget": o.budget,
                        "state": "ok",
                        "since": None,
                        "fast_burn_rate": 0.0,
                        "slow_burn_rate": 0.0,
                        "fast_threshold": o.fast_burn,
                        "slow_threshold": o.slow_burn,
                        "windows": 0,
                    }
                    for o in self.objectives
                ]
            return {
                "schema": SLO_SCHEMA_VERSION,
                "fast_window_seconds": self.fast_window_seconds,
                "slow_window_seconds": self.slow_window_seconds,
                "ingest_latency_bound": self.ingest_latency_bound,
                "observations": self.observations,
                "transitions": self.transitions,
                "firing": sum(
                    1 for row in rows if row["state"] == "firing"
                ),
                "objectives": rows,
            }

    @property
    def windows(self) -> int:
        """Retained evaluation windows."""
        return len(self._recorder)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        firing = sum(
            1 for state in self._states.values() if state == "firing"
        )
        return (
            f"SLOEngine({len(self.objectives)} objectives, "
            f"{self.observations} observations, {firing} firing)"
        )
