"""Process-wide metrics registry: counters, gauges, histograms, timers.

The paper's evaluation currency is *numbers of distance computations*
(Figures 10-11) and maintenance activity — merge/split rounds, over-/
under-filled transitions (Section 4.2). This module is the single sink
those numbers flow into at runtime, alongside the operational metrics the
durable streaming path produces (WAL appends, snapshot writes, recovery
replays).

Design constraints:

* **Monotonic time only in hot paths.** :class:`Timer` reads
  ``time.perf_counter`` (monotonic); nothing here touches the wall clock
  while measuring. The single wall-clock read lives in
  :class:`~repro.observability.tracer.EventTracer`'s constructor, which
  anchors event timestamps once, outside any hot path.
* **Plain-int/float accumulators.** Like
  :class:`~repro.geometry.counting.DistanceCounter`, metrics are not
  thread-safe, matching the paper's single-threaded batch-update model.
* **Fixed histogram buckets.** Bucket bounds are frozen at creation so
  snapshots of the same metric are always diffable and the Prometheus
  exposition is stable across scrapes.

Metrics are identified by ``(name, labels)``; :meth:`MetricsRegistry.counter`
and friends are get-or-create, so instrumentation sites can look their
handles up cheaply and repeatedly. :meth:`MetricsRegistry.snapshot` freezes
every value into a :class:`MetricsSnapshot`, and snapshots subtract
(``after - before``) to isolate one phase's activity.
"""

from __future__ import annotations

import bisect
import re
import time
from dataclasses import dataclass, field, replace

from ..exceptions import InvalidConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricSample",
    "get_registry",
    "DEFAULT_TIME_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency bucket bounds in seconds (upper inclusive bounds; the
#: ``+Inf`` bucket is implicit). Spans sub-millisecond batch work up to
#: multi-second recovery replays.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelPairs = tuple[tuple[str, str], ...]


def _freeze_labels(labels: dict[str, str] | None) -> LabelPairs:
    if not labels:
        return ()
    frozen = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise InvalidConfigError(f"invalid label name {key!r}")
        frozen.append((key, str(labels[key])))
    return tuple(frozen)


class _Metric:
    """Shared identity/metadata of every metric kind."""

    kind = "untyped"
    __slots__ = ("name", "help", "unit", "labels")

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: LabelPairs = (),
    ) -> None:
        if not _NAME_RE.match(name):
            raise InvalidConfigError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.unit = unit
        self.labels = labels

    @property
    def key(self) -> tuple[str, LabelPairs]:
        """Registry identity: name plus frozen label pairs."""
        return (self.name, self.labels)


class Counter(_Metric):
    """Monotonically increasing count (events, points, distance calcs)."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: LabelPairs = (),
    ) -> None:
        super().__init__(name, help, unit, labels)
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self._value += amount

    @property
    def value(self) -> int | float:
        """The accumulated total."""
        return self._value


class Gauge(_Metric):
    """Point-in-time level (window fill, active bubble count)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: LabelPairs = (),
    ) -> None:
        super().__init__(name, help, unit, labels)
        self._value = 0.0

    def set(self, value: int | float) -> None:
        """Replace the current level."""
        self._value = value

    def inc(self, amount: int | float = 1) -> None:
        """Shift the current level by ``amount`` (may be negative)."""
        self._value += amount

    @property
    def value(self) -> int | float:
        """The current level."""
        return self._value


class Histogram(_Metric):
    """Distribution over fixed bucket bounds (latencies, batch sizes).

    ``bounds`` are inclusive upper bounds of the finite buckets; every
    observation beyond the last bound lands in the implicit ``+Inf``
    bucket. Counts are stored per-bucket (non-cumulative); the Prometheus
    exposition accumulates them on the way out.
    """

    kind = "histogram"
    __slots__ = ("bounds", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: LabelPairs = (),
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help, unit, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise InvalidConfigError(
                f"histogram {name} needs at least one bucket bound"
            )
        if list(bounds) != sorted(set(bounds)):
            raise InvalidConfigError(
                f"histogram {name} bucket bounds must be strictly "
                f"increasing, got {bounds}"
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +Inf bucket last
        self._sum = 0.0
        self._count = 0

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; the ``+Inf`` bucket is last."""
        return tuple(self._counts)


class Timer:
    """Context manager feeding monotonic durations into a histogram.

    Example:
        >>> registry = MetricsRegistry()
        >>> timer = registry.timer("work_seconds")
        >>> with timer:
        ...     pass
        >>> registry.get("work_seconds").count
        1
    """

    __slots__ = ("histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._started = 0.0

    def observe(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.histogram.observe(seconds)

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.histogram.observe(time.perf_counter() - self._started)


@dataclass(frozen=True)
class MetricSample:
    """One metric's frozen value inside a :class:`MetricsSnapshot`.

    ``value`` is the scalar for counters/gauges; histograms carry their
    per-bucket counts, sum, and count alongside the bounds.
    """

    name: str
    kind: str
    help: str
    unit: str
    labels: LabelPairs
    value: int | float = 0
    bounds: tuple[float, ...] = ()
    bucket_counts: tuple[int, ...] = ()
    sum: float = 0.0
    count: int = 0

    def relabeled(self, **extra: str) -> "MetricSample":
        """A copy with ``extra`` label pairs merged in (and re-sorted).

        The telemetry plane uses this to stamp a ``tenant`` label onto
        per-shard samples when merging shard registries into one fleet
        scrape. Existing labels of the same name are overridden.
        """
        merged = dict(self.labels)
        for key, value in extra.items():
            if not _LABEL_RE.match(key):
                raise InvalidConfigError(f"invalid label name {key!r}")
            merged[key] = str(value)
        return replace(self, labels=tuple(sorted(merged.items())))

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        document: dict = {
            "name": self.name,
            "kind": self.kind,
        }
        if self.help:
            document["help"] = self.help
        if self.unit:
            document["unit"] = self.unit
        if self.labels:
            document["labels"] = dict(self.labels)
        if self.kind == "histogram":
            document["buckets"] = {
                "bounds": list(self.bounds),
                "counts": list(self.bucket_counts),
            }
            document["sum"] = self.sum
            document["count"] = self.count
        else:
            document["value"] = self.value
        return document


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable view of a registry's values at one instant.

    Snapshots subtract: ``after - before`` yields a snapshot in which
    counters and histograms carry the *activity between* the two
    snapshots, while gauges keep the left-hand (newer) level — a gauge is
    a state, not a flow. Metrics absent from ``before`` pass through
    unchanged.
    """

    samples: tuple[MetricSample, ...] = field(default_factory=tuple)

    def __iter__(self):
        return iter(self.samples)

    def __len__(self) -> int:
        return len(self.samples)

    def get(
        self, name: str, labels: dict[str, str] | None = None
    ) -> MetricSample | None:
        """The sample for ``(name, labels)``, or ``None``."""
        key = (name, _freeze_labels(labels))
        for sample in self.samples:
            if (sample.name, sample.labels) == key:
                return sample
        return None

    def value(
        self, name: str, labels: dict[str, str] | None = None
    ) -> int | float:
        """Scalar value of a counter/gauge; ``0`` when absent."""
        sample = self.get(name, labels)
        return 0 if sample is None else sample.value

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        before = {(s.name, s.labels): s for s in other.samples}
        diffed = []
        for sample in self.samples:
            base = before.get((sample.name, sample.labels))
            if base is None or base.kind != sample.kind:
                diffed.append(sample)
            elif sample.kind == "histogram":
                diffed.append(
                    MetricSample(
                        name=sample.name,
                        kind=sample.kind,
                        help=sample.help,
                        unit=sample.unit,
                        labels=sample.labels,
                        bounds=sample.bounds,
                        bucket_counts=tuple(
                            a - b
                            for a, b in zip(
                                sample.bucket_counts, base.bucket_counts
                            )
                        ),
                        sum=sample.sum - base.sum,
                        count=sample.count - base.count,
                    )
                )
            elif sample.kind == "counter":
                diffed.append(
                    MetricSample(
                        name=sample.name,
                        kind=sample.kind,
                        help=sample.help,
                        unit=sample.unit,
                        labels=sample.labels,
                        value=sample.value - base.value,
                    )
                )
            else:  # gauges keep the newer level
                diffed.append(sample)
        return MetricsSnapshot(samples=tuple(diffed))


class MetricsRegistry:
    """Holds every metric of one process (or one run, when private).

    The accessor methods are get-or-create: asking for an existing
    ``(name, labels)`` pair returns the same object, asking with a
    conflicting kind raises. A module-level process-wide instance is
    available via :func:`get_registry`; components that need isolated
    accounting (the CLI's per-run exports, tests) construct their own.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelPairs], _Metric] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: dict[str, str] | None = None,
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help, unit, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: dict[str, str] | None = None,
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, unit, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram with fixed ``buckets`` bounds."""
        key = (name, _freeze_labels(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise InvalidConfigError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not histogram"
                )
            return existing
        metric = Histogram(
            name, help=help, unit=unit, labels=key[1], buckets=buckets
        )
        self._metrics[key] = metric
        return metric

    def timer(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Timer:
        """Get or create a seconds histogram and wrap it in a :class:`Timer`."""
        return Timer(
            self.histogram(
                name, help=help, unit="seconds", labels=labels,
                buckets=buckets,
            )
        )

    def _get_or_create(
        self,
        cls: type,
        name: str,
        help: str,
        unit: str,
        labels: dict[str, str] | None,
    ):
        key = (name, _freeze_labels(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise InvalidConfigError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, help=help, unit=unit, labels=key[1])
        self._metrics[key] = metric
        return metric

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(
        self, name: str, labels: dict[str, str] | None = None
    ) -> _Metric | None:
        """The live metric object for ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _freeze_labels(labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every metric's current value."""
        samples = []
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                samples.append(
                    MetricSample(
                        name=metric.name,
                        kind=metric.kind,
                        help=metric.help,
                        unit=metric.unit,
                        labels=metric.labels,
                        bounds=metric.bounds,
                        bucket_counts=metric.bucket_counts(),
                        sum=metric.sum,
                        count=metric.count,
                    )
                )
            else:
                samples.append(
                    MetricSample(
                        name=metric.name,
                        kind=metric.kind,
                        help=metric.help,
                        unit=metric.unit,
                        labels=metric.labels,
                        value=metric.value,
                    )
                )
        return MetricsSnapshot(samples=tuple(samples))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} metrics)"


#: The process-wide registry used when callers do not supply their own.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY
