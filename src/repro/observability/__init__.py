"""Unified observability: metrics registry, event tracing, exposition.

The paper evaluates the incremental scheme in *numbers of distance
computations* (Figures 10-11) and in maintenance activity — merge/split
rounds and over-/under-filled transitions (Section 4.2). This package
makes those signals first-class at runtime:

* :mod:`~repro.observability.registry` — counters, gauges, fixed-bucket
  histograms, and monotonic-clock timers, collected per run or in the
  process-wide registry (:func:`get_registry`);
* :mod:`~repro.observability.tracer` — structured maintenance/streaming/
  persistence events as timestamped JSON lines;
* :mod:`~repro.observability.export` — JSON and Prometheus text
  exposition of registry snapshots.

Instrumented components (:class:`~repro.core.maintenance.IncrementalMaintainer`,
:class:`~repro.streaming.SlidingWindowSummarizer`,
:class:`~repro.streaming.DurableSummarizer`,
:class:`~repro.persistence.checkpoint.CheckpointManager`) accept one
:class:`Observability` handle; passing ``None`` (the default) disables
instrumentation entirely, so un-instrumented hot paths pay nothing.

Example:
    >>> from repro.observability import Observability
    >>> obs = Observability()
    >>> obs.metrics.counter("demo_total").inc()
    >>> obs.metrics.snapshot().value("demo_total")
    1

Metric names, units, and the paper figures they back are catalogued in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from .export import (
    escape_help,
    escape_label_value,
    render_text,
    to_json,
    to_prometheus,
    write_metrics,
)
from .registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    MetricsSnapshot,
    Timer,
    get_registry,
)
from .tracer import EVENT_KINDS, EventTracer, TraceEvent

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "EVENT_KINDS",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Observability",
    "Timer",
    "TraceEvent",
    "escape_help",
    "escape_label_value",
    "get_registry",
    "render_text",
    "to_json",
    "to_prometheus",
    "write_metrics",
]


class Observability:
    """One handle bundling a metrics registry and an (optional) tracer.

    Args:
        registry: the metrics sink; a fresh private
            :class:`MetricsRegistry` when omitted (pass
            :func:`get_registry` for the process-wide one).
        tracer: the event sink; ``None`` records no event payloads —
            events are still *counted* in the registry
            (``repro_events_total{kind=...}``), so split/migration counts
            survive even metric-only runs.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: EventTracer | None = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self._event_counters: dict[str, Counter] = {}

    def emit(self, kind: str, **fields) -> None:
        """Record one event: counted in the registry, traced if a tracer
        is attached."""
        counter = self._event_counters.get(kind)
        if counter is None:
            counter = self.metrics.counter(
                "repro_events_total",
                help="Structured events emitted, by kind.",
                labels={"kind": kind},
            )
            self._event_counters[kind] = counter
        counter.inc()
        if self.tracer is not None:
            self.tracer.emit(kind, **fields)

    def event_count(self, kind: str) -> int:
        """How many events of ``kind`` this handle has recorded."""
        counter = self._event_counters.get(kind)
        return 0 if counter is None else int(counter.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        traced = "traced" if self.tracer is not None else "untraced"
        return f"Observability({len(self.metrics)} metrics, {traced})"
