"""Unified observability: metrics registry, event tracing, exposition.

The paper evaluates the incremental scheme in *numbers of distance
computations* (Figures 10-11) and in maintenance activity — merge/split
rounds and over-/under-filled transitions (Section 4.2). This package
makes those signals first-class at runtime:

* :mod:`~repro.observability.registry` — counters, gauges, fixed-bucket
  histograms, and monotonic-clock timers, collected per run or in the
  process-wide registry (:func:`get_registry`);
* :mod:`~repro.observability.tracer` — structured maintenance/streaming/
  persistence events as timestamped JSON lines;
* :mod:`~repro.observability.spans` — hierarchical (parented) spans
  timing every instrumented operation, folded into per-op latency
  histograms;
* :mod:`~repro.observability.timeseries` — bounded-ring windowed
  counter deltas and gauges (JSONL);
* :mod:`~repro.observability.health` — one-page health reports (text +
  JSON) aggregating all of the above;
* :mod:`~repro.observability.export` — JSON and Prometheus text
  exposition of registry snapshots;
* :mod:`~repro.observability.slo` — multi-window burn-rate evaluation
  of declared service objectives, with firing/resolved alerts;
* :mod:`~repro.observability.plane` — the live HTTP telemetry plane
  (``/metrics``, ``/health``, ``/ready``, ``/tenants/<id>/stats``);
* :mod:`~repro.observability.tracequery` — span-tree reconstruction,
  per-op quantiles, and critical paths from per-tenant trace JSONL.

Instrumented components (:class:`~repro.core.maintenance.IncrementalMaintainer`,
:class:`~repro.streaming.SlidingWindowSummarizer`,
:class:`~repro.streaming.DurableSummarizer`,
:class:`~repro.persistence.checkpoint.CheckpointManager`) accept one
:class:`Observability` handle; passing ``None`` (the default) disables
instrumentation entirely, so un-instrumented hot paths pay nothing.

Example:
    >>> from repro.observability import Observability
    >>> obs = Observability()
    >>> obs.metrics.counter("demo_total").inc()
    >>> obs.metrics.snapshot().value("demo_total")
    1

Metric names, units, and the paper figures they back are catalogued in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from .export import (
    escape_help,
    escape_label_value,
    render_text,
    to_json,
    to_prometheus,
    write_metrics,
)
from .health import (
    HEALTH_SCHEMA_VERSION,
    collect_health,
    render_health,
    write_health,
)
from .registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    MetricsSnapshot,
    Timer,
    get_registry,
)
from .spans import NULL_SPAN, Span, SpanTracer, maybe_span
from .timeseries import (
    TIMESERIES_SCHEMA_VERSION,
    TimeseriesRecorder,
    WindowSample,
)
from .tracer import (
    EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    EventTracer,
    TraceEvent,
)

__all__ = [
    "Counter",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_TIME_BUCKETS",
    "EVENT_KINDS",
    "EventTracer",
    "Gauge",
    "HEALTH_SCHEMA_VERSION",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_SPAN",
    "Observability",
    "PLANE_SCHEMA_VERSION",
    "SLO_SCHEMA_VERSION",
    "SLOEngine",
    "SLObjective",
    "Span",
    "SpanRecord",
    "SpanTracer",
    "TIMESERIES_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "TelemetryListener",
    "Timer",
    "TimeseriesRecorder",
    "TraceEvent",
    "TraceSet",
    "WindowSample",
    "collect_health",
    "critical_path",
    "escape_help",
    "escape_label_value",
    "get_registry",
    "load_fleet_traces",
    "maybe_span",
    "merged_fleet_snapshot",
    "read_span_records",
    "render_health",
    "render_text",
    "render_trace_report",
    "to_json",
    "to_prometheus",
    "write_health",
    "write_metrics",
]


class Observability:
    """One handle bundling metrics, tracing, spans, and time-series.

    Args:
        registry: the metrics sink; a fresh private
            :class:`MetricsRegistry` when omitted (pass
            :func:`get_registry` for the process-wide one).
        tracer: the event sink; ``None`` records no event payloads —
            events are still *counted* in the registry
            (``repro_events_total{kind=...}``), so split/migration counts
            survive even metric-only runs.
        spans: a :class:`SpanTracer` enabling hierarchical operation
            timing via :meth:`span`; ``None`` (the default) makes
            :meth:`span` a true no-op (it returns the shared
            :data:`NULL_SPAN`).
        timeseries: a :class:`TimeseriesRecorder` enabling windowed
            counter deltas; ``None`` disables it. The streaming layer
            ticks the recorder once per appended batch.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: EventTracer | None = None,
        spans: SpanTracer | None = None,
        timeseries: TimeseriesRecorder | None = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.spans = spans
        self.timeseries = timeseries
        self._event_counters: dict[str, Counter] = {}
        if spans is not None:
            spans.bind(self)
        if timeseries is not None:
            timeseries.bind(self)

    def span(self, op: str, **fields):
        """A context manager timing ``op`` as a parented span.

        Returns :data:`NULL_SPAN` (a shared no-op) when no
        :class:`SpanTracer` is attached, so call sites never branch.
        """
        if self.spans is None:
            return NULL_SPAN
        return self.spans.span(op, fields)

    def emit(self, kind: str, **fields) -> None:
        """Record one event: counted in the registry, traced if a tracer
        is attached."""
        self.emit_fields(kind, fields)

    def emit_fields(self, kind: str, fields: dict) -> None:
        """:meth:`emit` with a pre-built payload dict (hot-path form)."""
        counter = self._event_counters.get(kind)
        if counter is None:
            counter = self.metrics.counter(
                "repro_events_total",
                help="Structured events emitted, by kind.",
                labels={"kind": kind},
            )
            self._event_counters[kind] = counter
        counter.inc()
        if self.tracer is not None:
            self.tracer.emit_fields(kind, fields)

    def event_count(self, kind: str) -> int:
        """How many events of ``kind`` this handle has recorded."""
        counter = self._event_counters.get(kind)
        return 0 if counter is None else int(counter.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{len(self.metrics)} metrics"]
        parts.append("traced" if self.tracer is not None else "untraced")
        if self.spans is not None:
            parts.append("spans")
        if self.timeseries is not None:
            parts.append("timeseries")
        return f"Observability({', '.join(parts)})"


# These modules build on the Observability handle defined above, so
# their imports must follow the class definition.
from .plane import (  # noqa: E402
    PLANE_SCHEMA_VERSION,
    TelemetryListener,
    merged_fleet_snapshot,
)
from .slo import (  # noqa: E402
    DEFAULT_OBJECTIVES,
    SLO_SCHEMA_VERSION,
    SLOEngine,
    SLObjective,
)
from .tracequery import (  # noqa: E402
    SpanRecord,
    TraceSet,
    critical_path,
    load_fleet_traces,
    read_span_records,
    render_trace_report,
)
