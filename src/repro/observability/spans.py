"""Hierarchical span tracing: parented, monotonic-clock operation timing.

Where the :mod:`~repro.observability.tracer` answers "what happened" and
the :mod:`~repro.observability.registry` answers "how much", spans answer
"what did the summarizer spend its time *on*": every instrumented
operation (a maintenance batch, an insertion assignment, a per-block
assignment kernel round, a WAL append, a checkpoint, a recovery replay,
an audit) opens a span on entry and closes it on exit. Spans are
parented Dapper-style — a span opened while another is live records that
span as its parent — so a trace consumer can reassemble the full latency
tree of one batch: ``apply_batch`` → ``maintain_insert`` →
``assign_block`` × N.

Spans also carry **trace context**: a span opened with a ``trace``
field (the fleet mints one id per micro-batch) establishes that id for
everything nested under it, and every descendant's ``span_start`` event
is stamped with the inherited id. Per-tenant trace files can then be
merged into one causally-parented fleet trace and queried by trace id
(:mod:`~repro.observability.tracequery`).

Each span costs two monotonic ``time.perf_counter`` reads plus two trace
events (``span_start`` / ``span_end``) and one histogram observation
(``repro_span_seconds{op=...}``); nothing here reads the wall clock. The
shipped instrumentation only opens spans at batch/block granularity,
never per point.

Disabled instrumentation stays free: :func:`maybe_span` (and
:meth:`Observability.span <repro.observability.Observability.span>`)
hand out the shared :data:`NULL_SPAN` no-op context manager whenever the
observability handle is ``None`` or carries no :class:`SpanTracer`, so
uninstrumented hot paths pay a single attribute check. Spans never touch
the maintenance RNG or the :class:`~repro.geometry.DistanceCounter`, so
instrumented runs are bit-identical to uninstrumented ones.

Example:
    >>> from repro.observability import Observability, SpanTracer
    >>> obs = Observability(spans=SpanTracer())
    >>> with obs.span("apply_batch", batch=7):
    ...     with obs.span("maintain_insert", points=100):
    ...         pass
    >>> obs.event_count("span_end")
    2
"""

from __future__ import annotations

import time

__all__ = ["NULL_SPAN", "Span", "SpanTracer", "maybe_span"]

#: Histogram family every closed span's duration is folded into,
#: labelled by operation name.
SPAN_SECONDS_METRIC = "repro_span_seconds"


class _NullSpan:
    """Shared no-op context manager handed out when spans are disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: The process-wide disabled-span singleton; entering and exiting it does
#: no work at all.
NULL_SPAN = _NullSpan()


def maybe_span(obs, op: str, **fields):
    """A live span when ``obs`` carries a :class:`SpanTracer`, else
    :data:`NULL_SPAN`.

    The single helper every instrumentation site uses, so hot paths stay
    single-sourced: ``with maybe_span(self._obs, "maintain_insert",
    points=n): ...`` is a no-op context for uninstrumented runs.
    """
    if obs is None or obs.spans is None:
        return NULL_SPAN
    return obs.spans.span(op, fields)


class Span:
    """One live span: a context manager timing a parented operation.

    Produced by :meth:`SpanTracer.span`; not constructed directly. The
    span's identity (``span_id``, ``parent_id``) is fixed at creation;
    entering emits ``span_start``, exiting emits ``span_end`` with the
    monotonic duration and feeds the per-operation latency histogram.
    """

    __slots__ = ("op", "span_id", "parent_id", "fields", "_tracer", "_started")

    def __init__(
        self,
        tracer: "SpanTracer",
        op: str,
        span_id: int,
        parent_id: int | None,
        fields: dict,
    ) -> None:
        self.op = op
        self.span_id = span_id
        self.parent_id = parent_id
        self.fields = fields
        self._tracer = tracer
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        # Start the clock *after* the start event, so the event-emission
        # overhead is excluded from the span's own duration.
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._started
        self._tracer._exit(self, elapsed, error=exc_type is not None)


class SpanTracer:
    """Allocates parented spans and folds their durations into metrics.

    Attach one to an :class:`~repro.observability.Observability` handle
    (``Observability(spans=SpanTracer())``); the handle binds the tracer
    to its registry and event stream, after which ``obs.span(op, ...)``
    opens spans. One tracer belongs to one handle — spans inherit the
    handle's single-threaded batch-update model, like every other metric.

    Parenting uses an explicit stack: the innermost live span is the
    parent of the next one opened. ``with`` blocks close spans LIFO, so
    the stack discipline always holds for context-manager use.
    """

    __slots__ = (
        "_obs",
        "_stack",
        "_trace_stack",
        "_next_id",
        "_histograms",
        "_counts",
    )

    def __init__(self) -> None:
        self._obs = None
        self._stack: list[int] = []
        self._trace_stack: list[str | None] = []
        self._next_id = 0
        self._histograms: dict = {}
        self._counts: dict[str, int] = {}

    def bind(self, obs) -> None:
        """Attach to an Observability handle (called by its constructor)."""
        if self._obs is not None and self._obs is not obs:
            raise ValueError(
                "SpanTracer is already bound to another Observability "
                "handle; create one tracer per handle"
            )
        self._obs = obs

    # ------------------------------------------------------------------
    # Opening spans
    # ------------------------------------------------------------------
    def span(self, op: str, fields: dict | None = None) -> Span:
        """A new span for ``op``, parented under the innermost live span."""
        if self._obs is None:
            raise ValueError(
                "SpanTracer is not bound; attach it to an Observability "
                "handle (Observability(spans=tracer)) before opening spans"
            )
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        return Span(self, op, span_id, parent, fields or {})

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """How many spans are currently live (nested)."""
        return len(self._stack)

    @property
    def current_trace(self) -> str | None:
        """The innermost live span's trace id, or ``None``."""
        return self._trace_stack[-1] if self._trace_stack else None

    @property
    def total_opened(self) -> int:
        """Spans opened over the tracer's lifetime."""
        return self._next_id

    def counts(self) -> dict[str, int]:
        """Lifetime *closed*-span counts per operation."""
        return dict(self._counts)

    # ------------------------------------------------------------------
    # Span lifecycle (called by Span.__enter__/__exit__)
    # ------------------------------------------------------------------
    def _enter(self, span: Span) -> None:
        trace = span.fields.get("trace")
        if trace is None and self._trace_stack:
            # Inherit the innermost enclosing trace context, so every
            # span nested under a trace-carrying root is stamped with
            # its id without call sites threading it through.
            trace = self._trace_stack[-1]
        self._stack.append(span.span_id)
        self._trace_stack.append(trace)
        fields = {
            "span": span.span_id,
            "parent": span.parent_id,
            "op": span.op,
        }
        if trace is not None:
            fields["trace"] = trace
        fields.update(span.fields)
        self._obs.emit_fields("span_start", fields)

    def _exit(self, span: Span, elapsed: float, error: bool) -> None:
        # Context managers unwind LIFO; a mismatch means spans were
        # entered without `with` and closed out of order — drop back to
        # the matching frame so one misuse cannot corrupt all parenting.
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
            self._trace_stack.pop()
        elif span.span_id in self._stack:  # pragma: no cover - misuse
            index = self._stack.index(span.span_id)
            del self._stack[index:]
            del self._trace_stack[index:]
        self._counts[span.op] = self._counts.get(span.op, 0) + 1
        self._histogram(span.op).observe(elapsed)
        end_fields = {"span": span.span_id, "op": span.op, "seconds": elapsed}
        if error:
            end_fields["error"] = True
        self._obs.emit_fields("span_end", end_fields)

    def _histogram(self, op: str):
        histogram = self._histograms.get(op)
        if histogram is None:
            histogram = self._obs.metrics.histogram(
                SPAN_SECONDS_METRIC,
                help="Span durations by operation (hierarchical tracing).",
                unit="seconds",
                labels={"op": op},
            )
            self._histograms[op] = histogram
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanTracer(opened={self._next_id}, depth={len(self._stack)})"
        )
