"""Sliding-window stream summarization — the paper's other future-work item.

Section 1 positions a data stream as "a degenerate case of an incremental
database where the database size is extremely small (the size of a window
in a stream), and insertions and deletions arise such that the current
database content is completely replaced"; Section 6 lists "compressing
data streams ... using incremental data bubbles" as future research.

:class:`SlidingWindowSummarizer` is exactly that degenerate case wired up:
every appended chunk of stream points is one :class:`UpdateBatch` whose
insertions are the chunk and whose deletions are the points that fall out
of the window (FIFO — point ids are handed out monotonically, so the
oldest alive ids are the smallest). The summary is maintained by an
:class:`~repro.core.adaptive.AdaptiveMaintainer`, so the bubble count also
tracks the window as it fills.

Example:
    >>> import numpy as np
    >>> stream = SlidingWindowSummarizer(dim=2, window_size=1_000,
    ...                                  points_per_bubble=50, seed=0)
    >>> rng = np.random.default_rng(0)
    >>> for _ in range(20):
    ...     _ = stream.append(rng.normal(size=(100, 2)))
    >>> stream.size
    1000
"""

from __future__ import annotations

import pathlib
import time

import numpy as np

from .core import (
    AdaptiveMaintainer,
    BubbleBuilder,
    BubbleConfig,
    BubbleSet,
    MaintenanceConfig,
)
from .core.audit import AuditReport, InvariantAuditor
from .core.maintenance import BatchReport
from .core.validate import RejectedPoint, check_policy, screen_chunk
from .database import PointStore, UpdateBatch
from .exceptions import (
    CorruptStateError,
    InvalidConfigError,
    NotFittedError,
    PersistenceError,
)
from .geometry import DistanceCounter
from .observability import Observability
from .observability.spans import maybe_span
from .persistence import (
    CheckpointManager,
    SummarizerState,
    config_from_dict,
    config_to_dict,
    recover_state,
)
from .sufficient import SufficientStatistics
from .types import Label

__all__ = ["SlidingWindowSummarizer", "DurableSummarizer"]

#: How many rejected points the ``quarantine`` policy retains for
#: diagnostics before older ones are dropped (in-memory only).
QUARANTINE_CAPACITY = 1024


class SlidingWindowSummarizer:
    """Incremental data bubbles over the most recent ``window_size`` points.

    Args:
        dim: stream dimensionality.
        window_size: how many of the most recent points the summary
            describes.
        points_per_bubble: target compression rate (the adaptive
            maintainer steers the bubble count toward
            ``window / points_per_bubble``).
        config: maintenance parameters; defaults to the paper's.
        seed: RNG seed for construction and maintenance randomness.
        obs: observability handle; streaming events/gauges land here and
            the handle is passed down to the maintainer. ``None``
            disables instrumentation.
        on_bad_point: how malformed input (NaN/Inf coordinates, a
            dimension mismatch) is treated — ``"strict"`` raises
            :class:`~repro.exceptions.InvalidPointError`, ``"skip"``
            drops the bad rows (counted and traced), ``"quarantine"``
            drops them but retains them in :attr:`quarantined` for
            diagnostics.
        audit_every: run a self-healing
            :class:`~repro.core.audit.InvariantAuditor` pass every this
            many appended chunks (0, the default, disables periodic
            audits).

    The summarizer bootstraps lazily: chunks are buffered in the store
    until at least ``2 · points_per_bubble`` points have arrived, then the
    initial bubbles are built and maintenance takes over.
    """

    def __init__(
        self,
        dim: int,
        window_size: int,
        points_per_bubble: int,
        config: MaintenanceConfig | None = None,
        seed: int | None = None,
        obs: Observability | None = None,
        on_bad_point: str = "strict",
        audit_every: int = 0,
    ) -> None:
        if window_size < 2:
            raise InvalidConfigError(
                f"window_size must be >= 2, got {window_size}"
            )
        if points_per_bubble < 1:
            raise InvalidConfigError(
                f"points_per_bubble must be >= 1, got {points_per_bubble}"
            )
        if points_per_bubble * 2 > window_size:
            raise InvalidConfigError(
                "window_size must hold at least two bubbles' worth of points"
            )
        if audit_every < 0:
            raise InvalidConfigError(
                f"audit_every must be >= 0, got {audit_every}"
            )
        self._window = window_size
        self._points_per_bubble = points_per_bubble
        self._on_bad_point = check_policy(on_bad_point)
        self._audit_every = int(audit_every)
        self._chunks_seen = 0
        self._rejected_total = 0
        self._quarantined: list[RejectedPoint] = []
        self._last_audit: AuditReport | None = None
        self._config = (
            config if config is not None else MaintenanceConfig(seed=seed)
        )
        self._seed = seed
        self._store = PointStore(dim=dim)
        self._counter = DistanceCounter()
        self._maintainer: AdaptiveMaintainer | None = None
        self._obs = obs
        if obs is not None:
            m = obs.metrics
            self._m_chunks = m.counter(
                "repro_stream_chunks_total",
                help="Stream chunks appended to the sliding window.",
            )
            self._m_points = m.counter(
                "repro_stream_points_total",
                help="Stream points ingested.",
                unit="points",
            )
            self._m_evicted = m.counter(
                "repro_stream_evictions_total",
                help="Points evicted FIFO from the sliding window.",
                unit="points",
            )
            self._m_window = m.gauge(
                "repro_stream_window_points",
                help="Points currently held by the sliding window.",
                unit="points",
            )
            self._m_active = m.gauge(
                "repro_stream_active_bubbles",
                help="Active (non-retired) bubbles summarizing the "
                "window.",
            )
            self._m_distance_computed = m.counter(
                "repro_distance_computed_total",
                help="Distance computations executed (DistanceCounter; "
                "Figures 10-11).",
            )
            self._m_distance_pruned = m.counter(
                "repro_distance_pruned_total",
                help="Distance computations avoided via Lemma 1 "
                "(DistanceCounter; Figures 10-11).",
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def window_size(self) -> int:
        """The window capacity in points."""
        return self._window

    @property
    def size(self) -> int:
        """How many points the window currently holds."""
        return self._store.size

    @property
    def store(self) -> PointStore:
        """The live window content."""
        return self._store

    @property
    def counter(self) -> DistanceCounter:
        """Distance-computation accounting across the whole stream."""
        return self._counter

    @property
    def obs(self) -> Observability | None:
        """The observability handle, or ``None`` when uninstrumented."""
        return self._obs

    @property
    def points_per_bubble(self) -> int:
        """The target compression rate."""
        return self._points_per_bubble

    @property
    def config(self) -> MaintenanceConfig:
        """The maintenance parameters in force."""
        return self._config

    @property
    def seed(self) -> int | None:
        """The construction seed."""
        return self._seed

    @property
    def on_bad_point(self) -> str:
        """The bad-point policy in force."""
        return self._on_bad_point

    @property
    def rejected_points(self) -> int:
        """Total points rejected at the ingestion boundary so far."""
        return self._rejected_total

    @property
    def quarantined(self) -> tuple[RejectedPoint, ...]:
        """Rejected points retained under the ``quarantine`` policy.

        In-memory only (bounded at :data:`QUARANTINE_CAPACITY`); not
        persisted across crashes — rejected points are by definition
        excluded from the durable history.
        """
        return tuple(self._quarantined)

    @property
    def last_audit(self) -> AuditReport | None:
        """The most recent periodic audit's report, if any ran."""
        return self._last_audit

    def is_ready(self) -> bool:
        """Whether the summary has been bootstrapped."""
        return self._maintainer is not None

    @property
    def summary(self) -> BubbleSet:
        """The current bubble summary.

        Raises:
            NotFittedError: before enough points arrived to bootstrap.
        """
        if self._maintainer is None:
            raise NotFittedError(
                "the stream summary is not bootstrapped yet; append more "
                "points"
            )
        return self._maintainer.bubbles

    @property
    def maintainer(self) -> AdaptiveMaintainer | None:
        """The underlying adaptive maintainer (``None`` while buffering)."""
        return self._maintainer

    # ------------------------------------------------------------------
    # Stream ingestion
    # ------------------------------------------------------------------
    def append(
        self,
        points: np.ndarray,
        labels: list[Label] | np.ndarray | None = None,
    ) -> BatchReport | None:
        """Ingest one chunk of stream points.

        Evicts the oldest points beyond the window capacity in the same
        batch. Returns the maintainer's :class:`BatchReport`, or ``None``
        while the summarizer is still buffering toward bootstrap.

        Raises:
            InvalidPointError: the chunk is malformed and the policy is
                ``strict`` (see the ``on_bad_point`` constructor arg).
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.shape[0] > self._window:
            raise ValueError(
                f"chunk of {points.shape[0]} exceeds the window of "
                f"{self._window}"
            )
        if labels is None:
            label_tuple = tuple([-1] * points.shape[0])
        else:
            label_tuple = tuple(int(l) for l in np.asarray(labels))
        screened = screen_chunk(
            points, label_tuple, self._store.dim, self._on_bad_point
        )
        if screened.num_rejected:
            self._note_rejected(screened.rejected)
        points = screened.points
        label_tuple = screened.labels

        overflow = max(0, self._store.size + points.shape[0] - self._window)
        evicted = (
            tuple(int(i) for i in self._store.ids()[:overflow])
            if overflow
            else ()
        )

        self._chunks_seen += 1
        if self._maintainer is None:
            # Buffering phase: mutate the store directly.
            with maybe_span(
                self._obs, "stream_append", points=points.shape[0]
            ):
                if evicted:
                    self._store.delete(np.asarray(evicted, dtype=np.int64))
                self._store.insert(points, label_tuple)
                self._maybe_bootstrap()
            self._record_append(points.shape[0], len(evicted))
            self._maybe_audit()
            self._tick_timeseries()
            return None

        batch = UpdateBatch(
            deletions=evicted,
            insertions=points,
            insertion_labels=label_tuple,
        )
        with maybe_span(
            self._obs,
            "stream_append",
            points=points.shape[0],
            evicted=len(evicted),
        ):
            report = self._maintainer.apply_batch(batch)
        self._record_append(points.shape[0], len(evicted))
        self._maybe_audit()
        self._tick_timeseries()
        return report

    def _tick_timeseries(self) -> None:
        """Advance the windowed telemetry by one appended batch."""
        obs = self._obs
        if obs is None or obs.timeseries is None:
            return
        obs.timeseries.maybe_roll(self._timeseries_gauges)

    def flush_timeseries(self) -> None:
        """Close the current partial telemetry window (end of a run)."""
        obs = self._obs
        if obs is None or obs.timeseries is None:
            return
        obs.timeseries.flush(self._timeseries_gauges)

    def _timeseries_gauges(self) -> dict:
        """Instantaneous gauges probed at each closed telemetry window.

        Everything here is counts-only arithmetic over existing state —
        no distance computations, no RNG draws — so probing cannot
        perturb the summarization stream.
        """
        gauges: dict = {"window_points": self._store.size}
        maintainer = self._maintainer
        if maintainer is None:
            return gauges
        gauges["active_bubbles"] = maintainer.active_count
        report = maintainer.last_quality_report
        if report is None:
            report = maintainer.classify()
        values = report.values
        if values.size:
            gauges["beta_min"] = float(values.min())
            gauges["beta_median"] = float(np.median(values))
            gauges["beta_max"] = float(values.max())
        gauges["under_filled"] = len(report.under_filled_ids)
        gauges["over_filled"] = len(report.over_filled_ids)
        cache = maintainer.assigner_cache
        lookups = cache.hits + cache.misses
        gauges["assigner_cache_hit_rate"] = (
            cache.hits / lookups if lookups else 0.0
        )
        return gauges

    def audit(self, repair: bool = True) -> AuditReport:
        """Audit (and by default repair) summary/database consistency.

        Delegates to :class:`~repro.core.audit.InvariantAuditor`. Before
        bootstrap there is no summary to drift, so a trivially-ok report
        is returned.
        """
        if self._maintainer is None:
            return AuditReport(ok=True)
        auditor = InvariantAuditor.for_maintainer(
            self._maintainer, obs=self._obs
        )
        report = auditor.audit(repair=repair)
        self._last_audit = report
        return report

    def _maybe_audit(self) -> None:
        if self._audit_every == 0 or self._maintainer is None:
            return
        if self._chunks_seen % self._audit_every == 0:
            self.audit(repair=True)

    def _note_rejected(
        self, rejected: tuple[RejectedPoint, ...]
    ) -> None:
        self._rejected_total += len(rejected)
        if self._on_bad_point == "quarantine":
            space = QUARANTINE_CAPACITY - len(self._quarantined)
            if space > 0:
                self._quarantined.extend(rejected[:space])
        if self._obs is None:
            return
        reasons: dict[str, int] = {}
        for reject in rejected:
            reasons[reject.reason] = reasons.get(reject.reason, 0) + 1
        for reason, count in sorted(reasons.items()):
            self._obs.metrics.counter(
                "repro_points_rejected_total",
                help="Stream points rejected at the ingestion boundary.",
                unit="points",
                labels={"reason": reason},
            ).inc(count)
        self._obs.emit(
            "bad_points_rejected",
            count=len(rejected),
            policy=self._on_bad_point,
            **reasons,
        )

    def _record_append(self, inserted: int, evicted: int) -> None:
        if self._obs is None:
            return
        self._m_chunks.inc()
        self._m_points.inc(inserted)
        self._m_window.set(self._store.size)
        if self._maintainer is not None:
            self._m_active.set(self._maintainer.active_count)
        self._obs.emit(
            "insert_batch", points=inserted, evicted=evicted
        )
        if evicted:
            self._m_evicted.inc(evicted)
            self._obs.emit("fifo_eviction", points=evicted)

    def _maybe_bootstrap(self) -> None:
        if self._store.size < 2 * self._points_per_bubble:
            return
        num_bubbles = max(
            2, self._store.size // self._points_per_bubble
        )
        # The bootstrap build honours the maintenance config's
        # assignment-engine options (spatial index, worker pool) so an
        # opted-in summarizer is accelerated from its very first scan.
        builder = BubbleBuilder(
            BubbleConfig(
                num_bubbles=num_bubbles,
                seed=self._seed,
                use_seed_index=self._config.use_seed_index,
                assign_workers=self._config.assign_workers,
            ),
            counter=self._counter,
        )
        before = self._counter.snapshot()
        started = time.perf_counter()
        with maybe_span(
            self._obs,
            "bootstrap",
            points=self._store.size,
            bubbles=num_bubbles,
        ):
            bubbles = builder.build(self._store)
            self._maintainer = AdaptiveMaintainer(
                bubbles,
                self._store,
                points_per_bubble=self._points_per_bubble,
                config=self._config,
                counter=self._counter,
                obs=self._obs,
            )
        if self._obs is not None:
            # Construction is the one distance-spending phase outside the
            # maintainer, so its delta is folded into the registry here to
            # keep registry totals identical to the DistanceCounter's.
            delta = self._counter.snapshot() - before
            self._m_distance_computed.inc(delta.computed)
            self._m_distance_pruned.inc(delta.pruned)
            self._obs.emit(
                "bootstrap",
                points=self._store.size,
                bubbles=num_bubbles,
                seconds=time.perf_counter() - started,
            )

    # ------------------------------------------------------------------
    # Persistence (capture / restore)
    # ------------------------------------------------------------------
    def capture_state(self, batches_applied: int = 0) -> SummarizerState:
        """Freeze the complete summarizer state for snapshotting.

        Everything a later :meth:`from_state` needs to resume
        *bit-identically* is captured: store content (with id counter),
        raw per-bubble sufficient statistics (never recomputed — they
        carry insertion-order floating-point history), seeds, member ids,
        the maintainer's RNG state and retired set, and the distance
        totals.

        Args:
            batches_applied: stream position this state corresponds to
                (tracked by the caller, typically a
                :class:`DurableSummarizer`).
        """
        ids, points, labels = self._store.snapshot()
        owners = self._store.owners_of(ids)
        state = SummarizerState(
            dim=self._store.dim,
            window_size=self._window,
            points_per_bubble=self._points_per_bubble,
            seed=self._seed,
            config=self._config,
            batches_applied=int(batches_applied),
            bootstrapped=self._maintainer is not None,
            store_ids=ids,
            store_points=points,
            store_labels=labels,
            store_owners=owners,
            store_next_id=self._store.next_id,
            counter_computed=self._counter.computed,
            counter_pruned=self._counter.pruned,
        )
        if self._maintainer is None:
            return state

        bubbles = self._maintainer.bubbles
        num = len(bubbles)
        seeds = bubbles.seeds()
        ns = bubbles.counts()
        linear_sums = np.empty((num, self._store.dim), dtype=np.float64)
        square_sums = np.empty(num, dtype=np.float64)
        member_chunks: list[np.ndarray] = []
        offsets = np.zeros(num + 1, dtype=np.int64)
        for i, bubble in enumerate(bubbles):
            linear_sums[i] = bubble.stats.linear_sum
            square_sums[i] = bubble.stats.square_sum
            members = bubble.member_ids()
            member_chunks.append(members)
            offsets[i + 1] = offsets[i] + members.size
        state.seeds = seeds
        state.ns = ns
        state.linear_sums = linear_sums
        state.square_sums = square_sums
        state.member_offsets = offsets
        state.member_ids = (
            np.concatenate(member_chunks)
            if member_chunks
            else np.empty(0, dtype=np.int64)
        )
        state.retired = tuple(sorted(self._maintainer.retired_ids))
        state.max_adjust = self._maintainer.max_adjust_per_batch
        state.rng_state = self._maintainer.rng_state
        return state

    @classmethod
    def from_state(
        cls,
        state: SummarizerState,
        obs: Observability | None = None,
        on_bad_point: str = "strict",
        audit_every: int = 0,
    ) -> "SlidingWindowSummarizer":
        """Reconstruct a summarizer captured by :meth:`capture_state`.

        ``on_bad_point`` and ``audit_every`` are runtime policies, not
        summary state — the caller (e.g. ``DurableSummarizer.recover``,
        which reads them from the manifest) re-supplies them.
        """
        stream = cls(
            dim=state.dim,
            window_size=state.window_size,
            points_per_bubble=state.points_per_bubble,
            config=state.config,
            seed=state.seed,
            obs=obs,
            on_bad_point=on_bad_point,
            audit_every=audit_every,
        )
        stream._store = PointStore.from_snapshot(
            dim=state.dim,
            ids=state.store_ids,
            points=state.store_points,
            labels=state.store_labels,
            owners=state.store_owners,
            next_id=state.store_next_id,
        )
        stream._counter.record_computed(state.counter_computed)
        stream._counter.record_pruned(state.counter_pruned)
        if obs is not None:
            # Restored historical totals enter the registry too, so the
            # registry == DistanceCounter invariant spans recoveries.
            stream._m_distance_computed.inc(state.counter_computed)
            stream._m_distance_pruned.inc(state.counter_pruned)
            stream._m_window.set(stream._store.size)
        if not state.bootstrapped:
            return stream

        bubbles = BubbleSet(dim=state.dim)
        for i in range(state.num_bubbles):
            bubble = bubbles.add_bubble(state.seeds[i])
            stats = SufficientStatistics.from_raw(
                int(state.ns[i]),
                state.linear_sums[i],
                float(state.square_sums[i]),
            )
            members = state.member_ids[
                state.member_offsets[i] : state.member_offsets[i + 1]
            ]
            bubble.restore_state(stats, members)
        maintainer = AdaptiveMaintainer(
            bubbles,
            stream._store,
            points_per_bubble=state.points_per_bubble,
            max_adjust_per_batch=state.max_adjust,
            config=state.config,
            counter=stream._counter,
            obs=obs,
        )
        if state.rng_state is not None:
            maintainer.rng_state = state.rng_state
        maintainer.restore_retired(set(state.retired))
        stream._maintainer = maintainer
        return stream


class DurableSummarizer:
    """A :class:`SlidingWindowSummarizer` whose state survives crashes.

    Durability follows the classic write-ahead discipline
    (:mod:`repro.persistence`): every appended chunk is logged — and
    flushed to disk — *before* it is applied in memory, and a snapshot of
    the full summarizer state is checkpointed every ``checkpoint_every``
    batches (after which the log is truncated). After a crash,
    :meth:`recover` loads the newest valid snapshot and replays the log
    tail through the normal maintenance path, reproducing the
    pre-crash summary bit-for-bit — the paper's incremental-vs-rebuild
    advantage (Figure 7), applied to process lifetimes.

    Args:
        wal_dir: state directory; must not already hold durable state
            (use :meth:`recover` to resume one that does).
        dim, window_size, points_per_bubble, config, seed: as for
            :class:`SlidingWindowSummarizer`.
        checkpoint_every: batches between snapshots.
        keep_snapshots: how many snapshots to retain as corruption
            fallbacks.
        fsync: flush appends and snapshots through to disk. Leave on for
            power-loss durability; turning it off retains process-crash
            durability and is markedly faster.
        obs: observability handle; WAL/snapshot/recovery metrics and
            events land here and the handle is shared with the wrapped
            summarizer. ``None`` disables instrumentation.
        on_bad_point: bad-point policy, as for
            :class:`SlidingWindowSummarizer`. Screening runs **before**
            the WAL append, so a rejected point is never durably logged
            — replay sees only clean history. Recorded in the manifest
            and restored by :meth:`recover`.
        audit_every: periodic self-healing audit cadence, as for
            :class:`SlidingWindowSummarizer`.

    Example:
        >>> stream = DurableSummarizer(                     # doctest: +SKIP
        ...     "state/", dim=2, window_size=1000, points_per_bubble=50,
        ...     seed=0)
        >>> stream.append(chunk)                            # doctest: +SKIP
        ... # -- crash --
        >>> stream = DurableSummarizer.recover("state/")    # doctest: +SKIP
    """

    def __init__(
        self,
        wal_dir: str | pathlib.Path,
        dim: int,
        window_size: int,
        points_per_bubble: int,
        config: MaintenanceConfig | None = None,
        seed: int | None = None,
        checkpoint_every: int = 16,
        keep_snapshots: int = 2,
        fsync: bool = True,
        obs: Observability | None = None,
        on_bad_point: str = "strict",
        audit_every: int = 0,
    ) -> None:
        manager = CheckpointManager(
            wal_dir,
            interval=checkpoint_every,
            keep=keep_snapshots,
            fsync=fsync,
            obs=obs,
        )
        if manager.has_state():
            manager.close()
            raise PersistenceError(
                f"{wal_dir} already holds durable summarizer state; "
                "use DurableSummarizer.recover() to resume it"
            )
        inner = SlidingWindowSummarizer(
            dim=dim,
            window_size=window_size,
            points_per_bubble=points_per_bubble,
            config=config,
            seed=seed,
            obs=obs,
            on_bad_point=on_bad_point,
            audit_every=audit_every,
        )
        manager.write_manifest(
            {
                "dim": int(dim),
                "window_size": int(window_size),
                "points_per_bubble": int(points_per_bubble),
                "seed": None if seed is None else int(seed),
                "config": config_to_dict(inner.config),
                "checkpoint_every": int(checkpoint_every),
                "keep_snapshots": int(keep_snapshots),
                "on_bad_point": inner.on_bad_point,
            }
        )
        self._inner = inner
        self._manager = manager
        self._seq = 0
        self._replaying = False
        self._callback_registered = False
        self._closed = False
        self._obs = obs
        self._create_wal_metrics(obs)

    def _create_wal_metrics(self, obs: Observability | None) -> None:
        if obs is None:
            return
        m = obs.metrics
        self._m_wal_appends = m.counter(
            "repro_wal_appends_total",
            help="Batches durably appended to the write-ahead log.",
        )
        self._m_wal_bytes = m.counter(
            "repro_wal_bytes_total",
            help="Bytes written to the write-ahead log (records incl. "
            "headers).",
            unit="bytes",
        )
        self._m_wal_seconds = m.timer(
            "repro_wal_append_seconds",
            help="Latency of one durable WAL append (encode + write + "
            "flush).",
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        wal_dir: str | pathlib.Path,
        fsync: bool = True,
        obs: Observability | None = None,
        audit_every: int = 0,
    ) -> "DurableSummarizer":
        """Resume a durable summarizer from its state directory.

        Loads the newest valid snapshot (falling back to older ones when
        the newest is damaged), repairs a torn final WAL record, and
        replays the remaining log tail through the normal maintenance
        path. Finishes with a fresh checkpoint when anything was
        replayed, so a recovery is never repeated.

        Raises:
            PersistenceError: ``wal_dir`` holds no durable state, or the
                snapshot and log cannot be reconciled.
            WalCorruptionError: the log is damaged before its tail.
        """
        # Refuse before touching the directory: probing a manifest-less
        # (or nonexistent) path must not mutate it — opening a
        # CheckpointManager would create the directory and an empty
        # wal.log, and a stray/empty wal.log would otherwise surface as a
        # confusing corruption error instead of "nothing to resume".
        directory = pathlib.Path(wal_dir)
        if not (directory / "manifest.json").exists():
            raise PersistenceError(
                f"{directory} holds no durable summarizer state "
                "(manifest.json is missing); start a new summarizer "
                "instead of recovering"
            )
        probe = CheckpointManager(wal_dir, fsync=fsync)
        try:
            manifest = probe.read_manifest()
        except PersistenceError:
            probe.close()
            raise
        probe.close()

        started = time.perf_counter()
        manager = CheckpointManager(
            wal_dir,
            interval=int(manifest["checkpoint_every"]),
            keep=int(manifest["keep_snapshots"]),
            fsync=fsync,
            obs=obs,
        )
        try:
            return cls._recover_with(
                manager, manifest, wal_dir, obs, audit_every, started
            )
        except BaseException:
            # A failed recovery must not leak the WAL file handle the
            # manager opened — the service layer retries/raises past
            # this and the directory must stay openable.
            manager.close()
            raise

    @classmethod
    def _recover_with(
        cls,
        manager: CheckpointManager,
        manifest: dict,
        wal_dir: str | pathlib.Path,
        obs: Observability | None,
        audit_every: int,
        started: float,
    ) -> "DurableSummarizer":
        with maybe_span(obs, "recovery"):
            recovered = recover_state(manager, obs=obs)
            stream = cls.__new__(cls)
            stream._manager = manager
            stream._replaying = False
            stream._callback_registered = False
            stream._closed = False
            stream._obs = obs
            stream._create_wal_metrics(obs)
            # Older manifests predate the bad-point policy; default strict.
            on_bad_point = str(manifest.get("on_bad_point", "strict"))
            if recovered.state is not None:
                try:
                    stream._inner = SlidingWindowSummarizer.from_state(
                        recovered.state,
                        obs=obs,
                        on_bad_point=on_bad_point,
                        audit_every=audit_every,
                    )
                except ValueError as exc:
                    # The snapshot decoded but violates internal invariants
                    # (a buggy writer, or tampering the checksum cannot see).
                    raise CorruptStateError(
                        f"snapshot state for {wal_dir} is internally "
                        f"inconsistent ({exc}); rename the newest "
                        f"snapshot-*.npz aside to fall back to an older "
                        f"generation, or rebuild from the source stream"
                    ) from exc
                stream._seq = recovered.state.batches_applied
            else:
                stream._inner = SlidingWindowSummarizer(
                    dim=int(manifest["dim"]),
                    window_size=int(manifest["window_size"]),
                    points_per_bubble=int(manifest["points_per_bubble"]),
                    config=config_from_dict(manifest["config"]),
                    seed=(
                        None
                        if manifest["seed"] is None
                        else int(manifest["seed"])
                    ),
                    obs=obs,
                    on_bad_point=on_bad_point,
                    audit_every=audit_every,
                )
                stream._seq = 0
            stream._register_callback_if_ready()

            if recovered.tail:
                stream._replaying = True
                try:
                    with maybe_span(
                        obs, "replay", batches=len(recovered.tail)
                    ):
                        for record in recovered.tail:
                            stream._seq += 1
                            stream._inner.append(
                                record.batch.insertions,
                                list(record.batch.insertion_labels),
                            )
                            stream._register_callback_if_ready()
                finally:
                    stream._replaying = False
                # Re-establish the invariant "snapshot + log tail == state":
                # everything replayed is now captured in one fresh snapshot
                # and the log is truncated, so the next crash recovers from
                # here instead of repeating this replay.
                stream.checkpoint()
        if obs is not None:
            obs.metrics.counter(
                "repro_recovery_replays_total",
                help="Crash recoveries performed.",
            ).inc()
            obs.metrics.counter(
                "repro_recovery_replayed_batches_total",
                help="WAL-tail batches replayed during recoveries.",
            ).inc(len(recovered.tail))
            obs.emit(
                "recovery_replay",
                snapshot_batches=recovered.snapshot_batches,
                replayed_batches=len(recovered.tail),
                seconds=time.perf_counter() - started,
            )
        return stream

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(
        self,
        points: np.ndarray,
        labels: list[Label] | np.ndarray | None = None,
    ) -> BatchReport | None:
        """Durably ingest one chunk: WAL first, then the in-memory apply.

        Returns the maintainer's report (``None`` while buffering), like
        :meth:`SlidingWindowSummarizer.append`.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.shape[0] > self._inner.window_size:
            raise ValueError(
                f"chunk of {points.shape[0]} exceeds the window of "
                f"{self._inner.window_size}"
            )
        if labels is None:
            label_tuple = tuple([-1] * points.shape[0])
        else:
            label_tuple = tuple(int(l) for l in np.asarray(labels))
        # Screen up front: a point the in-memory summarizer would reject
        # must not be acknowledged into the log — replay would either
        # re-raise (strict) or have to re-screen (skip/quarantine); only
        # clean history is durable.
        screened = screen_chunk(
            points,
            label_tuple,
            self._inner.store.dim,
            self._inner.on_bad_point,
        )
        if screened.num_rejected:
            self._inner._note_rejected(screened.rejected)
        points = screened.points
        label_tuple = screened.labels
        batch = UpdateBatch(
            deletions=(),
            insertions=points,
            insertion_labels=label_tuple,
        )

        if self._obs is None:
            self._manager.wal.append(self._seq, batch)
        else:
            started = time.perf_counter()
            # "wal_seq", not "seq": a field named "seq" would collide
            # with the trace line's own sequence number on serialization.
            with maybe_span(
                self._obs,
                "wal_append",
                wal_seq=self._seq,
                points=points.shape[0],
            ):
                nbytes = self._manager.wal.append(self._seq, batch)
            elapsed = time.perf_counter() - started
            self._m_wal_appends.inc()
            self._m_wal_bytes.inc(nbytes)
            self._m_wal_seconds.observe(elapsed)
            self._obs.emit(
                "wal_append",
                wal_seq=self._seq,
                bytes=nbytes,
                points=points.shape[0],
                seconds=elapsed,
            )
        self._seq += 1
        was_ready = self._inner.is_ready()
        report = self._inner.append(points, list(label_tuple))
        if not was_ready:
            # No maintainer callback existed for this batch (buffering, or
            # the bootstrap batch itself) — drive the checkpoint directly.
            self._register_callback_if_ready()
            self._maybe_checkpoint()
        return report

    # ------------------------------------------------------------------
    # Checkpoint control
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Snapshot the current state now and truncate the WAL."""
        self._manager.checkpoint(self._inner.capture_state(self._seq))

    def close(self, checkpoint: bool = True) -> None:
        """Release file handles, by default after a final checkpoint.

        Idempotent: a second (or later) close is a no-op — it neither
        writes another checkpoint nor touches the already-released
        handles. The service's drain path closes shards from several
        code paths (worker failure, drain, context exit), so double
        closes are normal, not a bug.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if checkpoint:
                self.checkpoint()
        finally:
            # Even when the goodbye checkpoint fails, the handles are
            # released — the WAL still covers everything applied.
            self._manager.close()

    def __enter__(self) -> "DurableSummarizer":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        # Skip the goodbye checkpoint on error: the WAL already covers
        # everything applied, and the failed batch was never acknowledged.
        self.close(checkpoint=exc_type is None)

    # ------------------------------------------------------------------
    # Accessors (delegating to the wrapped summarizer)
    # ------------------------------------------------------------------
    @property
    def batches_applied(self) -> int:
        """How many chunks have been durably applied over all lifetimes."""
        return self._seq

    @property
    def wal_dir(self) -> pathlib.Path:
        """The durable state directory."""
        return self._manager.directory

    @property
    def checkpoints(self) -> CheckpointManager:
        """The underlying checkpoint manager."""
        return self._manager

    @property
    def inner(self) -> SlidingWindowSummarizer:
        """The wrapped in-memory summarizer."""
        return self._inner

    @property
    def window_size(self) -> int:
        """The window capacity in points."""
        return self._inner.window_size

    @property
    def size(self) -> int:
        """How many points the window currently holds."""
        return self._inner.size

    @property
    def store(self) -> PointStore:
        """The live window content."""
        return self._inner.store

    @property
    def counter(self) -> DistanceCounter:
        """Distance-computation accounting across the whole stream."""
        return self._inner.counter

    def is_ready(self) -> bool:
        """Whether the summary has been bootstrapped."""
        return self._inner.is_ready()

    @property
    def summary(self) -> BubbleSet:
        """The current bubble summary (raises before bootstrap)."""
        return self._inner.summary

    @property
    def maintainer(self) -> AdaptiveMaintainer | None:
        """The underlying adaptive maintainer (``None`` while buffering)."""
        return self._inner.maintainer

    @property
    def on_bad_point(self) -> str:
        """The bad-point policy in force."""
        return self._inner.on_bad_point

    @property
    def rejected_points(self) -> int:
        """Total points rejected at the ingestion boundary so far."""
        return self._inner.rejected_points

    @property
    def quarantined(self) -> tuple[RejectedPoint, ...]:
        """Rejected points retained under the ``quarantine`` policy."""
        return self._inner.quarantined

    def audit(self, repair: bool = True) -> AuditReport:
        """Audit (and by default repair) the summary's invariants."""
        return self._inner.audit(repair=repair)

    def flush_timeseries(self) -> None:
        """Close the current partial telemetry window (end of a run)."""
        self._inner.flush_timeseries()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _register_callback_if_ready(self) -> None:
        if self._callback_registered:
            return
        maintainer = self._inner.maintainer
        if maintainer is None:
            return
        maintainer.add_batch_callback(self._on_batch_applied)
        self._callback_registered = True

    def _on_batch_applied(
        self, batch: UpdateBatch, report: BatchReport
    ) -> None:
        self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        if self._replaying:
            # Checkpointing mid-replay would truncate WAL records that are
            # not yet reflected in any snapshot; recover() writes one
            # checkpoint after the whole tail is applied instead.
            return
        if self._seq % self._manager.interval == 0:
            self.checkpoint()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurableSummarizer(dir={str(self._manager.directory)!r}, "
            f"batches={self._seq}, size={self._inner.size})"
        )
