"""Sliding-window stream summarization — the paper's other future-work item.

Section 1 positions a data stream as "a degenerate case of an incremental
database where the database size is extremely small (the size of a window
in a stream), and insertions and deletions arise such that the current
database content is completely replaced"; Section 6 lists "compressing
data streams ... using incremental data bubbles" as future research.

:class:`SlidingWindowSummarizer` is exactly that degenerate case wired up:
every appended chunk of stream points is one :class:`UpdateBatch` whose
insertions are the chunk and whose deletions are the points that fall out
of the window (FIFO — point ids are handed out monotonically, so the
oldest alive ids are the smallest). The summary is maintained by an
:class:`~repro.core.adaptive.AdaptiveMaintainer`, so the bubble count also
tracks the window as it fills.

Example:
    >>> import numpy as np
    >>> stream = SlidingWindowSummarizer(dim=2, window_size=1_000,
    ...                                  points_per_bubble=50, seed=0)
    >>> rng = np.random.default_rng(0)
    >>> for _ in range(20):
    ...     _ = stream.append(rng.normal(size=(100, 2)))
    >>> stream.size
    1000
"""

from __future__ import annotations

import numpy as np

from .core import (
    AdaptiveMaintainer,
    BubbleBuilder,
    BubbleConfig,
    BubbleSet,
    MaintenanceConfig,
)
from .core.maintenance import BatchReport
from .database import PointStore, UpdateBatch
from .exceptions import InvalidConfigError, NotFittedError
from .geometry import DistanceCounter
from .types import Label

__all__ = ["SlidingWindowSummarizer"]


class SlidingWindowSummarizer:
    """Incremental data bubbles over the most recent ``window_size`` points.

    Args:
        dim: stream dimensionality.
        window_size: how many of the most recent points the summary
            describes.
        points_per_bubble: target compression rate (the adaptive
            maintainer steers the bubble count toward
            ``window / points_per_bubble``).
        config: maintenance parameters; defaults to the paper's.
        seed: RNG seed for construction and maintenance randomness.

    The summarizer bootstraps lazily: chunks are buffered in the store
    until at least ``2 · points_per_bubble`` points have arrived, then the
    initial bubbles are built and maintenance takes over.
    """

    def __init__(
        self,
        dim: int,
        window_size: int,
        points_per_bubble: int,
        config: MaintenanceConfig | None = None,
        seed: int | None = None,
    ) -> None:
        if window_size < 2:
            raise InvalidConfigError(
                f"window_size must be >= 2, got {window_size}"
            )
        if points_per_bubble < 1:
            raise InvalidConfigError(
                f"points_per_bubble must be >= 1, got {points_per_bubble}"
            )
        if points_per_bubble * 2 > window_size:
            raise InvalidConfigError(
                "window_size must hold at least two bubbles' worth of points"
            )
        self._window = window_size
        self._points_per_bubble = points_per_bubble
        self._config = (
            config if config is not None else MaintenanceConfig(seed=seed)
        )
        self._seed = seed
        self._store = PointStore(dim=dim)
        self._counter = DistanceCounter()
        self._maintainer: AdaptiveMaintainer | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def window_size(self) -> int:
        """The window capacity in points."""
        return self._window

    @property
    def size(self) -> int:
        """How many points the window currently holds."""
        return self._store.size

    @property
    def store(self) -> PointStore:
        """The live window content."""
        return self._store

    @property
    def counter(self) -> DistanceCounter:
        """Distance-computation accounting across the whole stream."""
        return self._counter

    def is_ready(self) -> bool:
        """Whether the summary has been bootstrapped."""
        return self._maintainer is not None

    @property
    def summary(self) -> BubbleSet:
        """The current bubble summary.

        Raises:
            NotFittedError: before enough points arrived to bootstrap.
        """
        if self._maintainer is None:
            raise NotFittedError(
                "the stream summary is not bootstrapped yet; append more "
                "points"
            )
        return self._maintainer.bubbles

    @property
    def maintainer(self) -> AdaptiveMaintainer | None:
        """The underlying adaptive maintainer (``None`` while buffering)."""
        return self._maintainer

    # ------------------------------------------------------------------
    # Stream ingestion
    # ------------------------------------------------------------------
    def append(
        self,
        points: np.ndarray,
        labels: list[Label] | np.ndarray | None = None,
    ) -> BatchReport | None:
        """Ingest one chunk of stream points.

        Evicts the oldest points beyond the window capacity in the same
        batch. Returns the maintainer's :class:`BatchReport`, or ``None``
        while the summarizer is still buffering toward bootstrap.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.shape[0] > self._window:
            raise ValueError(
                f"chunk of {points.shape[0]} exceeds the window of "
                f"{self._window}"
            )
        if labels is None:
            label_tuple = tuple([-1] * points.shape[0])
        else:
            label_tuple = tuple(int(l) for l in np.asarray(labels))

        overflow = max(0, self._store.size + points.shape[0] - self._window)
        evicted = (
            tuple(int(i) for i in self._store.ids()[:overflow])
            if overflow
            else ()
        )

        if self._maintainer is None:
            # Buffering phase: mutate the store directly.
            if evicted:
                self._store.delete(np.asarray(evicted, dtype=np.int64))
            self._store.insert(points, label_tuple)
            self._maybe_bootstrap()
            return None

        batch = UpdateBatch(
            deletions=evicted,
            insertions=points,
            insertion_labels=label_tuple,
        )
        return self._maintainer.apply_batch(batch)

    def _maybe_bootstrap(self) -> None:
        if self._store.size < 2 * self._points_per_bubble:
            return
        num_bubbles = max(
            2, self._store.size // self._points_per_bubble
        )
        builder = BubbleBuilder(
            BubbleConfig(num_bubbles=num_bubbles, seed=self._seed),
            counter=self._counter,
        )
        bubbles = builder.build(self._store)
        self._maintainer = AdaptiveMaintainer(
            bubbles,
            self._store,
            points_per_bubble=self._points_per_bubble,
            config=self._config,
            counter=self._counter,
        )
