"""Deterministic multi-process execution of assignment blocks.

:meth:`TriangleInequalityAssigner.assign_many
<repro.core.assignment.TriangleInequalityAssigner.assign_many>` with
``workers >= 1`` splits its input into the same blocks the serial
engine uses and runs each block as an independent task. Two properties
make the results reproducible:

* **Per-block RNG substreams.** The parent draws a single 64-bit
  entropy value from its main generator; block ``i`` then runs under
  ``default_rng(SeedSequence(entropy, spawn_key=(i,)))``. A block's
  stream depends only on the entropy and its position in the partition
  — never on which worker ran it or in what order — so results are
  bit-identical for every ``workers >= 1`` value. Worker count changes
  wall-clock, nothing else.
* **Ordered merge.** Results are collected and merged in block order,
  so the output array is independent of completion order.

Workers are forked processes (copy-on-write: the seed matrix, the
spatial index and the input block views are shared with the parent at
no serialization cost; only the per-block result tuples travel back).
Platforms without ``fork`` (Windows, some macOS configurations) and
``workers == 1`` run the same per-block tasks inline in the parent —
identical results, no pool. A pool that fails to start or breaks
mid-run falls back to the inline path the same way.

Caveat: forking a process that is concurrently running threads (e.g. a
service flusher pool) inherits locks in whatever state they were in.
The service layer therefore defaults to ``assign_workers = 0`` and the
benchmarks pin BLAS/OpenMP thread pools to one thread before measuring.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import numpy as np

__all__ = ["block_rng", "fork_available", "run_blocks"]

#: Pre-fork task state: ``(task, points, blocks, entropy)``. Module
#: global so forked children reach it through copy-on-write memory
#: instead of pickling the assigner and the full point matrix.
_TASK_STATE: tuple | None = None


def block_rng(entropy: int, index: int) -> np.random.Generator:
    """The dedicated generator for block ``index`` of one parallel call.

    Spawn-key derivation gives every block a statistically independent
    stream that is a pure function of ``(entropy, index)`` — the
    documented determinism contract for ``workers >= 1``.
    """
    seq = np.random.SeedSequence(entropy, spawn_key=(index,))
    return np.random.default_rng(seq)


def fork_available() -> bool:
    """Whether fork-based worker pools can be used on this platform."""
    if not hasattr(os, "fork"):
        return False
    try:
        get_context("fork")
    except ValueError:  # pragma: no cover - platform dependent
        return False
    return True


def _run_block(index: int):
    """Worker entry point: run one block against the forked state."""
    task, points, blocks, entropy = _TASK_STATE
    start, stop = blocks[index]
    return task(points[start:stop], block_rng(entropy, index))


def run_blocks(
    task,
    points: np.ndarray,
    blocks: list[tuple[int, int]],
    entropy: int,
    workers: int,
) -> list:
    """Run ``task(points[start:stop], rng)`` for every block, in order.

    Args:
        task: pure per-block callable ``(block_points, rng) -> result``;
            must not mutate shared state it expects the parent to see
            (forked children write to private copies).
        points: the full ``(m, d)`` input matrix.
        blocks: ``(start, stop)`` partition of ``range(m)``.
        entropy: the single 64-bit draw that seeds every block stream.
        workers: pool size; ``<= 1`` (or one block, or no fork support)
            runs inline in the parent.

    Returns:
        The per-block results in block order — identical for every
        ``workers`` value by the substream contract above.
    """
    count = len(blocks)
    if count == 0:
        return []

    def inline() -> list:
        return [
            task(points[start:stop], block_rng(entropy, i))
            for i, (start, stop) in enumerate(blocks)
        ]

    if workers <= 1 or count == 1 or not fork_available():
        return inline()
    global _TASK_STATE
    _TASK_STATE = (task, points, blocks, entropy)
    try:
        with ProcessPoolExecutor(
            max_workers=min(int(workers), count),
            mp_context=get_context("fork"),
        ) as pool:
            return list(pool.map(_run_block, range(count)))
    except (OSError, RuntimeError):
        # Pool start-up or transport failure (BrokenProcessPool is a
        # RuntimeError). The inline rerun produces identical results;
        # genuine task errors re-raise from it unchanged.
        return inline()
    finally:
        _TASK_STATE = None
