"""A set of data bubbles summarizing one database.

:class:`BubbleSet` is the unit the rest of the system works with: the
builder produces one, the maintainers mutate one in place, and the
bubble-aware OPTICS consumes one. It owns the id space of its bubbles
(dense indices ``0 .. B-1``) and offers the vectorised views (representative
matrix, β vector) that the quality machinery and the clustering need.

The number of bubbles is fixed over the lifetime of the set — the paper
maintains "a given number of data bubbles" and recycles under-filled ones
instead of allocating new ones (Section 4.2); growing/shrinking the set is
listed as future work. :meth:`add_bubble` exists for that extension but is
not used by the paper's scheme.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..exceptions import DimensionMismatchError
from ..types import BubbleId
from .bubble import DataBubble

__all__ = ["BubbleSet"]


class BubbleSet:
    """Container of :class:`DataBubble` objects with dense stable ids.

    The set tracks a monotonic :attr:`version` counter, bumped by every
    mutation of any member bubble (absorb/release/reseed/clear/restore)
    and by :meth:`add_bubble`. Batch consumers — most importantly the
    :class:`~repro.core.assignment.AssignerCache` — key on it to reuse
    derived state (representative matrices, seed-to-seed distance
    matrices, and the optional spatial
    :class:`~repro.core.seed_index.SeedIndex` hanging off the cached
    assigner) for exactly as long as it is actually valid: any mutation
    bumps the version, which invalidates the cached assigner and with
    it every derived index, all rebuilt lazily on next use.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self._dim = int(dim)
        self._bubbles: list[DataBubble] = []
        self._version = 0
        self._reps_cache: np.ndarray | None = None
        self._dirty_reps: set[int] = set()
        self._touched_log: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_bubble(self, seed: np.ndarray) -> DataBubble:
        """Create a new empty bubble at ``seed`` and return it."""
        seed = np.asarray(seed, dtype=np.float64)
        if seed.shape != (self._dim,):
            raise DimensionMismatchError(
                f"seed shape {seed.shape} does not match dim {self._dim}"
            )
        bubble = DataBubble(bubble_id=len(self._bubbles), seed=seed)
        bubble._on_mutate = self._note_mutation
        self._bubbles.append(bubble)
        self._note_mutation(bubble.bubble_id)
        return bubble

    def _note_mutation(self, bubble_id: BubbleId) -> None:
        self._version += 1
        self._dirty_reps.add(int(bubble_id))
        self._touched_log[int(bubble_id)] = self._version

    @property
    def version(self) -> int:
        """Monotonic mutation counter covering every member bubble."""
        return self._version

    def touched_since(self, version: int) -> set[int]:
        """Ids of bubbles mutated after ``version`` was current.

        The set keeps one last-mutated version per bubble (bounded by the
        bubble count), so incremental consumers — most importantly the
        clustering :class:`~repro.clustering.incremental.ClusterCache` —
        can turn "the version moved from v to v'" into the exact set of
        rows/columns to repair instead of a full invalidation. Asking
        about a version from before this set existed degrades safely:
        every bubble ever mutated is reported.
        """
        return {
            bubble_id
            for bubble_id, mutated_at in self._touched_log.items()
            if mutated_at > version
        }

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Dimensionality of the summarized points."""
        return self._dim

    def __len__(self) -> int:
        return len(self._bubbles)

    def __iter__(self) -> Iterator[DataBubble]:
        return iter(self._bubbles)

    def __getitem__(self, bubble_id: BubbleId) -> DataBubble:
        return self._bubbles[bubble_id]

    def get(self, bubble_id: BubbleId) -> DataBubble:
        """The bubble with the given id (synonym for indexing)."""
        return self._bubbles[bubble_id]

    @property
    def total_points(self) -> int:
        """Total number of points summarized across all bubbles."""
        return sum(bubble.n for bubble in self._bubbles)

    def counts(self) -> np.ndarray:
        """Per-bubble point counts ``n_i`` in id order."""
        return np.fromiter(
            (bubble.n for bubble in self._bubbles),
            dtype=np.int64,
            count=len(self._bubbles),
        )

    def betas(self, database_size: int | None = None) -> np.ndarray:
        """Data summarization indices ``β_i = n_i / N`` (Definition 2).

        Args:
            database_size: the ``N`` to normalise by. Defaults to the total
                number of summarized points, which equals the database size
                whenever every point is assigned to some bubble.
        """
        counts = self.counts().astype(np.float64)
        n_total = (
            float(database_size)
            if database_size is not None
            else float(counts.sum())
        )
        if n_total <= 0:
            return np.zeros_like(counts)
        return counts / n_total

    def reps(self) -> np.ndarray:
        """``(B, d)`` matrix of representatives, in id order.

        Empty bubbles contribute their seed (see
        :attr:`~repro.core.bubble.DataBubble.rep`).

        The matrix is cached and refreshed incrementally: only rows whose
        bubbles mutated since the last call are recomputed, so a batch
        that touched ``k`` of ``B`` bubbles pays O(k·d), not O(B·d). The
        returned array is a **read-only view** of the cache — consumers
        that need to mutate or outlive it must copy (the assigners copy
        their locations defensively on construction).
        """
        num = len(self._bubbles)
        cache = self._reps_cache
        if cache is None or cache.shape[0] != num:
            cache = np.empty((num, self._dim), dtype=np.float64)
            for i, bubble in enumerate(self._bubbles):
                cache[i] = bubble.rep
            self._reps_cache = cache
            self._dirty_reps.clear()
        elif self._dirty_reps:
            for i in self._dirty_reps:
                cache[i] = self._bubbles[i].rep
            self._dirty_reps.clear()
        view = cache.view()
        view.flags.writeable = False
        return view

    def seeds(self) -> np.ndarray:
        """``(B, d)`` matrix of assignment seeds, in id order."""
        matrix = np.empty((len(self._bubbles), self._dim), dtype=np.float64)
        for i, bubble in enumerate(self._bubbles):
            matrix[i] = bubble.seed
        return matrix

    def extents(self) -> np.ndarray:
        """Per-bubble extents in id order."""
        return np.fromiter(
            (bubble.extent for bubble in self._bubbles),
            dtype=np.float64,
            count=len(self._bubbles),
        )

    def non_empty_ids(self) -> list[BubbleId]:
        """Ids of bubbles that currently summarize at least one point."""
        return [b.bubble_id for b in self._bubbles if not b.is_empty()]

    def membership_invariant_ok(self, database_size: int) -> bool:
        """Check that bubble memberships partition the database.

        True iff the member sets are pairwise disjoint and cover exactly
        ``database_size`` points. Used by tests and by defensive assertions
        in the maintainers.
        """
        seen: set[int] = set()
        total = 0
        for bubble in self._bubbles:
            members = bubble.members
            total += len(members)
            before = len(seen)
            seen |= members
            if len(seen) != before + len(members):
                return False
        return total == database_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BubbleSet(dim={self._dim}, bubbles={len(self._bubbles)}, "
            f"points={self.total_points})"
        )
