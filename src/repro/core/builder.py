"""Static construction of data bubbles (Section 3).

The construction method of Breunig et al. 2001 that the paper speeds up:

1. retrieve randomly ``s`` points from the database as *seeds*;
2. scan the database and assign each point to the closest seed.

Step 2 uses one of the assigners of :mod:`repro.core.assignment`; with the
triangle-inequality assigner this *is* the accelerated construction of
Section 3. The builder also wires the resulting ownership into the
:class:`~repro.database.PointStore`, which is what later makes deletions
O(1) for the incremental maintainer.

This same code path doubles as the **complete rebuild** baseline of the
evaluation: rebuilding from scratch after a batch is exactly a fresh
:meth:`BubbleBuilder.build` over the current database.
"""

from __future__ import annotations

import time

import numpy as np

from ..database import PointStore
from ..exceptions import InvalidConfigError
from ..geometry import DistanceCounter
from ..observability import Observability
from .assignment import make_assigner
from .bubble_set import BubbleSet
from .config import BubbleConfig

__all__ = ["BubbleBuilder"]


class BubbleBuilder:
    """Builds a :class:`BubbleSet` from the current content of a store.

    Args:
        config: construction parameters (number of bubbles, pruning on/off,
            RNG seed).
        counter: optional shared :class:`DistanceCounter`; all distance
            computations of the construction are accounted there.
        obs: optional observability sink; when given, the assignment scan
            is timed into the same ``repro_assignment_*`` metrics the
            incremental maintainer records, so construction and
            maintenance costs are comparable on one dashboard.

    Example:
        >>> store = PointStore(dim=2)
        >>> _ = store.insert(np.random.default_rng(0).normal(size=(100, 2)))
        >>> builder = BubbleBuilder(BubbleConfig(num_bubbles=5, seed=0))
        >>> bubbles = builder.build(store)
        >>> len(bubbles), bubbles.total_points
        (5, 100)
    """

    def __init__(
        self,
        config: BubbleConfig,
        counter: DistanceCounter | None = None,
        obs: Observability | None = None,
    ) -> None:
        self._config = config
        self._counter = counter if counter is not None else DistanceCounter()
        self._rng = np.random.default_rng(config.seed)
        self._obs = obs

    @property
    def counter(self) -> DistanceCounter:
        """The distance counter receiving construction costs."""
        return self._counter

    @property
    def last_pruned_fraction(self) -> float:
        """Assignment-phase pruning fraction of the most recent build."""
        return self._last_pruned_fraction

    _last_pruned_fraction: float = 0.0

    def build(self, store: PointStore) -> BubbleSet:
        """Summarize the store's current points into fresh data bubbles.

        Every alive point is assigned to its closest seed; the store's
        ownership records are rewritten accordingly.

        Raises:
            InvalidConfigError: if the database holds fewer points than the
                requested number of bubbles (a seed sample without
                replacement is then impossible).
        """
        ids, points, _ = store.snapshot()
        num_points = points.shape[0]
        num_bubbles = self._config.num_bubbles
        if num_points < num_bubbles:
            raise InvalidConfigError(
                f"cannot sample {num_bubbles} seeds from {num_points} points"
            )

        # Step 1: random seed sample, without replacement.
        seed_rows = self._rng.choice(num_points, size=num_bubbles, replace=False)
        seeds = points[seed_rows]

        bubbles = BubbleSet(dim=store.dim)
        for seed in seeds:
            bubbles.add_bubble(seed)

        # Step 2: scan the database, assigning each point to its closest
        # seed (triangle-inequality pruned when configured).
        assigner = make_assigner(
            seeds,
            counter=self._counter,
            use_triangle_inequality=self._config.use_triangle_inequality,
            rng=self._rng,
            use_seed_index=self._config.use_seed_index,
            workers=self._config.assign_workers,
        )
        assignment = self._timed_assign(assigner, points)
        self._last_pruned_fraction = assigner.pruned_fraction

        store.clear_owners()
        for bubble_id in range(num_bubbles):
            mask = assignment == bubble_id
            if not mask.any():
                continue
            member_ids = ids[mask]
            bubbles[bubble_id].absorb_many(member_ids, points[mask])
        store.set_owners(ids, assignment)
        return bubbles

    def _timed_assign(self, assigner, points: np.ndarray) -> np.ndarray:
        """Run the assignment scan, timing it when observability is wired.

        Metric names deliberately match the incremental maintainer's, so a
        complete-rebuild baseline and the incremental scheme report into
        the same series (the registry get-or-creates by name + labels).
        """
        if self._obs is None:
            return assigner.assign_many(points)
        metrics = self._obs.metrics
        started = time.perf_counter()
        assignment = assigner.assign_many(points)
        metrics.timer(
            "repro_assignment_seconds",
            help="Latency of the point-to-seed assignment phase per "
            "batch.",
        ).observe(time.perf_counter() - started)
        metrics.counter(
            "repro_assignment_points_total",
            help="Points run through nearest-seed assignment.",
            unit="points",
        ).inc(points.shape[0])
        metrics.histogram(
            "repro_assignment_batch_points",
            help="Points per batch run through the vectorized "
            "assignment engine.",
            unit="points",
            buckets=(1, 8, 64, 256, 1024, 4096, 16384, 65536),
        ).observe(points.shape[0])
        return assignment
