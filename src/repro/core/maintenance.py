"""Incremental maintenance of a data-bubble summary (Section 4, Figure 3).

:class:`IncrementalMaintainer` owns a :class:`~repro.core.bubble_set.BubbleSet`
and keeps it synchronized with a dynamic :class:`~repro.database.PointStore`
across batches of updates:

1. **Deletions** decrement the sufficient statistics of each deleted
   point's owning bubble — ``(n, LS, SS) → (n-1, LS-p, SS-p·p)`` — an O(d)
   update per point with *zero* distance computations (ownership is looked
   up, not searched).
2. **Insertions** assign each new point to its closest bubble
   (triangle-inequality pruned) and increment that bubble's statistics.
3. **Quality control**: the configured quality measure (β by default)
   classifies all bubbles; every over-filled bubble is rebuilt by a
   synchronized merge/split with a donor — an under-filled bubble when one
   exists, otherwise the lowest-quality good bubble (Section 4.2).

Every batch returns a :class:`BatchReport` carrying the bookkeeping the
experiments need: how many bubbles were rebuilt (Figure 9), how many
distance computations were spent and pruned (Figures 10–11).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..database import PointStore, UpdateBatch
from ..exceptions import InvalidPointError, UnknownPointError
from ..geometry import DistanceCounter
from ..observability import Observability
from ..observability.spans import maybe_span
from ..types import BubbleId
from .assignment import Assigner, AssignerCache
from .bubble_set import BubbleSet
from .config import DonorPolicy, MaintenanceConfig
from .quality import BetaQuality, BubbleClass, QualityMeasure, QualityReport
from .split_merge import RebuildOutcome, rebuild_pair

__all__ = ["IncrementalMaintainer", "BatchReport"]


@dataclass(frozen=True)
class BatchReport:
    """What one :meth:`IncrementalMaintainer.apply_batch` call did.

    Attributes:
        num_deletions: points removed from the database in this batch.
        num_insertions: points added to the database in this batch.
        num_over_filled: over-filled bubbles found in the *first*
            classification pass (before any rebuilds).
        num_under_filled: under-filled bubbles found in the first pass.
        rebuilt_bubbles: ids of all bubbles touched by merge/split this
            batch (donors and split bubbles alike) — the numerator of
            Figure 9's rebuilt-percentage.
        rounds_run: classification → merge/split passes executed.
        computed_distances: distance computations spent by this batch.
        pruned_distances: distance computations avoided by Lemma 1.
        insertion_pruned_fraction: pruning rate of the insertion
            assignments only (the Figure 10 quantity).
    """

    num_deletions: int
    num_insertions: int
    num_over_filled: int
    num_under_filled: int
    rebuilt_bubbles: tuple[BubbleId, ...]
    rounds_run: int
    computed_distances: int
    pruned_distances: int
    insertion_pruned_fraction: float

    @property
    def num_rebuilt(self) -> int:
        """How many distinct bubbles were rebuilt."""
        return len(self.rebuilt_bubbles)

    @property
    def pruned_fraction(self) -> float:
        """Overall fraction of distance computations avoided this batch."""
        considered = self.computed_distances + self.pruned_distances
        if considered == 0:
            return 0.0
        return self.pruned_distances / considered


class IncrementalMaintainer:
    """Keeps a bubble summary in sync with a dynamic database.

    Args:
        bubbles: the summary to maintain (typically fresh from
            :class:`~repro.core.builder.BubbleBuilder`).
        store: the database the summary describes. Ownership records in the
            store must already match ``bubbles`` (the builder guarantees
            this).
        config: maintenance parameters (Chebyshev probability, donor
            policy, split strategy, pruning, rebuild rounds).
        quality: quality-measure strategy; defaults to the paper's β
            measure at ``config.probability``. Pass
            :class:`~repro.core.extent_quality.ExtentQuality` to reproduce
            the failing baseline of Figure 7.
        counter: shared distance counter; a private one is created when
            omitted.
        obs: observability handle receiving maintenance metrics and
            events; ``None`` (the default) disables instrumentation — the
            hot paths then pay nothing.
    """

    def __init__(
        self,
        bubbles: BubbleSet,
        store: PointStore,
        config: MaintenanceConfig | None = None,
        quality: QualityMeasure | None = None,
        counter: DistanceCounter | None = None,
        obs: Observability | None = None,
    ) -> None:
        self._bubbles = bubbles
        self._store = store
        self._config = config if config is not None else MaintenanceConfig()
        self._quality = (
            quality
            if quality is not None
            else BetaQuality(self._config.probability)
        )
        self._counter = counter if counter is not None else DistanceCounter()
        self._rng = np.random.default_rng(self._config.seed)
        self._assigner_cache = AssignerCache()
        self._batch_callbacks: list[
            Callable[[UpdateBatch, BatchReport], None]
        ] = []
        self._obs = obs
        self._prev_classes: tuple[BubbleClass, ...] | None = None
        self._last_report: QualityReport | None = None
        if obs is not None:
            self._create_metric_handles(obs)

    def _create_metric_handles(self, obs: Observability) -> None:
        m = obs.metrics
        self._m_batches = m.counter(
            "repro_maintenance_batches_total",
            help="Update batches applied by the maintainer.",
        )
        self._m_batch_seconds = m.timer(
            "repro_maintenance_batch_seconds",
            help="End-to-end latency of one maintenance batch.",
        )
        self._m_deletions = m.counter(
            "repro_maintenance_deletions_total",
            help="Points deleted through the maintainer.",
            unit="points",
        )
        self._m_insertions = m.counter(
            "repro_maintenance_insertions_total",
            help="Points inserted through the maintainer.",
            unit="points",
        )
        self._m_rounds = m.counter(
            "repro_maintenance_rebuild_rounds_total",
            help="Classification + merge/split rounds executed "
            "(Section 4.2).",
        )
        self._m_splits = m.counter(
            "repro_maintenance_bubble_splits_total",
            help="Synchronized merge/split rebuilds (Figure 6 units; "
            "the Figure 9 numerator).",
        )
        self._m_migrations = m.counter(
            "repro_maintenance_donor_migrations_total",
            help="Donor bubbles emptied and migrated to a split site.",
        )
        self._m_points_migrated = m.counter(
            "repro_maintenance_points_migrated_total",
            help="Points re-homed by donor merges.",
            unit="points",
        )
        self._m_points_redistributed = m.counter(
            "repro_maintenance_points_redistributed_total",
            help="Points redistributed between new seeds by splits.",
            unit="points",
        )
        self._m_class_changes = m.counter(
            "repro_maintenance_class_changes_total",
            help="Per-bubble quality-class transitions between "
            "consecutive batches (Definitions 2-3).",
        )
        self._m_over_filled = m.gauge(
            "repro_maintenance_over_filled_bubbles",
            help="Over-filled bubbles at the last classification.",
        )
        self._m_under_filled = m.gauge(
            "repro_maintenance_under_filled_bubbles",
            help="Under-filled bubbles at the last classification.",
        )
        self._m_distance_computed = m.counter(
            "repro_distance_computed_total",
            help="Distance computations executed (DistanceCounter; "
            "Figures 10-11).",
        )
        self._m_distance_pruned = m.counter(
            "repro_distance_pruned_total",
            help="Distance computations avoided via Lemma 1 "
            "(DistanceCounter; Figures 10-11).",
        )
        self._m_assignment_points = m.counter(
            "repro_assignment_points_total",
            help="Points run through nearest-seed assignment.",
            unit="points",
        )
        self._m_assignment_seconds = m.timer(
            "repro_assignment_seconds",
            help="Latency of the point-to-seed assignment phase per "
            "batch.",
        )
        self._m_assignment_batch_points = m.histogram(
            "repro_assignment_batch_points",
            help="Points per batch run through the vectorized "
            "assignment engine.",
            unit="points",
            buckets=(1, 8, 64, 256, 1024, 4096, 16384, 65536),
        )
        self._m_assigner_cache_hits = m.counter(
            "repro_assigner_cache_hits_total",
            help="Batch assignments served by a cached assigner "
            "(seed matrix reused; bubble set unchanged).",
        )
        self._m_assigner_cache_misses = m.counter(
            "repro_assigner_cache_misses_total",
            help="Batch assignments that had to (re)build the assigner "
            "because the bubble set mutated.",
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def bubbles(self) -> BubbleSet:
        """The maintained summary."""
        return self._bubbles

    @property
    def store(self) -> PointStore:
        """The underlying database."""
        return self._store

    @property
    def counter(self) -> DistanceCounter:
        """The distance counter accumulating this maintainer's costs."""
        return self._counter

    @property
    def config(self) -> MaintenanceConfig:
        """The maintenance parameters in force."""
        return self._config

    @property
    def obs(self) -> Observability | None:
        """The observability handle, or ``None`` when uninstrumented."""
        return self._obs

    @property
    def assigner_cache(self) -> AssignerCache:
        """The cache serving this maintainer's batch assigners."""
        return self._assigner_cache

    def classify(self) -> QualityReport:
        """Classify the current bubbles without performing any rebuilds."""
        return self._quality.classify(self._bubbles, self._store.size)

    @property
    def last_quality_report(self) -> QualityReport | None:
        """The final classification of the last batch's repair loop.

        ``None`` before the first batch. The telemetry gauges read this
        instead of re-classifying every window; it can trail the live
        state by one adaptive steering step, which is fine for trend
        monitoring (and costs nothing).
        """
        return self._last_report

    # ------------------------------------------------------------------
    # Durability hooks
    # ------------------------------------------------------------------
    def add_batch_callback(
        self, callback: Callable[[UpdateBatch, BatchReport], None]
    ) -> None:
        """Register ``callback(batch, report)`` to run after each batch.

        Callbacks fire once the batch is *fully* applied — after quality
        repair and any subclass post-processing (e.g. the adaptive count
        steering) — which is the point where the summary is consistent and
        safe to checkpoint. The persistence layer's checkpoint manager
        subscribes here.
        """
        self._batch_callbacks.append(callback)

    def remove_batch_callback(
        self, callback: Callable[[UpdateBatch, BatchReport], None]
    ) -> None:
        """Unregister a callback added with :meth:`add_batch_callback`."""
        self._batch_callbacks.remove(callback)

    @property
    def rng_state(self) -> dict:
        """The maintenance RNG's bit-generator state (JSON-serializable).

        Capturing and restoring this is what makes WAL replay reproduce an
        uninterrupted run bit-for-bit: every random choice (candidate
        probing order, split-seed selection) resumes exactly where the
        crashed process left off.
        """
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    # ------------------------------------------------------------------
    # The scheme of Figure 3
    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch) -> BatchReport:
        """Apply one batch of deletions + insertions and repair quality.

        Raises:
            InvalidPointError: the batch is malformed (NaN/Inf insertion
                coordinates, a dimension mismatch, or duplicate deletion
                ids) — applying it would silently corrupt the summary.
        """
        self._guard_batch(batch)
        if self._obs is None:
            report = self._apply_batch_inner(batch)
        else:
            before = self._counter.snapshot()
            started = time.perf_counter()
            with maybe_span(
                self._obs,
                "apply_batch",
                deletions=batch.num_deletions,
                insertions=batch.num_insertions,
            ):
                report = self._apply_batch_inner(batch)
            elapsed = time.perf_counter() - started
            # The counter delta — not the report's fields — feeds the
            # registry: subclass work after the inner report is cut (the
            # adaptive count steering) spends distances too, and the
            # registry must stay in lockstep with the DistanceCounter.
            delta = self._counter.snapshot() - before
            self._record_batch(report, delta.computed, delta.pruned, elapsed)
        for callback in self._batch_callbacks:
            callback(batch, report)
        return report

    def _guard_batch(self, batch: UpdateBatch) -> None:
        """Last line of defense against malformed updates.

        Streaming front-ends screen input under a configurable policy
        (:func:`~repro.core.validate.screen_chunk`); anything reaching
        the maintainer is applied verbatim, so here malformed data is
        always a hard error. A poisoned insertion would propagate through
        ``(n, LS, SS)`` forever; a duplicated deletion would subtract a
        point's statistics twice.
        """
        if batch.num_insertions:
            ins = batch.insertions
            if ins.ndim != 2 or ins.shape[1] != self._store.dim:
                raise InvalidPointError(
                    f"batch insertions have shape {ins.shape}, expected "
                    f"(m, {self._store.dim})"
                )
            if not np.isfinite(ins).all():
                bad = np.flatnonzero(
                    ~np.isfinite(ins).all(axis=1)
                )[:5].tolist()
                raise InvalidPointError(
                    f"batch insertions carry NaN/Inf coordinates "
                    f"(rows {bad})"
                )
        if batch.deletions and len(set(batch.deletions)) != len(
            batch.deletions
        ):
            raise InvalidPointError(
                "batch deletions contain duplicate point ids; applying "
                "them would decrement a bubble's statistics twice"
            )

    def _record_batch(
        self,
        report: BatchReport,
        computed: int,
        pruned: int,
        elapsed: float,
    ) -> None:
        self._m_batches.inc()
        self._m_batch_seconds.observe(elapsed)
        self._m_deletions.inc(report.num_deletions)
        self._m_insertions.inc(report.num_insertions)
        self._m_rounds.inc(report.rounds_run)
        self._m_distance_computed.inc(computed)
        self._m_distance_pruned.inc(pruned)
        self._m_over_filled.set(report.num_over_filled)
        self._m_under_filled.set(report.num_under_filled)

    def _apply_batch_inner(self, batch: UpdateBatch) -> BatchReport:
        """The batch application itself (subclasses extend this, not
        :meth:`apply_batch`, so callbacks always see a finished batch)."""
        before = self._counter.snapshot()

        self._apply_deletions(batch)
        insertion_pruned = self._apply_insertions(batch)

        first_report: QualityReport | None = None
        rebuilt: list[BubbleId] = []
        rounds = 0
        for _ in range(self._config.rebuild_rounds):
            with maybe_span(
                self._obs, "classify", bubbles=len(self._bubbles)
            ):
                report = self._quality.classify(
                    self._bubbles, self._store.size
                )
            self._last_report = report
            if first_report is None:
                first_report = report
            over_ids = report.over_filled_ids
            if not over_ids:
                break
            rounds += 1
            rebuilt.extend(self._rebuild_over_filled(report))

        if first_report is None:  # rebuild_rounds >= 1, so never taken
            first_report = self._quality.classify(
                self._bubbles, self._store.size
            )

        if self._obs is not None:
            self._record_classification(first_report)

        delta = self._counter.snapshot() - before
        return BatchReport(
            num_deletions=batch.num_deletions,
            num_insertions=batch.num_insertions,
            num_over_filled=len(first_report.over_filled_ids),
            num_under_filled=len(first_report.under_filled_ids),
            rebuilt_bubbles=tuple(sorted(set(rebuilt))),
            rounds_run=rounds,
            computed_distances=delta.computed,
            pruned_distances=delta.pruned,
            insertion_pruned_fraction=insertion_pruned,
        )

    def _record_classification(self, report: QualityReport) -> None:
        """Emit one ``class_change`` event per bubble whose Definition 3
        class differs from the previous batch's classification."""
        previous = self._prev_classes
        self._prev_classes = report.classes
        if previous is None:
            return
        for bubble_id, now in enumerate(report.classes):
            was = (
                previous[bubble_id] if bubble_id < len(previous) else None
            )
            if was is now:
                continue
            self._m_class_changes.inc()
            self._obs.emit(
                "class_change",
                bubble=bubble_id,
                was="new" if was is None else was.value,
                now=now.value,
            )

    # ------------------------------------------------------------------
    # Step 1: deletions
    # ------------------------------------------------------------------
    def _apply_deletions(self, batch: UpdateBatch) -> None:
        if not batch.deletions:
            return
        with maybe_span(
            self._obs, "maintain_delete", points=len(batch.deletions)
        ):
            self._apply_deletions_inner(batch)

    def _apply_deletions_inner(self, batch: UpdateBatch) -> None:
        ids = np.asarray(batch.deletions, dtype=np.int64)

        def owner_of(point_id: int) -> int:
            owner = self._store.owner(point_id)
            if owner is None:
                raise UnknownPointError(
                    f"point {point_id} is not summarized by any bubble; "
                    "points must be inserted through the maintainer (or "
                    "assigned by the builder) before they can be deleted"
                )
            return owner

        owners = np.fromiter(
            (owner_of(int(i)) for i in ids),
            dtype=np.int64,
            count=ids.size,
        )
        points = self._store.points_of(ids)
        for owner_id in np.unique(owners):
            mask = owners == owner_id
            self._bubbles[int(owner_id)].release_many(ids[mask], points[mask])
        self._store.delete(ids)

    # ------------------------------------------------------------------
    # Step 2: insertions
    # ------------------------------------------------------------------
    def _apply_insertions(self, batch: UpdateBatch) -> float:
        if batch.num_insertions == 0:
            return 0.0
        with maybe_span(
            self._obs, "maintain_insert", points=batch.num_insertions
        ):
            return self._apply_insertions_inner(batch)

    def _apply_insertions_inner(self, batch: UpdateBatch) -> float:
        new_ids = np.asarray(
            self._store.insert(batch.insertions, batch.insertion_labels),
            dtype=np.int64,
        )
        points = batch.insertions
        active = self._assignable_ids()
        assigner = self._batch_assigner(active)
        pruned_before = assigner.assign_pruned
        computed_before = assigner.assign_computed
        assignment = self._timed_assign(assigner, points)
        if active is not None:
            assignment = np.asarray(active, dtype=np.int64)[assignment]
        for bubble_id in np.unique(assignment):
            mask = assignment == bubble_id
            self._bubbles[int(bubble_id)].absorb_many(
                new_ids[mask], points[mask]
            )
        self._store.set_owners(new_ids, assignment)
        # Per-batch fraction from the assigner's counter deltas, not its
        # lifetime totals — the cached assigner may outlive this batch.
        computed = assigner.assign_computed - computed_before
        pruned = assigner.assign_pruned - pruned_before
        considered = computed + pruned
        return pruned / considered if considered else 0.0

    def _batch_assigner(
        self, active_ids: list[BubbleId] | None
    ) -> Assigner:
        """The batch assignment engine for the current bubble set.

        Served from :class:`~repro.core.assignment.AssignerCache`, so the
        seed-to-seed matrix is rebuilt only when the bubble set actually
        mutated since the last assignment.
        """
        hits = self._assigner_cache.hits
        assigner = self._assigner_cache.get(
            self._bubbles,
            counter=self._counter,
            use_triangle_inequality=self._config.use_triangle_inequality,
            rng=self._rng,
            active_ids=active_ids,
            obs=self._obs,
            use_seed_index=self._config.use_seed_index,
            workers=self._config.assign_workers,
        )
        if self._obs is not None:
            if self._assigner_cache.hits > hits:
                self._m_assigner_cache_hits.inc()
            else:
                self._m_assigner_cache_misses.inc()
        return assigner

    def _assignable_ids(self) -> list[BubbleId] | None:
        """Bubble ids insertions may be assigned to; ``None`` means all
        (hook for subclasses — the adaptive maintainer excludes retired
        bubbles)."""
        return None

    def _timed_assign(
        self, assigner, points: np.ndarray
    ) -> np.ndarray:
        """Run ``assign_many`` with batch-granular timing (two monotonic
        reads per batch — the vectorized kernel itself is untouched)."""
        if self._obs is None:
            return assigner.assign_many(points)
        started = time.perf_counter()
        assignment = assigner.assign_many(points)
        self._m_assignment_seconds.observe(time.perf_counter() - started)
        self._m_assignment_points.inc(points.shape[0])
        self._m_assignment_batch_points.observe(points.shape[0])
        return assignment

    # ------------------------------------------------------------------
    # Step 3: quality repair (Section 4.2)
    # ------------------------------------------------------------------
    def _rebuild_over_filled(self, report: QualityReport) -> list[BubbleId]:
        """Split every over-filled bubble, worst (highest value) first."""
        over_ids = sorted(
            report.over_filled_ids,
            key=lambda i: report.values[i],
            reverse=True,
        )
        donors = self._donor_queue(report)
        rebuilt: list[BubbleId] = []
        for over_id in over_ids:
            donor_id = next(
                (d for d in donors if d != over_id and d not in rebuilt),
                None,
            )
            if donor_id is None:
                break  # donor pool exhausted; remaining splits wait a batch
            donors.remove(donor_id)
            outcome = rebuild_pair(
                self._bubbles,
                self._store,
                over_id=over_id,
                donor_id=donor_id,
                counter=self._counter,
                rng=self._rng,
                strategy=self._config.split_strategy,
                use_triangle_inequality=self._config.use_triangle_inequality,
                merge_exclude=self._merge_exclude(),
                assigner_cache=self._assigner_cache,
                obs=self._obs,
                use_seed_index=self._config.use_seed_index,
                workers=self._config.assign_workers,
            )
            rebuilt.extend((over_id, donor_id))
            if self._obs is not None:
                self._record_rebuild(over_id, donor_id, outcome)
        return rebuilt

    def _record_rebuild(
        self,
        over_id: BubbleId,
        donor_id: BubbleId,
        outcome: RebuildOutcome,
    ) -> None:
        self._m_migrations.inc()
        self._m_points_migrated.inc(outcome.points_migrated)
        self._obs.emit(
            "donor_migration",
            donor=int(donor_id),
            over=int(over_id),
            points_migrated=outcome.points_migrated,
        )
        self._m_splits.inc()
        self._m_points_redistributed.inc(outcome.points_redistributed)
        self._obs.emit(
            "bubble_split",
            over=int(over_id),
            donor=int(donor_id),
            donor_size=outcome.donor_size,
            over_size=outcome.over_size,
        )
        self._obs.emit(
            "seed_redistribution",
            over=int(over_id),
            donor=int(donor_id),
            points=outcome.points_redistributed,
        )

    def _merge_exclude(self) -> frozenset[BubbleId]:
        """Bubble ids merges must never target (hook for subclasses)."""
        return frozenset()

    def _donor_queue(self, report: QualityReport) -> list[BubbleId]:
        """Donor candidates in preference order.

        The paper's policy: under-filled bubbles first (emptiest first, so
        merges move the fewest points), then — only when those run out —
        the lowest-quality good bubbles. The ablation policy ranks all
        non-over-filled bubbles purely by ascending quality value.
        """
        if self._config.donor_policy is DonorPolicy.LOWEST_BETA:
            eligible = [
                i
                for i, cls in enumerate(report.classes)
                if cls is not BubbleClass.OVER_FILLED
            ]
            return sorted(eligible, key=lambda i: report.values[i])
        under = sorted(
            report.under_filled_ids, key=lambda i: report.values[i]
        )
        good = sorted(report.good_ids, key=lambda i: report.values[i])
        return list(under) + list(good)
