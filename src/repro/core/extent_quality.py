"""Extent-based quality baseline (the measure Figure 7 shows failing).

BIRCH-style clustering features implicitly judge a summary by its *spatial
extent* — a radius/diameter threshold around the mean. Section 4.1 argues
that this equalizes the space covered per summary irrespective of point
density, and Section 5 (Figure 7) demonstrates the failure mode: a bubble
that absorbs newly inserted clusters barely changes its extent and is never
flagged, while the paper's β measure flags it immediately.

:class:`ExtentQuality` applies the same Chebyshev outlier rule as
:class:`~repro.core.quality.BetaQuality` but to the bubbles' extents, which
makes the two measures directly comparable inside the same maintenance
machinery:

* extent far *below* the mean (e.g. a bubble emptied by a disappearing
  cluster) → under-filled → eligible for migration;
* extent far *above* the mean → over-filled → split.

This reproduces the Figure 7 behaviour: deletions are detected (extents
collapse), insertions that land inside an existing bubble's region are not
(extent stays put while β explodes).
"""

from __future__ import annotations

from .bubble_set import BubbleSet
from .config import chebyshev_k
from .quality import QualityMeasure, QualityReport, classify_values

__all__ = ["ExtentQuality"]


class ExtentQuality(QualityMeasure):
    """Chebyshev classification over bubble extents instead of β values.

    Args:
        probability: Chebyshev probability delimiting the "good" band.
    """

    def __init__(self, probability: float = 0.9) -> None:
        chebyshev_k(probability)
        self._probability = probability

    @property
    def probability(self) -> float:
        """The Chebyshev probability in force."""
        return self._probability

    def classify(
        self, bubbles: BubbleSet, database_size: int
    ) -> QualityReport:
        del database_size  # the extent measure ignores the database size
        return classify_values(bubbles.extents(), self._probability)
