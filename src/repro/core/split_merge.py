"""Synchronized merge and split of data bubbles (Section 4.2, Figure 6).

The incremental scheme rebuilds a low-quality bubble pair with two
operations that always run together:

**Merge** — the donor bubble (under-filled, or the lowest-β good bubble
when no under-filled one exists) releases its points; each released point
is assigned to its *next closest* bubble (the donor itself excluded). The
donor is then empty and free to migrate.

**Split** — the emptied donor is re-seeded at a point drawn from the
over-filled bubble's members; the over-filled bubble is likewise given a
new seed from its own members; finally all of the over-filled bubble's
points are redistributed between the two new seeds. Triangle-inequality
pruning is used throughout the point assignments, and all distance
computations flow into the shared :class:`~repro.geometry.DistanceCounter`.

These functions mutate the :class:`~repro.core.bubble_set.BubbleSet` and
the :class:`~repro.database.PointStore` in tandem and keep the
membership/ownership invariant intact (every alive point is owned by
exactly one bubble).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..database import PointStore
from ..geometry import DistanceCounter
from ..observability.spans import maybe_span
from ..types import BubbleId
from .assignment import AssignerCache, make_assigner
from .bubble_set import BubbleSet
from .config import SplitStrategy

__all__ = ["RebuildOutcome", "merge_bubble", "split_bubble", "rebuild_pair"]


@dataclass(frozen=True)
class RebuildOutcome:
    """What one synchronized merge + split actually moved.

    Attributes:
        points_migrated: points the donor released to other bubbles
            during the merge.
        donor_size: points the donor holds after the split.
        over_size: points the split (formerly over-filled) bubble holds
            after the split.
    """

    points_migrated: int
    donor_size: int
    over_size: int

    @property
    def points_redistributed(self) -> int:
        """Points reassigned between the two new seeds by the split."""
        return self.donor_size + self.over_size


def merge_bubble(
    bubbles: BubbleSet,
    store: PointStore,
    donor_id: BubbleId,
    counter: DistanceCounter,
    use_triangle_inequality: bool = True,
    rng: np.random.Generator | None = None,
    exclude: frozenset[BubbleId] = frozenset(),
    assigner_cache: AssignerCache | None = None,
    obs=None,
    use_seed_index: bool = False,
    workers: int = 0,
) -> int:
    """Empty the donor bubble, reassigning its points to other bubbles.

    Returns the number of points that were released and re-homed. A donor
    that is already empty is a no-op (common: bubbles drained by deletions).

    Args:
        exclude: bubble ids that must not receive points (used by the
            adaptive maintainer to keep retired bubbles empty).
        assigner_cache: optional shared cache; when given, the assigner
            (and its seed-to-seed matrix) is reused across calls for as
            long as the bubble set and candidate ids stay unchanged.
        obs: observability handle; the merge runs under a
            ``merge_bubble`` span when span tracing is enabled.
        use_seed_index, workers: assignment-engine options (see
            :func:`~repro.core.assignment.make_assigner`); callers pass
            the same values here as on their insertion path so the
            shared cache key stays stable across both.
    """
    donor = bubbles[donor_id]
    if donor.is_empty():
        return 0

    with maybe_span(
        obs, "merge_bubble", donor=int(donor_id), points=donor.n
    ):
        return _merge_bubble_inner(
            bubbles,
            store,
            donor_id,
            counter,
            use_triangle_inequality,
            rng,
            exclude,
            assigner_cache,
            obs,
            use_seed_index,
            workers,
        )


def _merge_bubble_inner(
    bubbles: BubbleSet,
    store: PointStore,
    donor_id: BubbleId,
    counter: DistanceCounter,
    use_triangle_inequality: bool,
    rng: np.random.Generator | None,
    exclude: frozenset[BubbleId],
    assigner_cache: AssignerCache | None,
    obs,
    use_seed_index: bool = False,
    workers: int = 0,
) -> int:
    donor = bubbles[donor_id]
    member_ids = donor.member_ids()
    points = store.points_of(member_ids)
    donor.clear()

    # Candidate targets: every other bubble, compared at its representative.
    other_ids = np.array(
        [
            b.bubble_id
            for b in bubbles
            if b.bubble_id != donor_id and b.bubble_id not in exclude
        ],
        dtype=np.int64,
    )
    if other_ids.size == 0:
        raise ValueError("merge_bubble has no target bubbles left")
    if assigner_cache is not None:
        assigner = assigner_cache.get(
            bubbles,
            counter=counter,
            use_triangle_inequality=use_triangle_inequality,
            rng=rng,
            active_ids=other_ids,
            obs=obs,
            use_seed_index=use_seed_index,
            workers=workers,
        )
    else:
        assigner = make_assigner(
            bubbles.reps()[other_ids],
            counter=counter,
            use_triangle_inequality=use_triangle_inequality,
            rng=rng,
            obs=obs,
            use_seed_index=use_seed_index,
            workers=workers,
        )
    assignment = other_ids[assigner.assign_many(points)]

    for target_id in np.unique(assignment):
        mask = assignment == target_id
        bubbles[int(target_id)].absorb_many(member_ids[mask], points[mask])
    store.set_owners(member_ids, assignment)
    return int(member_ids.size)


def _select_split_seeds(
    points: np.ndarray,
    strategy: SplitStrategy,
    rng: np.random.Generator,
    counter: DistanceCounter,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw the two new seeds ``(s1, s2)`` from the over-filled bubble's points."""
    count = points.shape[0]
    first = int(rng.integers(count))
    if strategy is SplitStrategy.FARTHEST and count > 1:
        dists = counter.point_to_points(points[first], points)
        second = int(np.argmax(dists))
    else:
        second = first
        if count > 1:
            while second == first:
                second = int(rng.integers(count))
    return points[first].copy(), points[second].copy()


def split_bubble(
    bubbles: BubbleSet,
    store: PointStore,
    over_id: BubbleId,
    donor_id: BubbleId,
    counter: DistanceCounter,
    rng: np.random.Generator,
    strategy: SplitStrategy = SplitStrategy.RANDOM,
    obs=None,
) -> tuple[int, int]:
    """Split the over-filled bubble across itself and the (empty) donor.

    Figure 6, lines after the merge: re-seed the donor at a member ``s1`` of
    the over-filled bubble, re-seed the over-filled bubble at another
    member ``s2``, then distribute the over-filled bubble's points between
    ``s1`` and ``s2``.

    Preconditions: the donor has been emptied by :func:`merge_bubble` and
    the over-filled bubble is non-empty.

    Returns the post-split sizes ``(donor_n, over_n)``.
    """
    over = bubbles[over_id]
    donor = bubbles[donor_id]
    if over_id == donor_id:
        raise ValueError("a bubble cannot donate to its own split")
    if not donor.is_empty():
        raise ValueError(
            f"donor bubble {donor_id} must be merged (emptied) before a split"
        )
    if over.is_empty():
        raise ValueError(f"cannot split empty bubble {over_id}")

    with maybe_span(
        obs, "split_bubble", over=int(over_id), donor=int(donor_id)
    ):
        member_ids = over.member_ids()
        points = store.points_of(member_ids)
        seed_one, seed_two = _select_split_seeds(
            points, strategy, rng, counter
        )

        donor.reseed(seed_one)
        over.clear()
        over.reseed(seed_two)

        # Distribute the points between the two new seeds; with two
        # candidates the triangle inequality cannot prune, so compute
        # both distances.
        counter.record_computed(2 * points.shape[0])
        diff_one = points - seed_one
        diff_two = points - seed_two
        to_donor = np.einsum("ij,ij->i", diff_one, diff_one) <= np.einsum(
            "ij,ij->i", diff_two, diff_two
        )

        donor.absorb_many(member_ids[to_donor], points[to_donor])
        over.absorb_many(member_ids[~to_donor], points[~to_donor])
        owners = np.where(to_donor, donor_id, over_id)
        store.set_owners(member_ids, owners)
        return int(to_donor.sum()), int(member_ids.size - to_donor.sum())


def rebuild_pair(
    bubbles: BubbleSet,
    store: PointStore,
    over_id: BubbleId,
    donor_id: BubbleId,
    counter: DistanceCounter,
    rng: np.random.Generator,
    strategy: SplitStrategy = SplitStrategy.RANDOM,
    use_triangle_inequality: bool = True,
    merge_exclude: frozenset[BubbleId] = frozenset(),
    assigner_cache: AssignerCache | None = None,
    obs=None,
    use_seed_index: bool = False,
    workers: int = 0,
) -> RebuildOutcome:
    """One synchronized merge + split: the unit of Figure 6.

    Note the ordering: the donor's merge may re-home some of its points
    *into* the over-filled bubble (they are nearby nobody else), which is
    fine — the subsequent split redistributes them immediately.

    Returns a :class:`RebuildOutcome` describing the migration and the
    post-split sizes (the maintenance event tracer records these).
    """
    with maybe_span(
        obs, "rebuild_pair", over=int(over_id), donor=int(donor_id)
    ):
        moved = merge_bubble(
            bubbles,
            store,
            donor_id,
            counter,
            use_triangle_inequality=use_triangle_inequality,
            rng=rng,
            exclude=merge_exclude,
            assigner_cache=assigner_cache,
            obs=obs,
            use_seed_index=use_seed_index,
            workers=workers,
        )
        donor_n, over_n = split_bubble(
            bubbles,
            store,
            over_id,
            donor_id,
            counter,
            rng,
            strategy=strategy,
            obs=obs,
        )
    return RebuildOutcome(
        points_migrated=moved, donor_size=donor_n, over_size=over_n
    )
