"""Spatial candidate generation for the assignment engine.

The triangle-inequality batch kernel (:mod:`repro.core.assignment`)
probes seeds in a random order and prunes with Lemma 1, but every probe
it cannot prune still costs one exact distance — so assignment cost
grows linearly with the bubble count ``B`` even when most seeds are
hopeless. :class:`SeedIndex` shrinks the per-point *candidate set* from
``O(B)`` to ``O(log B + k)`` by answering, for a block of query points,
two questions per point:

* **membership** — which seeds are among the point's ``k`` spatially
  nearest (a boolean ``(m, B)`` mask), and
* **gate** — a radius ``g`` such that every *non-member* seed is
  provably at exact Euclidean distance ``>= g`` from the point.

The batch kernel may then skip the exact distance to any non-member
probe whose row already holds ``minDist <= g``: the skipped distance is
``>= g >= minDist``, so under the kernel's strict ``<`` update the probe
could never have improved the row. Assignments, tie-breaks, Lemma-1
dynamics and the RNG stream are untouched — the skip only converts
*computed* distances into *pruned* ones, which is the
distance-count-equal-or-better invariant the assigner's parity tests
pin down.

Two backends provide the mask/gate pair:

``kdtree``
    :class:`scipy.spatial.cKDTree` k-nearest-neighbour queries. Used
    when scipy is importable (it is an optional dependency — the
    ``spatial`` extra); the tree's k-th neighbour distance is the gate.

``grid``
    A pure-numpy uniform grid: seeds are binned into cubic cells of
    side ``h``; for a query point the Chebyshev cell distance to every
    seed bounds the true distance from below (two coordinates in cells
    ``R + 1`` apart differ by at least ``R·h`` on that axis), so the
    ``k``-th smallest cell distance yields both the member set and the
    gate. No dependencies beyond numpy; coarser gates than the tree,
    never unsound.

Both gates are multiplied by ``1 - 1e-9`` before use so ulp-level
disagreement between backend arithmetic and the assigner's
:func:`~repro.geometry.distance.row_norms` kernel can never flip a skip
decision the wrong way — the safety margin only makes gates smaller,
i.e. skips rarer, never incorrect.

Indexes are immutable snapshots of one seed matrix. The maintainers
never mutate them in place: a :class:`SeedIndex` hangs off the assigner
cached by :class:`~repro.core.assignment.AssignerCache`, whose key
includes :attr:`BubbleSet.version
<repro.core.bubble_set.BubbleSet.version>` — any bubble mutation
invalidates the assigner and with it the index, which is rebuilt lazily
on the next batch.
"""

from __future__ import annotations

import math

import numpy as np

from ..types import PointMatrix

__all__ = ["SeedIndex", "default_candidate_count", "kdtree_available"]

#: Relative safety margin applied to every gate radius. Backend
#: distance arithmetic (tree internals, grid cell geometry) may differ
#: from the assigner's ``row_norms`` einsum by a few ulps; shrinking the
#: gate by 1e-9 relative absorbs that slack in the conservative
#: direction (fewer skips, never a wrong one).
_GATE_SAFETY = 1.0 - 1e-9

try:  # scipy is optional; the grid backend needs only numpy.
    from scipy.spatial import cKDTree as _cKDTree
except ImportError:  # pragma: no cover - exercised where scipy absent
    _cKDTree = None


def kdtree_available() -> bool:
    """Whether the scipy KD-tree backend can be used in this process."""
    return _cKDTree is not None


def default_candidate_count(num_seeds: int) -> int:
    """Default ``k`` for :class:`SeedIndex` — ``O(log B)`` candidates.

    Small enough that candidate generation stays sublinear in ``B``,
    large enough that the true nearest seed is essentially always a
    member (membership is only an optimisation hint — correctness never
    depends on it, see the module docstring).
    """
    if num_seeds <= 2:
        return num_seeds
    k = int(math.ceil(2.0 * math.log2(num_seeds))) + 2
    return min(num_seeds, max(4, k))


class SeedIndex:
    """k-NN candidate index over a fixed ``(B, d)`` seed matrix.

    Args:
        seeds: ``(B, d)`` seed matrix; copied defensively.
        k: candidate-set size per query point; defaults to
            :func:`default_candidate_count`. Clamped to ``B``.
        backend: ``"auto"`` (KD-tree when scipy is importable, grid
            otherwise), ``"kdtree"`` (requires scipy) or ``"grid"``.

    Raises:
        ValueError: empty/ill-shaped seeds, ``k < 1`` or an unknown
            backend name.
        RuntimeError: ``backend="kdtree"`` without scipy installed.
    """

    __slots__ = (
        "_seeds",
        "_k",
        "_backend",
        "_tree",
        "_cell_lo",
        "_cell_h",
        "_seed_cells",
        "_cells_per_axis",
        "queries",
    )

    def __init__(
        self,
        seeds: PointMatrix,
        k: int | None = None,
        backend: str = "auto",
    ) -> None:
        seeds = np.array(seeds, dtype=np.float64, order="C")
        if seeds.ndim != 2 or seeds.shape[0] == 0:
            raise ValueError(
                f"seeds must be a non-empty (B, d) matrix, got shape "
                f"{seeds.shape}"
            )
        if k is None:
            k = default_candidate_count(seeds.shape[0])
        k = int(k)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._seeds = seeds
        self._k = min(k, seeds.shape[0])
        self.queries = 0
        if backend == "auto":
            backend = "kdtree" if kdtree_available() else "grid"
        if backend == "kdtree":
            if not kdtree_available():
                raise RuntimeError(
                    "SeedIndex backend 'kdtree' requires scipy; install "
                    "the 'spatial' extra or use backend='grid'"
                )
            self._tree = _cKDTree(seeds)
        elif backend == "grid":
            self._tree = None
            self._build_grid()
        else:
            raise ValueError(
                f"unknown SeedIndex backend {backend!r}; expected "
                f"'auto', 'kdtree' or 'grid'"
            )
        self._backend = backend

    @property
    def backend(self) -> str:
        """Which backend was selected: ``"kdtree"`` or ``"grid"``."""
        return self._backend

    @property
    def k(self) -> int:
        """Candidate-set size per query point (clamped to ``B``)."""
        return self._k

    @property
    def num_seeds(self) -> int:
        """How many seeds the index covers."""
        return int(self._seeds.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed seeds."""
        return int(self._seeds.shape[1])

    def _build_grid(self) -> None:
        """Bin seeds into cubic cells of side ``h`` (numpy fallback).

        The cell count per axis targets ``B^(1/d)`` so the expected
        occupancy is O(1) seeds per cell on roughly uniform data. A
        degenerate extent (all seeds identical on every axis) leaves
        ``h = 0``; queries then degrade to the everything-is-a-member
        answer, which disables skipping but stays correct.
        """
        seeds = self._seeds
        lo = seeds.min(axis=0)
        span = float((seeds.max(axis=0) - lo).max())
        per_axis = max(
            1, int(round(seeds.shape[0] ** (1.0 / seeds.shape[1])))
        )
        self._cell_lo = lo
        self._cells_per_axis = per_axis
        if span <= 0.0:
            self._cell_h = 0.0
            self._seed_cells = np.zeros(seeds.shape, dtype=np.int64)
            return
        h = span / per_axis
        self._cell_h = h
        self._seed_cells = np.floor((seeds - lo) / h).astype(np.int64)

    def candidates(
        self, points: PointMatrix
    ) -> tuple[np.ndarray, np.ndarray]:
        """Membership mask and gate radii for a block of query points.

        Args:
            points: ``(m, d)`` query block.

        Returns:
            ``(member, gate)`` where ``member`` is an ``(m, B)`` boolean
            mask (``member[i, j]`` — seed ``j`` is one of point ``i``'s
            candidates) and ``gate`` is an ``(m,)`` float array such
            that every non-member seed of point ``i`` is at exact
            distance ``>= gate[i]`` from it. Rows whose mask is all-True
            carry ``gate = 0`` (nothing can be skipped anyway).
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self._seeds.shape[1]:
            raise ValueError(
                f"candidates expects an (m, {self._seeds.shape[1]}) "
                f"matrix, got shape {points.shape}"
            )
        rows = points.shape[0]
        num = self._seeds.shape[0]
        self.queries += rows
        if rows == 0:
            return (
                np.zeros((0, num), dtype=bool),
                np.zeros(0, dtype=np.float64),
            )
        if self._k >= num:
            # Everything is a candidate; no skips are possible.
            return (
                np.ones((rows, num), dtype=bool),
                np.zeros(rows, dtype=np.float64),
            )
        if self._backend == "kdtree":
            return self._candidates_kdtree(points)
        return self._candidates_grid(points)

    def _candidates_kdtree(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        rows = points.shape[0]
        num = self._seeds.shape[0]
        # workers=1 keeps the query single-threaded: bench gates pin
        # BLAS/OpenMP threads, and parallelism lives at the block level.
        dist, idx = self._tree.query(points, k=self._k, workers=1)
        if self._k == 1:
            dist = dist[:, None]
            idx = idx[:, None]
        member = np.zeros((rows, num), dtype=bool)
        member[np.arange(rows)[:, None], idx] = True
        # Ties at the k-th neighbour may leave equally-near seeds out of
        # the member set; their exact distance still equals the k-th
        # distance, so the gate bound holds for them too.
        gate = dist[:, -1] * _GATE_SAFETY
        return member, gate

    def _candidates_grid(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        rows = points.shape[0]
        num = self._seeds.shape[0]
        if self._cell_h == 0.0:
            # Degenerate extent: no usable geometry, disable skipping.
            return (
                np.ones((rows, num), dtype=bool),
                np.zeros(rows, dtype=np.float64),
            )
        h = self._cell_h
        # Cells are clipped to one halo ring around the seed bounding
        # box. Clipping moves an outside point's cell coordinates
        # towards every seed's, so computed cell distances only shrink —
        # the lower bound below stays valid — while keeping coordinate
        # magnitudes O(cells_per_axis) so floor() rounding slack stays
        # far below the 1e-9 gate margin.
        pcell = np.floor((points - self._cell_lo) / h)
        np.clip(pcell, -1, self._cells_per_axis, out=pcell)
        pcell = pcell.astype(np.int64)
        # Chebyshev cell distance, accumulated one axis at a time to
        # keep the temporary at (m, B) instead of (m, B, d).
        cheb = np.abs(
            pcell[:, 0, None] - self._seed_cells[None, :, 0]
        )
        for axis in range(1, points.shape[1]):
            np.maximum(
                cheb,
                np.abs(
                    pcell[:, axis, None]
                    - self._seed_cells[None, :, axis]
                ),
                out=cheb,
            )
        # k-th smallest cell distance per row: members are every seed at
        # cell distance <= R. Any non-member sits at cell distance
        # >= R + 1, hence at true distance >= R·h on some axis.
        radius = np.partition(cheb, self._k - 1, axis=1)[:, self._k - 1]
        member = cheb <= radius[:, None]
        gate = radius.astype(np.float64) * h * _GATE_SAFETY
        return member, gate
