"""Deep consistency validation of a summary against its database.

The incremental machinery maintains three coupled representations — the
store's ownership records, each bubble's member set, and each bubble's
sufficient statistics — and a bug in any mutation path silently corrupts
downstream clustering. :func:`verify_consistency` recomputes everything
from first principles and reports every violation it finds:

1. **partition** — member sets are pairwise disjoint and cover exactly the
   alive points;
2. **ownership** — the store's owner record of every point matches the
   bubble holding it;
3. **statistics** — each bubble's ``(n, LS, SS)`` equals a fresh
   computation over its members' coordinates (within floating point
   tolerance scaled to the data).

The property-based tests run this after arbitrary update interleavings;
users can call it after a crash recovery or a custom mutation to know the
summary is still sound (it is O(N·d) — cheap next to any clustering run).

This module also guards the *ingestion* boundary: :func:`screen_chunk`
rejects malformed stream input (NaN/Inf coordinates, dimension
mismatches) before it can poison the sufficient statistics, under one of
three :data:`BAD_POINT_POLICIES` — ``strict`` raises
:class:`~repro.exceptions.InvalidPointError`, ``skip`` drops the bad rows,
``quarantine`` drops them but hands them back for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..database import PointStore
from ..exceptions import InvalidConfigError, InvalidPointError
from ..sufficient import SufficientStatistics
from .bubble_set import BubbleSet

__all__ = [
    "BAD_POINT_POLICIES",
    "ConsistencyReport",
    "RejectedPoint",
    "ScreenedChunk",
    "check_policy",
    "screen_chunk",
    "verify_consistency",
]

#: The three ways an ingestion boundary may treat a malformed point.
BAD_POINT_POLICIES: tuple[str, ...] = ("strict", "skip", "quarantine")


def check_policy(policy: str) -> str:
    """Validate a bad-point policy name, returning it unchanged.

    Raises:
        InvalidConfigError: ``policy`` is not one of
            :data:`BAD_POINT_POLICIES`.
    """
    if policy not in BAD_POINT_POLICIES:
        raise InvalidConfigError(
            f"on_bad_point must be one of {BAD_POINT_POLICIES}, "
            f"got {policy!r}"
        )
    return policy


@dataclass(frozen=True)
class RejectedPoint:
    """One stream point rejected at the ingestion boundary.

    Attributes:
        row: the point's row index within its chunk.
        reason: why it was rejected (``"non_finite"`` or
            ``"dimension_mismatch"``).
        point: the offending coordinates, as submitted (possibly with the
            wrong dimensionality).
    """

    row: int
    reason: str
    point: np.ndarray


@dataclass(frozen=True)
class ScreenedChunk:
    """Outcome of :func:`screen_chunk`: the clean subset plus rejects.

    Attributes:
        points: ``(m', d)`` rows that passed validation.
        labels: labels aligned with ``points``.
        rejected: the rows that did not pass, with reasons.
    """

    points: np.ndarray
    labels: tuple[int, ...]
    rejected: tuple[RejectedPoint, ...]

    @property
    def num_rejected(self) -> int:
        """How many rows were rejected."""
        return len(self.rejected)


def screen_chunk(
    points: np.ndarray,
    labels: tuple[int, ...],
    dim: int,
    policy: str,
) -> ScreenedChunk:
    """Validate one ingestion chunk under a bad-point policy.

    Checks, in order: the chunk is a ``(m, d)`` array with ``d == dim``
    (a mismatch damns the whole chunk — rows of the wrong width cannot be
    partially salvaged), and every coordinate is finite (NaN/Inf rows are
    rejected individually).

    Args:
        points: ``(m, ?)`` float array, already ``np.asarray``-coerced.
        labels: per-row labels, ``len(labels) == m``.
        dim: the dimensionality the summarizer expects.
        policy: one of :data:`BAD_POINT_POLICIES`.

    Raises:
        InvalidPointError: under ``strict``, when anything is malformed.
    """
    if points.ndim != 2 or points.shape[1] != dim:
        if policy == "strict":
            raise InvalidPointError(
                f"expected (m, {dim}) points, got shape {points.shape}"
            )
        rejected = tuple(
            RejectedPoint(
                row=i, reason="dimension_mismatch", point=np.array(row)
            )
            for i, row in enumerate(np.atleast_1d(points))
        )
        return ScreenedChunk(
            points=np.empty((0, dim), dtype=np.float64),
            labels=(),
            rejected=rejected,
        )
    finite = np.isfinite(points).all(axis=1)
    if finite.all():
        return ScreenedChunk(points=points, labels=labels, rejected=())
    bad_rows = np.flatnonzero(~finite)
    if policy == "strict":
        sample = bad_rows[:5].tolist()
        raise InvalidPointError(
            f"{bad_rows.size} point(s) carry NaN/Inf coordinates "
            f"(rows {sample}); a non-finite point would poison the "
            "sufficient statistics (n, LS, SS) irreversibly"
        )
    rejected = tuple(
        RejectedPoint(
            row=int(i), reason="non_finite", point=points[i].copy()
        )
        for i in bad_rows
    )
    return ScreenedChunk(
        points=points[finite],
        labels=tuple(
            label for keep, label in zip(finite, labels) if keep
        ),
        rejected=rejected,
    )


@dataclass(frozen=True)
class ConsistencyReport:
    """Outcome of a :func:`verify_consistency` run.

    Attributes:
        ok: whether no violation was found.
        violations: human-readable description of each violation.
    """

    ok: bool
    violations: tuple[str, ...] = field(default_factory=tuple)

    def raise_if_invalid(self) -> None:
        """Raise ``AssertionError`` listing all violations, if any."""
        if not self.ok:
            raise AssertionError(
                "summary/database inconsistency:\n  "
                + "\n  ".join(self.violations)
            )


def verify_consistency(
    bubbles: BubbleSet,
    store: PointStore,
    rel_tol: float = 1e-6,
) -> ConsistencyReport:
    """Check partition, ownership and statistics agreement.

    Args:
        bubbles: the summary under test.
        store: the database it claims to describe.
        rel_tol: relative tolerance for the statistics comparison (scaled
            by the coordinate magnitudes involved).
    """
    violations: list[str] = []
    alive = set(int(i) for i in store.ids())

    # 1. Partition: disjoint member sets covering exactly the alive ids.
    seen: dict[int, int] = {}
    for bubble in bubbles:
        for pid in bubble.members:
            if pid in seen:
                violations.append(
                    f"point {pid} is a member of bubbles {seen[pid]} "
                    f"and {bubble.bubble_id}"
                )
            seen[pid] = bubble.bubble_id
            if pid not in alive:
                violations.append(
                    f"bubble {bubble.bubble_id} holds dead point {pid}"
                )
    uncovered = alive - seen.keys()
    if uncovered:
        sample = sorted(uncovered)[:5]
        violations.append(
            f"{len(uncovered)} alive point(s) belong to no bubble "
            f"(e.g. {sample})"
        )

    # 2. Ownership agreement.
    for pid in alive:
        owner = store.owner(pid)
        member_of = seen.get(pid)
        if owner != member_of:
            violations.append(
                f"point {pid}: store owner {owner} != member of {member_of}"
            )
            if len(violations) > 50:
                violations.append("... (truncated)")
                break

    # 3. Statistics agreement.
    for bubble in bubbles:
        if bubble.is_empty():
            if bubble.stats.n != 0:
                violations.append(
                    f"bubble {bubble.bubble_id}: empty members but n="
                    f"{bubble.stats.n}"
                )
            continue
        member_ids = bubble.member_ids()
        if not set(int(i) for i in member_ids) <= alive:
            continue  # already reported above
        points = store.points_of(member_ids)
        fresh = SufficientStatistics.from_points(points)
        scale = max(1.0, float(np.abs(points).max()))
        if bubble.stats.n != fresh.n:
            violations.append(
                f"bubble {bubble.bubble_id}: n={bubble.stats.n} but "
                f"{fresh.n} members"
            )
        if not np.allclose(
            bubble.stats.linear_sum,
            fresh.linear_sum,
            rtol=rel_tol,
            atol=rel_tol * scale * max(fresh.n, 1),
        ):
            violations.append(
                f"bubble {bubble.bubble_id}: LS drifted from member sum"
            )
        atol = rel_tol * scale * scale * max(fresh.n, 1)
        if abs(bubble.stats.square_sum - fresh.square_sum) > max(
            rel_tol * abs(fresh.square_sum), atol
        ):
            violations.append(
                f"bubble {bubble.bubble_id}: SS drifted from member sum"
            )

    return ConsistencyReport(
        ok=not violations, violations=tuple(violations)
    )
