"""Self-healing invariant audits of a maintained summary.

:func:`~repro.core.validate.verify_consistency` *detects* drift between
the three coupled representations (bubble statistics, bubble membership,
store ownership); :class:`InvariantAuditor` goes one step further and
*repairs* it. The repair reuses the summary's own mutation primitives —
a drifted bubble is rebuilt wholesale through ``clear()`` +
``absorb_many()`` (the merge/split machinery's path), orphaned points are
re-homed to their nearest active bubble, and ownership records are
rewritten to match — so a repaired summary is indistinguishable from one
that was maintained correctly all along.

Intended uses:

* **post-recovery**: after a crash recovery, one audit proves the
  replayed state is sound (the crash-matrix suite does exactly this);
* **periodic**: long-running streams can audit every ``audit_every``
  batches (see :class:`~repro.streaming.SlidingWindowSummarizer`), so a
  latent corruption is caught within a bounded number of batches instead
  of surfacing as inexplicable clustering output months later;
* **on demand**: ``repro-bubbles audit --wal-dir state/`` audits a
  durable state directory from the command line.

Every audit, violation, repair and reassignment is counted in the
observability registry and traced, so a fleet operator can alert on
``repro_audit_violations_total`` going non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..database import PointStore
from ..observability import Observability
from ..observability.spans import maybe_span
from ..sufficient import SufficientStatistics
from .bubble_set import BubbleSet
from .maintenance import IncrementalMaintainer
from .validate import verify_consistency

__all__ = ["AuditReport", "InvariantAuditor"]


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one :meth:`InvariantAuditor.audit` run.

    Attributes:
        ok: whether the initial consistency check found no violation.
        violations: the violations found (empty when ``ok``).
        repaired_bubbles: ids of bubbles rebuilt by the repair pass.
        reassigned_points: points whose ownership record was rewritten.
        post_repair_ok: result of the consistency re-check after repair;
            ``None`` when no repair ran (clean audit, or ``repair=False``).
    """

    ok: bool
    violations: tuple[str, ...] = ()
    repaired_bubbles: tuple[int, ...] = ()
    reassigned_points: int = 0
    post_repair_ok: bool | None = None

    @property
    def healthy(self) -> bool:
        """Clean at first check, or successfully repaired."""
        return self.ok or self.post_repair_ok is True


class InvariantAuditor:
    """Checks — and optionally repairs — summary/database consistency.

    Args:
        bubbles: the summary under audit.
        store: the database it claims to describe.
        maintainer: when given, its retired-bubble set (adaptive
            maintainers park empty bubbles) is honoured: retired bubbles
            must stay empty, and no point is re-homed into one.
        rel_tol: statistics tolerance, as for ``verify_consistency``.
        obs: observability handle; audit metrics and events land here.
    """

    def __init__(
        self,
        bubbles: BubbleSet,
        store: PointStore,
        maintainer: IncrementalMaintainer | None = None,
        rel_tol: float = 1e-6,
        obs: Observability | None = None,
    ) -> None:
        self._bubbles = bubbles
        self._store = store
        self._maintainer = maintainer
        self._rel_tol = float(rel_tol)
        self._obs = obs

    @classmethod
    def for_maintainer(
        cls,
        maintainer: IncrementalMaintainer,
        rel_tol: float = 1e-6,
        obs: Observability | None = None,
    ) -> "InvariantAuditor":
        """Build an auditor over a maintainer's summary and store."""
        return cls(
            maintainer.bubbles,
            maintainer.store,
            maintainer=maintainer,
            rel_tol=rel_tol,
            obs=obs if obs is not None else maintainer.obs,
        )

    # ------------------------------------------------------------------
    # The audit
    # ------------------------------------------------------------------
    def audit(self, repair: bool = True) -> AuditReport:
        """Run one consistency check, repairing violations when asked.

        Returns an :class:`AuditReport`; never raises on inconsistency
        (``report.healthy`` tells the caller whether the summary is — or
        is again — sound).
        """
        with maybe_span(self._obs, "audit", repair=repair):
            check = verify_consistency(
                self._bubbles, self._store, rel_tol=self._rel_tol
            )
            self._note_check(check.ok, len(check.violations))
            if check.ok:
                return AuditReport(ok=True)
            if not repair:
                return AuditReport(ok=False, violations=check.violations)
            with maybe_span(
                self._obs, "audit_repair", violations=len(check.violations)
            ):
                repaired, reassigned = self._repair()
            recheck = verify_consistency(
                self._bubbles, self._store, rel_tol=self._rel_tol
            )
            self._note_repair(repaired, reassigned, recheck.ok)
            return AuditReport(
                ok=False,
                violations=check.violations,
                repaired_bubbles=tuple(repaired),
                reassigned_points=reassigned,
                post_repair_ok=recheck.ok,
            )

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _repair(self) -> tuple[list[int], int]:
        """Rebuild drifted bubbles and rewrite ownership records.

        The desired membership is decided per alive point: its single
        claiming bubble when exactly one active bubble lists it; the
        store's owner (or the lowest claimant id) when several do; and
        the nearest active bubble (by representative distance) when none
        does. Bubbles whose membership or statistics disagree with that
        assignment are rebuilt from raw coordinates.
        """
        store = self._store
        alive = [int(i) for i in store.ids()]
        retired = self._retired_ids()
        active = [
            b.bubble_id
            for b in self._bubbles
            if b.bubble_id not in retired
        ]

        claims: dict[int, list[int]] = {}
        for bubble in self._bubbles:
            for pid in bubble.members:
                claims.setdefault(int(pid), []).append(bubble.bubble_id)

        desired: dict[int, int] = {}
        orphans: list[int] = []
        for pid in alive:
            claimants = [
                c for c in claims.get(pid, []) if c not in retired
            ]
            if not claimants:
                orphans.append(pid)
            elif len(claimants) == 1:
                desired[pid] = claimants[0]
            else:
                owner = store.owner(pid)
                desired[pid] = (
                    owner if owner in claimants else min(claimants)
                )
        if orphans and active:
            reps = np.stack([self._bubbles[i].rep for i in active])
            points = store.points_of(np.asarray(orphans, dtype=np.int64))
            sq = ((points[:, None, :] - reps[None, :, :]) ** 2).sum(axis=2)
            for pid, j in zip(orphans, np.argmin(sq, axis=1)):
                desired[pid] = active[int(j)]

        wanted: dict[int, list[int]] = {
            b.bubble_id: [] for b in self._bubbles
        }
        for pid, bid in desired.items():
            wanted[bid].append(pid)

        repaired: list[int] = []
        for bubble in self._bubbles:
            want = wanted[bubble.bubble_id]
            if bubble.members == set(want) and self._stats_ok(
                bubble, want
            ):
                continue
            bubble.clear()
            if want:
                ids = np.asarray(sorted(want), dtype=np.int64)
                bubble.absorb_many(ids, store.points_of(ids))
            repaired.append(bubble.bubble_id)

        changed_ids: list[int] = []
        changed_owners: list[int] = []
        for pid in alive:
            bid = desired.get(pid)
            if bid is not None and store.owner(pid) != bid:
                changed_ids.append(pid)
                changed_owners.append(bid)
        if changed_ids:
            store.set_owners(
                np.asarray(changed_ids, dtype=np.int64),
                np.asarray(changed_owners, dtype=np.int64),
            )
        return repaired, len(changed_ids)

    def _stats_ok(self, bubble, member_ids: list[int]) -> bool:
        """Whether a bubble's statistics match its (desired) members."""
        if not member_ids:
            return bubble.stats.n == 0
        points = self._store.points_of(
            np.asarray(sorted(member_ids), dtype=np.int64)
        )
        fresh = SufficientStatistics.from_points(points)
        if bubble.stats.n != fresh.n:
            return False
        scale = max(1.0, float(np.abs(points).max()))
        atol = self._rel_tol * scale * max(fresh.n, 1)
        if not np.allclose(
            bubble.stats.linear_sum,
            fresh.linear_sum,
            rtol=self._rel_tol,
            atol=atol,
        ):
            return False
        return abs(bubble.stats.square_sum - fresh.square_sum) <= max(
            self._rel_tol * abs(fresh.square_sum), atol * scale
        )

    def _retired_ids(self) -> frozenset[int]:
        if self._maintainer is None:
            return frozenset()
        return frozenset(
            getattr(self._maintainer, "retired_ids", frozenset())
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _note_check(self, ok: bool, violations: int) -> None:
        if self._obs is None:
            return
        self._obs.metrics.counter(
            "repro_audit_runs_total",
            help="Invariant audits executed.",
        ).inc()
        if not ok:
            self._obs.metrics.counter(
                "repro_audit_violations_total",
                help="Invariant violations detected by audits.",
            ).inc(violations)
        self._obs.emit("audit", ok=ok, violations=violations)

    def _note_repair(
        self, repaired: list[int], reassigned: int, ok: bool
    ) -> None:
        if self._obs is None:
            return
        self._obs.metrics.counter(
            "repro_audit_repairs_total",
            help="Bubbles rebuilt by audit repairs.",
        ).inc(len(repaired))
        self._obs.metrics.counter(
            "repro_audit_points_reassigned_total",
            help="Ownership records rewritten by audit repairs.",
            unit="points",
        ).inc(reassigned)
        self._obs.emit(
            "audit_repair",
            repaired_bubbles=len(repaired),
            reassigned_points=reassigned,
            post_repair_ok=ok,
        )
