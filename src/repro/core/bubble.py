"""The data bubble: sufficient statistics plus membership.

Definition 1 of the paper: a data bubble ``B`` for a point set ``X`` is the
tuple ``(rep, n, extent, nnDist)``. All of those are derived on demand from
the additive sufficient statistics ``(n, LS, SS)``
(:mod:`repro.sufficient`), which is what makes the bubble *incremental*:
insertions and deletions are O(d) statistic updates.

On top of Definition 1, an incremental bubble needs two more pieces of
state that the static formulation of Breunig et al. 2001 could leave
implicit:

* a **seed** — the location used when assigning points to bubbles. During
  initial construction it is the sampled database point; when a bubble is
  migrated by the split/merge machinery it is re-seeded from a point of the
  over-filled bubble (Section 4.2).
* the **member point ids** — which points the bubble currently summarizes.
  Deletion support requires knowing each point's bubble (tracked in the
  :class:`~repro.database.PointStore`), and the split operation draws new
  seeds "from the current points in B" (Figure 6), so the bubble keeps the
  id set of its members. Coordinates are *not* duplicated here; they stay
  in the store.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyBubbleError
from ..sufficient import SufficientStatistics, extent as _extent, nn_dist
from ..types import BubbleId, Point, PointId

__all__ = ["DataBubble"]


class DataBubble:
    """One incremental data bubble.

    Args:
        bubble_id: stable identifier within the owning bubble set.
        seed: the location that points are compared against during
            assignment; copied defensively.

    The bubble starts empty; points are added with :meth:`absorb` and
    removed with :meth:`release`.
    """

    __slots__ = ("_id", "_seed", "_stats", "_members", "_on_mutate")

    def __init__(self, bubble_id: BubbleId, seed: Point) -> None:
        seed = np.asarray(seed, dtype=np.float64)
        if seed.ndim != 1:
            raise ValueError(f"seed must be a (d,) point, got ndim={seed.ndim}")
        self._id = int(bubble_id)
        self._seed = seed.copy()
        self._stats = SufficientStatistics(dim=seed.shape[0])
        self._members: set[PointId] = set()
        self._on_mutate = None

    def _notify(self) -> None:
        """Tell the owning bubble set this bubble's state changed.

        The :class:`~repro.core.bubble_set.BubbleSet` installs the hook to
        invalidate its cached representative matrix (and bump its version
        counter, which the assigner cache keys on). A standalone bubble
        has no hook and pays nothing.
        """
        if self._on_mutate is not None:
            self._on_mutate(self._id)

    # ------------------------------------------------------------------
    # Identity and location
    # ------------------------------------------------------------------
    @property
    def bubble_id(self) -> BubbleId:
        """Stable identifier within the bubble set."""
        return self._id

    @property
    def dim(self) -> int:
        """Dimensionality of the summarized points."""
        return self._stats.dim

    @property
    def seed(self) -> np.ndarray:
        """The assignment location (read-only view)."""
        view = self._seed.view()
        view.flags.writeable = False
        return view

    def reseed(self, seed: Point) -> None:
        """Move the bubble's assignment location (migration, Section 4.2).

        Only legal while the bubble is empty — repositioning a bubble that
        still summarizes points would silently misplace them.
        """
        if not self._stats.is_empty():
            raise EmptyBubbleError(
                f"bubble {self._id} must be emptied before reseeding"
            )
        seed = np.asarray(seed, dtype=np.float64)
        if seed.shape != self._seed.shape:
            raise ValueError(
                f"seed shape {seed.shape} does not match dim {self.dim}"
            )
        self._seed = seed.copy()
        self._notify()

    # ------------------------------------------------------------------
    # Definition 1 quantities
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of points currently summarized."""
        return self._stats.n

    @property
    def rep(self) -> np.ndarray:
        """The representative: mean of the summarized points.

        For an empty bubble the seed doubles as the representative, so the
        bubble remains placeable (e.g. by OPTICS) until it is recycled.
        """
        if self._stats.is_empty():
            view = self._seed.view()
            view.flags.writeable = False
            return view
        return self._stats.mean()

    @property
    def extent(self) -> float:
        """Radius around ``rep`` enclosing the majority of the points.

        Estimated as the average intra-bubble pairwise distance; ``0.0`` for
        empty or singleton bubbles.
        """
        if self._stats.is_empty():
            return 0.0
        return _extent(self._stats)

    def nn_dist(self, k: int) -> float:
        """Estimated average ``k``-nearest-neighbour distance inside the bubble.

        ``0.0`` for empty bubbles (consistent with a zero extent).
        """
        if self._stats.is_empty():
            return 0.0
        return nn_dist(self._stats, k)

    @property
    def stats(self) -> SufficientStatistics:
        """The underlying sufficient statistics (live object, handle with care)."""
        return self._stats

    # ------------------------------------------------------------------
    # Membership / incremental updates
    # ------------------------------------------------------------------
    @property
    def members(self) -> frozenset[PointId]:
        """Ids of the points currently summarized (immutable copy)."""
        return frozenset(self._members)

    def member_ids(self) -> np.ndarray:
        """Member ids as a sorted numpy array (for vectorised store lookups)."""
        return np.fromiter(
            sorted(self._members), dtype=np.int64, count=len(self._members)
        )

    def absorb(self, point_id: PointId, point: Point) -> None:
        """Add one point: ``(n, LS, SS) -> (n+1, LS+p, SS+p·p)``."""
        if point_id in self._members:
            raise ValueError(
                f"point {point_id} is already a member of bubble {self._id}"
            )
        self._stats.insert(point)
        self._members.add(point_id)
        self._notify()

    def release(self, point_id: PointId, point: Point) -> None:
        """Remove one member: ``(n, LS, SS) -> (n-1, LS-p, SS-p·p)``."""
        if point_id not in self._members:
            raise ValueError(
                f"point {point_id} is not a member of bubble {self._id}"
            )
        self._stats.remove(point)
        self._members.remove(point_id)
        self._notify()

    def absorb_many(self, point_ids: np.ndarray, points: np.ndarray) -> None:
        """Vectorised :meth:`absorb` for parallel id/coordinate arrays."""
        if len(point_ids) != len(points):
            raise ValueError("point_ids and points must align")
        new_ids = set(int(i) for i in point_ids)
        if new_ids & self._members:
            raise ValueError("absorb_many received an existing member")
        if len(new_ids) != len(point_ids):
            raise ValueError("absorb_many received duplicate ids")
        self._stats.insert_many(points)
        self._members |= new_ids
        self._notify()

    def release_many(self, point_ids: np.ndarray, points: np.ndarray) -> None:
        """Vectorised :meth:`release` for parallel id/coordinate arrays."""
        if len(point_ids) != len(points):
            raise ValueError("point_ids and points must align")
        leaving = set(int(i) for i in point_ids)
        if len(leaving) != len(point_ids):
            raise ValueError("release_many received duplicate ids")
        if not leaving <= self._members:
            raise ValueError("release_many received a non-member id")
        self._stats.remove_many(points)
        self._members -= leaving
        self._notify()

    def restore_state(
        self, stats: SufficientStatistics, member_ids: np.ndarray
    ) -> None:
        """Adopt persisted statistics and membership verbatim.

        Used by the persistence layer to rebuild a bubble bit-identically:
        the statistics are installed as-is instead of being re-accumulated
        from coordinates. Only legal on a freshly created (empty) bubble.
        """
        if not self._stats.is_empty() or self._members:
            raise EmptyBubbleError(
                f"bubble {self._id} already summarizes points; restore_state "
                "is only legal on an empty bubble"
            )
        if stats.dim != self.dim:
            raise ValueError(
                f"stats dim {stats.dim} does not match bubble dim {self.dim}"
            )
        members = set(int(i) for i in member_ids)
        if len(members) != len(member_ids):
            raise ValueError("restore_state received duplicate member ids")
        if stats.n != len(members):
            raise ValueError(
                f"stats count {stats.n} does not match "
                f"{len(members)} member ids"
            )
        self._stats = stats.copy()
        self._members = members
        self._notify()

    def clear(self) -> list[PointId]:
        """Empty the bubble, returning the ids it used to summarize.

        Used by the merge step: "the points in B_underfilled are released
        and are assigned to their next closest data bubble" (Figure 6).
        """
        released = sorted(self._members)
        self._members.clear()
        self._stats.clear()
        self._notify()
        return released

    def is_empty(self) -> bool:
        """Whether the bubble currently summarizes no points."""
        return self._stats.is_empty()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataBubble(id={self._id}, n={self.n}, dim={self.dim})"
