"""Compression-quality measurement for data bubbles (Section 4.1).

The paper's quality measure is the **data summarization index**
``β_i = n_i / N`` (Definition 2): the fraction of the database a bubble
summarizes. Treating the β values of a bubble set as samples of a random
variable with mean ``μ_β`` and standard deviation ``σ_β``, Chebyshev's
inequality bounds where "most" β values must lie regardless of their
distribution; bubbles outside ``[μ_β - k·σ_β, μ_β + k·σ_β]`` are outliers
(Definition 3):

* ``β`` below the lower boundary → **under-filled** (nearly empty; a cheap
  donor for splits);
* ``β`` above the upper boundary → **over-filled** (may span several
  substructures; critically degrades the clustering and must be rebuilt);
* otherwise → **good**.

``k`` comes from the probability parameter ``p`` via ``k = 1/sqrt(1-p)``
(:func:`repro.core.config.chebyshev_k`), ``p = 0.9`` in the paper.

The module also defines the :class:`QualityMeasure` interface so the
maintainer can run with the extent-based baseline measure
(:mod:`repro.core.extent_quality`) that Figure 7 shows failing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..types import BubbleId
from .bubble_set import BubbleSet
from .config import chebyshev_k

__all__ = [
    "BubbleClass",
    "QualityReport",
    "QualityMeasure",
    "BetaQuality",
    "classify_values",
]


class BubbleClass(Enum):
    """Compression-quality class of a bubble (Definition 3)."""

    GOOD = "good"
    UNDER_FILLED = "under-filled"
    OVER_FILLED = "over-filled"


@dataclass(frozen=True)
class QualityReport:
    """Outcome of classifying one bubble set.

    Attributes:
        values: the per-bubble quality values (β, or extent for the
            baseline), in bubble-id order.
        mean: sample mean ``μ`` of the values.
        std: sample standard deviation ``σ`` (population convention,
            matching the Chebyshev statement).
        k: the Chebyshev multiplier in force.
        lower: lower class boundary ``μ - k·σ``.
        upper: upper class boundary ``μ + k·σ``.
        classes: per-bubble :class:`BubbleClass`, in bubble-id order.
    """

    values: np.ndarray
    mean: float
    std: float
    k: float
    lower: float
    upper: float
    classes: tuple[BubbleClass, ...]

    @property
    def good_ids(self) -> tuple[BubbleId, ...]:
        """Ids classified as good, ascending."""
        return self._ids_of(BubbleClass.GOOD)

    @property
    def under_filled_ids(self) -> tuple[BubbleId, ...]:
        """Ids classified as under-filled, ascending."""
        return self._ids_of(BubbleClass.UNDER_FILLED)

    @property
    def over_filled_ids(self) -> tuple[BubbleId, ...]:
        """Ids classified as over-filled, ascending."""
        return self._ids_of(BubbleClass.OVER_FILLED)

    def _ids_of(self, cls: BubbleClass) -> tuple[BubbleId, ...]:
        return tuple(
            i for i, c in enumerate(self.classes) if c is cls
        )

    def class_of(self, bubble_id: BubbleId) -> BubbleClass:
        """The class assigned to one bubble."""
        return self.classes[bubble_id]


def classify_values(values: np.ndarray, probability: float) -> QualityReport:
    """Classify quality values by the Chebyshev outlier rule.

    Shared by the β measure and the extent baseline; only the meaning of
    ``values`` differs.
    """
    values = np.asarray(values, dtype=np.float64)
    k = chebyshev_k(probability)
    mean = float(values.mean()) if values.size else 0.0
    std = float(values.std()) if values.size else 0.0
    lower = mean - k * std
    upper = mean + k * std
    classes = []
    for value in values:
        if value < lower:
            classes.append(BubbleClass.UNDER_FILLED)
        elif value > upper:
            classes.append(BubbleClass.OVER_FILLED)
        else:
            classes.append(BubbleClass.GOOD)
    return QualityReport(
        values=values,
        mean=mean,
        std=std,
        k=k,
        lower=lower,
        upper=upper,
        classes=tuple(classes),
    )


class QualityMeasure(ABC):
    """Strategy interface: how the maintainer judges compression quality."""

    @abstractmethod
    def classify(
        self, bubbles: BubbleSet, database_size: int
    ) -> QualityReport:
        """Classify every bubble of ``bubbles`` for a database of given size."""


class BetaQuality(QualityMeasure):
    """The paper's measure: β = fraction of database points summarized.

    Args:
        probability: Chebyshev probability ``p`` (default 0.9, as in the
            paper's evaluation; 0.8 was reported to behave identically).
    """

    def __init__(self, probability: float = 0.9) -> None:
        # Validate eagerly via chebyshev_k.
        chebyshev_k(probability)
        self._probability = probability

    @property
    def probability(self) -> float:
        """The Chebyshev probability in force."""
        return self._probability

    def classify(
        self, bubbles: BubbleSet, database_size: int
    ) -> QualityReport:
        betas = bubbles.betas(database_size)
        return classify_values(betas, self._probability)
