"""Complete-rebuild baseline maintainer.

The naive approach the paper compares against (Sections 1 and 5): after
every batch of updates, throw the old summary away and re-run the full
construction over the current database. Quality-wise this is the gold
standard ("building data bubbles completely from scratch can be considered
as a baseline algorithm that has been shown to perform well", Section 4.1);
cost-wise it pays a full database scan per batch, which is what Figure 11's
distance-saving factor measures the incremental scheme against.

:class:`CompleteRebuildMaintainer` exposes the same ``apply_batch`` /
``bubbles`` interface as
:class:`~repro.core.maintenance.IncrementalMaintainer`, so the experiment
harness can drive either side of the comparison identically. Figure 11
compares the incremental scheme *with* triangle-inequality pruning against
a complete rebuild *without* it, so the builder's pruning flag defaults to
off here and on for the incremental maintainer; both are configurable.
"""

from __future__ import annotations

import numpy as np

from ..database import PointStore, UpdateBatch
from ..geometry import DistanceCounter
from ..observability import Observability
from .builder import BubbleBuilder
from .bubble_set import BubbleSet
from .config import BubbleConfig
from .maintenance import BatchReport

__all__ = ["CompleteRebuildMaintainer"]


class CompleteRebuildMaintainer:
    """Re-summarizes the whole database from scratch after every batch.

    Args:
        store: the dynamic database.
        config: construction parameters used for every rebuild. Per the
            Figure 11 set-up, ``use_triangle_inequality`` defaults to
            ``False`` in :meth:`default_config`; pass a config with it
            enabled to measure a pruned rebuild instead.
        counter: shared distance counter; a private one is created when
            omitted.
        obs: optional observability sink, forwarded to the builder so the
            rebuild's assignment scans are timed like incremental batches.
    """

    def __init__(
        self,
        store: PointStore,
        config: BubbleConfig,
        counter: DistanceCounter | None = None,
        obs: Observability | None = None,
    ) -> None:
        self._store = store
        self._config = config
        self._counter = counter if counter is not None else DistanceCounter()
        self._builder = BubbleBuilder(config, counter=self._counter, obs=obs)
        self._bubbles: BubbleSet | None = None

    @staticmethod
    def default_config(
        num_bubbles: int,
        seed: int | None = None,
        assign_workers: int = 0,
    ) -> BubbleConfig:
        """The paper's Figure 11 baseline: full rebuild without pruning.

        ``assign_workers`` is carried on the config for callers that
        re-enable pruning on top of this baseline; the naive full-scan
        assigner itself runs single-process (worker pools and the seed
        index are features of the triangle-inequality batch engine).
        """
        return BubbleConfig(
            num_bubbles=num_bubbles,
            use_triangle_inequality=False,
            seed=seed,
            assign_workers=assign_workers,
        )

    @property
    def store(self) -> PointStore:
        """The underlying database."""
        return self._store

    @property
    def counter(self) -> DistanceCounter:
        """The distance counter accumulating rebuild costs."""
        return self._counter

    @property
    def bubbles(self) -> BubbleSet:
        """The most recent summary (rebuild() or apply_batch() must have run).

        Raises:
            RuntimeError: when no summary has been built yet.
        """
        if self._bubbles is None:
            raise RuntimeError(
                "no summary built yet; call rebuild() or apply_batch() first"
            )
        return self._bubbles

    def rebuild(self) -> BubbleSet:
        """Summarize the store's current content from scratch."""
        self._bubbles = self._builder.build(self._store)
        return self._bubbles

    def apply_batch(self, batch: UpdateBatch) -> BatchReport:
        """Apply the raw updates to the store, then rebuild everything."""
        before = self._counter.snapshot()
        if batch.deletions:
            self._store.delete(np.asarray(batch.deletions, dtype=np.int64))
        if batch.num_insertions:
            self._store.insert(batch.insertions, batch.insertion_labels)
        self.rebuild()
        delta = self._counter.snapshot() - before
        num_bubbles = len(self._bubbles) if self._bubbles is not None else 0
        return BatchReport(
            num_deletions=batch.num_deletions,
            num_insertions=batch.num_insertions,
            num_over_filled=0,
            num_under_filled=0,
            rebuilt_bubbles=tuple(range(num_bubbles)),
            rounds_run=1,
            computed_distances=delta.computed,
            pruned_distances=delta.pruned,
            insertion_pruned_fraction=self._builder.last_pruned_fraction,
        )
