"""Assignment of points to their closest bubble seed.

Section 3 of the paper speeds up the construction (and incremental
maintenance) of data bubbles by pruning distance computations with the
triangle inequality:

**Lemma 1.** Let ``p`` be a database point and ``s_B1``, ``s_B2`` seeds of
two bubbles. If ``dist(s_B1, s_B2) >= 2 · dist(p, s_B1)`` then
``dist(p, s_B1) <= dist(p, s_B2)`` — so ``s_B2`` can be discarded without
computing ``dist(p, s_B2)``.

:class:`TriangleInequalityAssigner` implements the pseudocode of Figure 2
verbatim (candidate set, random probing, pruning against the current
candidate), on top of a precomputed seed-to-seed distance matrix. Its
:meth:`~TriangleInequalityAssigner.assign_many` is a *blockwise batch
engine*: whole blocks of points run the Figure 2 loop in lockstep through
vectorised numpy kernels, returning bit-identical assignments — and
identical computed/pruned totals — to the scalar :meth:`assign` loop under
the same RNG (see the class docstring for how that equivalence is kept).

:class:`NaiveAssigner` is the unpruned baseline that compares against every
seed; the complete-rebuild experiments of Figure 11 use it.

Both assigners account every conceptual distance computation either as
*computed* or as *pruned* so the experiments of Figures 10–11 can be
reproduced exactly in the paper's own metric. The cost of building the
seed matrix is tracked separately (:attr:`setup_computed`) because the
paper reports the assignment-phase pruning factor net of that (small)
overhead while still acknowledging it.

:class:`AssignerCache` memoizes one assigner (and therefore its O(B²) seed
matrix) across consecutive batch assignments, invalidating only when the
:class:`~repro.core.bubble_set.BubbleSet` actually mutates; the maintainers
use it so a quiet summary never pays the seed matrix twice.

Two optional layers sit under/around the batch engine:

* ``use_seed_index=True`` builds a :class:`~repro.core.seed_index.SeedIndex`
  over the seeds (lazily, on the first batch) and lets the lockstep loop
  *skip* the exact distance to probes the index proves cannot win —
  assignments, RNG stream and total accounting stay bit-identical to the
  plain batch kernel, with skipped probes moving from *computed* into
  *pruned* (sub-total in :attr:`assign_index_pruned`).
* ``workers=N`` with ``N >= 1`` runs the lockstep blocks on a forked
  worker pool under per-block RNG substreams (see
  :mod:`repro.core.parallel`); ``workers=0`` remains the serial,
  main-RNG, bit-reproducible reference path.
"""

from __future__ import annotations

import numpy as np

from ..geometry import DistanceCounter, pairwise
from ..geometry.distance import row_norms
from ..observability.spans import maybe_span
from ..types import Point, PointMatrix
from .parallel import run_blocks
from .seed_index import SeedIndex

__all__ = [
    "Assigner",
    "AssignerCache",
    "NaiveAssigner",
    "TriangleInequalityAssigner",
    "make_assigner",
]

#: Floor for the adaptively sized lockstep blocks of
#: :meth:`TriangleInequalityAssigner.assign_many`. Bigger blocks mean
#: fewer lockstep rounds (round cost is dominated by the rows still
#: alive, not the block width), so the engine prefers the largest block
#: the element budget below allows.
DEFAULT_BLOCK_SIZE = 1024

#: Target float64 element count of the temporary ``(rows, B, d)``
#: difference tensor built by :meth:`NaiveAssigner.assign_many` per block
#: (4M elements = 32 MiB).
_NAIVE_BLOCK_ELEMENTS = 1 << 22

#: Element budget for the triangle-inequality engine's per-block
#: ``(rows, B)`` workspaces (probing permutations + membership masks):
#: 4M int64 elements = 32 MiB of permutation rows.
_TI_BLOCK_ELEMENTS = 1 << 22


class Assigner:
    """Common interface: map points to the index of their closest location.

    Args:
        locations: ``(B, d)`` matrix of bubble seeds/representatives.
            Copied defensively — callers may hand in views of live,
            mutating state (e.g. a :class:`BubbleSet`'s cached
            representative matrix).
        counter: shared :class:`DistanceCounter`; a private one is created
            when omitted.
        obs: observability handle; batch kernels run each block under an
            ``assign_block`` span when span tracing is enabled. Mutable
            (:attr:`obs`) so a cached assigner can follow its owner's
            handle without invalidating the cache.
    """

    def __init__(
        self,
        locations: PointMatrix,
        counter: DistanceCounter | None = None,
        obs=None,
    ) -> None:
        locations = np.array(locations, dtype=np.float64, order="C")
        if locations.ndim != 2 or locations.shape[0] == 0:
            raise ValueError(
                f"locations must be a non-empty (B, d) matrix, got shape "
                f"{locations.shape}"
            )
        self._locations = locations
        self._counter = counter if counter is not None else DistanceCounter()
        self._assign_computed = 0
        self._assign_pruned = 0
        self.obs = obs

    @property
    def num_locations(self) -> int:
        """How many candidate locations the assigner chooses among."""
        return int(self._locations.shape[0])

    @property
    def locations(self) -> np.ndarray:
        """The candidate locations (read-only view)."""
        view = self._locations.view()
        view.flags.writeable = False
        return view

    @property
    def counter(self) -> DistanceCounter:
        """The distance counter receiving this assigner's accounting."""
        return self._counter

    @property
    def assign_computed(self) -> int:
        """Distance computations executed during point assignment."""
        return self._assign_computed

    @property
    def assign_pruned(self) -> int:
        """Distance computations avoided during point assignment."""
        return self._assign_pruned

    @property
    def pruned_fraction(self) -> float:
        """Fraction of assignment-phase computations avoided (Figure 10)."""
        considered = self._assign_computed + self._assign_pruned
        if considered == 0:
            return 0.0
        return self._assign_pruned / considered

    def _validated_points(self, points: PointMatrix) -> np.ndarray:
        """Coerce batch input to float64 and reject anything not ``(m, d)``.

        Shape problems must surface *here*, with the expected shape in the
        message — not as an opaque broadcast error from deep inside a
        kernel after part of the batch was already accounted.
        """
        points = np.asarray(points, dtype=np.float64)
        dim = self._locations.shape[1]
        if points.ndim != 2 or points.shape[1] != dim:
            raise ValueError(
                f"assign_many expects an (m, {dim}) matrix of points "
                f"matching the (B, {dim}) locations; got shape "
                f"{points.shape}"
            )
        return points

    def assign(self, point: Point) -> int:
        """Index of the closest location for one point."""
        raise NotImplementedError

    def assign_many(self, points: PointMatrix) -> np.ndarray:
        """Indices of the closest locations for each row of ``points``.

        Subclasses override this with vectorised batch kernels; the base
        implementation is the per-point reference loop.

        Raises:
            ValueError: ``points`` is not an ``(m, d)`` matrix with ``d``
                matching the locations.
        """
        points = self._validated_points(points)
        result = np.empty(points.shape[0], dtype=np.int64)
        for i, point in enumerate(points):
            result[i] = self.assign(point)
        return result


class NaiveAssigner(Assigner):
    """Full-scan nearest-seed assignment (no pruning).

    The baseline of Section 3: "the distance between p and all the seeds
    has to be determined". Every point costs exactly ``B`` distance
    computations.

    :meth:`assign_many` is vectorised but computes the *exact* blockwise
    distances ``‖p − s‖`` through the same reduction kernel as
    :meth:`assign` — not the expanded norm trick ``‖p‖² + ‖s‖² − 2p·s``,
    whose floating-point cancellation can go slightly negative and break
    argmin ties differently from the exact distances. Batch and scalar
    paths therefore always return the same owner, duplicate and
    equidistant seeds included.
    """

    def assign(self, point: Point) -> int:
        dists = self._counter.point_to_points(point, self._locations)
        self._assign_computed += self._locations.shape[0]
        return int(np.argmin(dists))

    def assign_many(self, points: PointMatrix) -> np.ndarray:
        # Vectorised and identically accounted: m · B computations.
        points = self._validated_points(points)
        num_points = points.shape[0]
        result = np.empty(num_points, dtype=np.int64)
        if num_points == 0:
            return result
        locations = self._locations
        num, dim = locations.shape
        count = num_points * num
        self._counter.record_computed(count)
        self._assign_computed += count
        block = max(1, _NAIVE_BLOCK_ELEMENTS // (num * dim))
        for start in range(0, num_points, block):
            chunk = points[start : start + block]
            with maybe_span(
                self.obs, "assign_block", points=chunk.shape[0]
            ):
                # (rows, B, d) difference tensor, reduced row-by-row
                # through the exact same kernel assign() uses —
                # bit-identical floats, hence bit-identical argmin
                # tie-breaks.
                diff = chunk[:, None, :] - locations[None, :, :]
                dists = row_norms(diff.reshape(-1, dim)).reshape(
                    chunk.shape[0], num
                )
                result[start : start + chunk.shape[0]] = np.argmin(
                    dists, axis=1
                )
        return result


class TriangleInequalityAssigner(Assigner):
    """Lemma 1 pruning assigner — the pseudocode of Figure 2.

    On construction the pairwise distances among all locations are computed
    once (``B·(B-1)/2`` computations, tracked in :attr:`setup_computed`).
    Per point, candidates are pruned against the current best candidate
    ``s_c``: every remaining seed ``s_j`` with
    ``dist(s_j, s_c) >= 2 · minDist`` cannot be closer than ``s_c`` and is
    discarded without a distance computation.

    **Batch engine.** :meth:`assign_many` runs the same Figure 2 loop over
    blocks of points in lockstep: per block it draws each point's random
    probing permutation from the shared RNG (one Fisher–Yates draw per
    point, in point order — exactly the stream the scalar loop consumes,
    so scalar and batch calls interleave reproducibly), then alternates a
    vectorised Lemma-1 prune pass (a row-compare against the cached
    seed-to-seed matrix applied to a by-value candidate membership mask)
    with a vectorised probe pass (one exact distance per surviving point)
    until every point's candidate set is exhausted. Preallocated
    per-block workspaces are reused across blocks and calls. Assignments
    are bit-identical to the scalar loop and the computed/pruned totals —
    accumulated per block, recorded once per block — match the scalar
    accounting exactly (see :meth:`_assign_block` for why).

    **Setup accounting contract.** :attr:`setup_computed` *always* reports
    the ``B·(B-1)/2`` cost of the seed matrix, in both ``count_setup``
    modes; the flag only controls whether that cost is *additionally*
    recorded into the shared ``counter``. Figure-10 aggregation relies on
    attribute and counter agreeing when ``count_setup=True`` and on the
    counter staying at zero (pre-assignment) when ``count_setup=False``.

    **Spatial skip layer.** With ``use_seed_index=True`` the engine
    builds a :class:`~repro.core.seed_index.SeedIndex` on the first
    batch and asks it, per block, for each point's candidate mask and a
    gate radius ``g`` bounding every non-candidate's distance from
    below. A probe is skipped — no exact distance — exactly when it is
    a non-candidate *and* the row's ``minDist <= g``: the skipped
    distance is ``>= g >= minDist`` and the update rule is a strict
    ``<``, so the probe could not have changed ``current``, ``minDist``
    or any later Lemma-1 test. Probing order (hence the RNG stream),
    assignments and tie-breaks are therefore bit-identical to the plain
    batch kernel; each skip converts one *computed* distance into a
    *pruned* one, so total accounting is conserved and the computed
    count is provably ``<=`` the plain kernel's on every input. The
    scalar :meth:`assign` never consults the index — it stays the
    pure Figure 2 reference the batch engine is tested against.

    **Parallel blocks.** With ``workers >= 1``, :meth:`assign_many`
    draws one 64-bit entropy value from the main RNG (a single draw per
    call, regardless of size) and runs its lockstep blocks as
    independent tasks under per-block substreams — results are a pure
    function of the block partition and that draw, so every
    ``workers >= 1`` value produces identical output and worker count
    only changes wall-clock (see :mod:`repro.core.parallel`).
    ``workers=0`` is the serial reference: blocks consume the main RNG
    in point order, bit-identical to the scalar loop.

    Args:
        locations: ``(B, d)`` seed matrix.
        counter: shared distance counter.
        rng: randomness source for the random candidate probing of
            Figure 2; a fresh default generator is used when omitted.
        count_setup: whether the seed-matrix construction cost is also
            recorded into ``counter`` (it always shows in
            :attr:`setup_computed`).
        block_size: points processed per lockstep block by
            :meth:`assign_many`; ``None`` (the default) sizes blocks
            adaptively from a fixed workspace element budget. The
            blocking never changes results with ``workers=0`` — only
            workspace size and per-block overhead. With ``workers >= 1``
            results are a pure function of the partition (still
            independent of worker count).
        use_seed_index: build a spatial candidate index and let the
            batch engine skip provably hopeless probes (see the class
            docstring). Off by default — the plain kernel is the
            scalar-parity reference.
        index_k: candidate-set size for the seed index; ``None`` uses
            :func:`~repro.core.seed_index.default_candidate_count`.
        index_backend: ``"auto"`` / ``"kdtree"`` / ``"grid"`` — see
            :class:`~repro.core.seed_index.SeedIndex`.
        workers: worker-pool size for :meth:`assign_many`; ``0`` (the
            default) is the serial bit-reproducible reference path.
    """

    def __init__(
        self,
        locations: PointMatrix,
        counter: DistanceCounter | None = None,
        rng: np.random.Generator | None = None,
        count_setup: bool = True,
        block_size: int | None = None,
        obs=None,
        use_seed_index: bool = False,
        index_k: int | None = None,
        index_backend: str = "auto",
        workers: int = 0,
    ) -> None:
        super().__init__(locations, counter, obs=obs)
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self._rng = rng if rng is not None else np.random.default_rng()
        self._seed_dists = pairwise(self._locations)
        self._block_size = None if block_size is None else int(block_size)
        self._use_seed_index = bool(use_seed_index)
        self._index_k = None if index_k is None else int(index_k)
        self._index_backend = str(index_backend)
        self._seed_index: SeedIndex | None = None
        self._workers = int(workers)
        self._assign_index_pruned = 0
        self._ws_cand: np.ndarray | None = None
        self._ws_active: np.ndarray | None = None
        self._ws_cursor: np.ndarray | None = None
        b = self._locations.shape[0]
        self._setup_computed = b * (b - 1) // 2
        if count_setup:
            self._counter.record_computed(self._setup_computed)

    @property
    def setup_computed(self) -> int:
        """Distance computations spent on the seed-to-seed matrix.

        Reported unconditionally — the matrix is always built — even when
        ``count_setup=False`` kept the cost out of the shared counter.
        """
        return self._setup_computed

    @property
    def workers(self) -> int:
        """Worker-pool size used by :meth:`assign_many` (0 = serial)."""
        return self._workers

    @property
    def assign_index_pruned(self) -> int:
        """Probes skipped by the spatial index (subset of pruned).

        Every skip is also counted in :attr:`assign_pruned` — the index
        converts computed distances into pruned ones without changing
        the computed + pruned total.
        """
        return self._assign_index_pruned

    @property
    def seed_index(self) -> SeedIndex | None:
        """The lazily built spatial index, or ``None`` before first use."""
        return self._seed_index

    def assign(self, point: Point) -> int:
        locations = self._locations
        num = locations.shape[0]
        if num == 1:
            self._counter.record_computed(1)
            self._assign_computed += 1
            return 0

        # "set CandidateSeeds to the set of all seeds of data bubbles"
        order = self._rng.permutation(num)
        candidates = order.tolist()

        # "select and remove a random seed s_i ... compute minDist"
        current = candidates.pop()
        min_dist = float(row_norms(locations[current : current + 1] - point)[0])
        computed = 1

        pruned = 0
        remaining = np.asarray(candidates, dtype=np.int64)
        while remaining.size:
            # Prune every s_j with dist(s_j, s_c) >= 2 · minDist (Lemma 1).
            keep_mask = self._seed_dists[current, remaining] < 2.0 * min_dist
            pruned += int(remaining.size - keep_mask.sum())
            remaining = remaining[keep_mask]
            if remaining.size == 0:
                break
            # "select and remove a random seed s_j; compute dist(p, s_j)"
            # `remaining` preserves the initial random permutation, so
            # popping the last element is a uniformly random probe.
            probe = int(remaining[-1])
            remaining = remaining[:-1]
            dist = float(row_norms(locations[probe : probe + 1] - point)[0])
            computed += 1
            if dist < min_dist:
                current = probe
                min_dist = dist

        self._counter.record_computed(computed)
        self._counter.record_pruned(pruned)
        self._assign_computed += computed
        self._assign_pruned += pruned
        return current

    def assign_many(self, points: PointMatrix) -> np.ndarray:
        points = self._validated_points(points)
        num_points = points.shape[0]
        result = np.empty(num_points, dtype=np.int64)
        if num_points == 0:
            # No RNG draw in either mode: empty batches are invisible
            # to both the main stream and the substream contract.
            return result
        num = self._locations.shape[0]
        if num == 1:
            # Matches assign(): one computed distance per point, and the
            # RNG is never consulted (there is nothing to probe).
            self._counter.record_computed(num_points)
            self._assign_computed += num_points
            result[:] = 0
            return result
        if self._use_seed_index and self._seed_index is None:
            self._seed_index = SeedIndex(
                self._locations,
                k=self._index_k,
                backend=self._index_backend,
            )
        block = self._block_size
        if block is None:
            block = max(DEFAULT_BLOCK_SIZE, _TI_BLOCK_ELEMENTS // num)
        if self._workers >= 1:
            return self._assign_many_parallel(points, result, block)
        for start in range(0, num_points, block):
            chunk = points[start : start + block]
            with maybe_span(
                self.obs, "assign_block", points=chunk.shape[0]
            ):
                result[start : start + chunk.shape[0]] = self._assign_block(
                    chunk
                )
        return result

    def _assign_many_parallel(
        self, points: np.ndarray, result: np.ndarray, block: int
    ) -> np.ndarray:
        """Run the lockstep blocks as parallel tasks and merge in order.

        One 64-bit entropy draw from the main RNG per call — never more,
        never fewer — keeps the main stream's advance independent of
        input size, block partition and worker count; each block then
        runs under its :func:`~repro.core.parallel.block_rng` substream.
        Children cannot touch the parent's counters, so the per-block
        (computed, pruned, index-pruned) tallies travel back with the
        indices and are recorded here once, in block order.
        """
        num_points = points.shape[0]
        blocks = [
            (start, min(start + block, num_points))
            for start in range(0, num_points, block)
        ]
        entropy = int(
            self._rng.integers(0, 2**64, dtype=np.uint64)
        )
        with maybe_span(
            self.obs,
            "assign_parallel",
            points=num_points,
            workers=self._workers,
            blocks=len(blocks),
        ):
            outputs = run_blocks(
                self._assign_block_task,
                points,
                blocks,
                entropy,
                self._workers,
            )
        computed = 0
        lemma_pruned = 0
        index_pruned = 0
        for (start, stop), out in zip(blocks, outputs):
            indices, block_computed, block_lemma, block_index = out
            result[start:stop] = indices
            computed += block_computed
            lemma_pruned += block_lemma
            index_pruned += block_index
        self._record_block(computed, lemma_pruned, index_pruned)
        return result

    def _record_block(
        self, computed: int, lemma_pruned: int, index_pruned: int
    ) -> None:
        """Fold one block's tallies into the counter and attributes.

        Index skips count as pruned — same conservation law as Lemma 1:
        ``computed + pruned`` per point always sums to ``B``.
        """
        pruned = lemma_pruned + index_pruned
        self._counter.record_computed(int(computed))
        self._counter.record_pruned(int(pruned))
        self._assign_computed += int(computed)
        self._assign_pruned += int(pruned)
        self._assign_index_pruned += int(index_pruned)

    def _workspace(
        self, rows: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Preallocated (permutations, membership, cursor) workspaces."""
        if self._ws_cand is None or self._ws_cand.shape[0] < rows:
            num = self._locations.shape[0]
            self._ws_cand = np.empty((rows, num), dtype=np.int64)
            self._ws_active = np.empty((rows, num), dtype=bool)
            self._ws_cursor = np.empty(rows, dtype=np.int64)
        return (
            self._ws_cand[:rows],
            self._ws_active[:rows],
            self._ws_cursor[:rows],
        )

    def _assign_block(self, points: np.ndarray) -> np.ndarray:
        """Serial per-block wrapper: main RNG, immediate accounting."""
        member, gate = self._index_candidates(points)
        indices, computed, lemma_pruned, index_pruned = (
            self._assign_block_core(
                points, self._rng, member, gate
            )
        )
        # Block-granular accounting: totals identical to per-point
        # scalar recording, at two counter calls per block instead of 2m.
        self._record_block(computed, lemma_pruned, index_pruned)
        return indices

    def _assign_block_task(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, int, int, int]:
        """Pure per-block task for the parallel runner.

        Runs in a forked child (or inline under ``workers=1``): derives
        the block's candidates, runs the lockstep core under the given
        substream and returns the tallies instead of recording them —
        the parent owns the shared counter.
        """
        member, gate = self._index_candidates(points)
        return self._assign_block_core(points, rng, member, gate)

    def _index_candidates(
        self, points: np.ndarray
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Per-block (membership, gate) from the seed index, if any."""
        if self._seed_index is None:
            return None, None
        return self._seed_index.candidates(points)

    def _assign_block_core(
        self,
        points: np.ndarray,
        rng: np.random.Generator,
        member: np.ndarray | None = None,
        gate: np.ndarray | None = None,
    ) -> tuple[np.ndarray, int, int, int]:
        """Figure 2 in lockstep over one block of points.

        Candidate bookkeeping is *by seed value*: each point carries a
        boolean membership mask over seeds plus a cursor into its private
        probing permutation. Because a pruned candidate never returns, a
        seed is still in the scalar loop's candidate list exactly when it
        has passed every Lemma 1 test fired for that point so far —
        membership is a pure conjunction of the tests, independent of the
        order they fired in. A prune pass over the improved rows is
        therefore one row-select from the seed matrix, one compare and
        one masked AND — no index gathers and no list compaction. The
        probe reproduces the scalar loop's pop of the compacted list's
        tail: the surviving seed at the highest permutation position,
        found by stepping each cursor leftwards past removed values (each
        removed value is stepped past at most once per point, so the scan
        costs amortised O(B) per point).

        Accounting matches the scalar loop pass for pass: a prune pass
        counts exactly the members it clears, and probed seeds leave the
        mask at probe time (as the scalar loop pops them from its list)
        so no later pass can recount them. One algebraic shortcut keeps
        the rounds cheap: a prune pass whose ``(current, minDist)`` did
        not change since the previous pass is a provable no-op (every
        member already survived the identical Lemma 1 test), so only rows
        whose probe just *improved* minDist re-enter the prune pass.
        Assignments, accounting and RNG consumption are untouched by the
        skip.

        **Spatial collapse (``member``/``gate`` given).** The moment a
        row's ``minDist`` drops to ``<= gate``, every one of its
        still-active non-member seeds is removed in one masked AND and
        tallied as index-pruned. Each removed seed is provably inert:
        its exact distance is ``>= gate >= minDist``, so its probe could
        not improve the row under the strict ``<`` update, and a probe
        that does not improve ``minDist`` changes nothing else — not
        the probing order of the other candidates (permutations are
        pre-drawn for the whole block), not the Lemma-1 dynamics (only
        improvements re-enter the prune pass), not the RNG. Removing it
        early therefore leaves assignments and the RNG stream
        bit-identical to the plain kernel while skipping the probe's
        distance *and* its share of cursor stepping and prune-pass
        work — which is why the collapse outruns a probe-by-probe skip.
        Accounting is conserved: per point ``computed + lemma_pruned +
        index_pruned`` still sums to ``B``, and the computed count is
        ``<=`` the plain kernel's (every collapsed seed would have cost
        either a computed probe or a Lemma-1 prune there).

        Returns:
            ``(indices, computed, lemma_pruned, index_pruned)`` — the
            block's assignments plus its accounting tallies. The caller
            records them (serial: immediately; parallel: merged in the
            parent), keeping this core pure enough to run in a forked
            worker against copy-on-write state.
        """
        rows = points.shape[0]
        num = self._locations.shape[0]
        locations = self._locations
        seed_dists = self._seed_dists
        cand, active, cursor = self._workspace(rows)

        # Per-point probing permutations, drawn one Fisher–Yates at a time
        # in point order so the RNG stream is bit-identical to a scalar
        # assign() loop over the same points. ``Generator.permutation(n)``
        # is exactly ``arange(n)`` + ``shuffle`` — shuffling prefilled
        # rows in place consumes the identical draw sequence while
        # skipping one allocation and copy per point.
        cand[:, :] = np.arange(num)
        for i in range(rows):
            rng.shuffle(cand[i])

        # "select and remove a random seed s_i": the scalar loop pops the
        # permutation's last element first.
        row_iota = np.arange(rows)
        current = cand[:, num - 1].copy()
        min_dist = row_norms(locations[current] - points)
        computed = rows
        pruned = 0
        index_pruned = 0

        active[:, :] = True
        active[row_iota, current] = False
        cursor[:] = num - 2
        alive = row_iota
        to_prune = alive
        # Rows that have not yet collapsed to their spatial candidate
        # set; None when no index is in play.
        uncollapsed = None if member is None else np.ones(rows, dtype=bool)

        while True:
            if to_prune.size:
                if uncollapsed is not None:
                    # Spatial collapse: rows whose minDist just reached
                    # the gate drop every active non-member at once
                    # (each is provably non-improving; see above).
                    gated = to_prune[
                        uncollapsed[to_prune]
                        & (min_dist[to_prune] <= gate[to_prune])
                    ]
                    if gated.size:
                        mem = member[gated]
                        act = active[gated]
                        index_pruned += int(
                            np.count_nonzero(act & ~mem)
                        )
                        active[gated] = act & mem
                        uncollapsed[gated] = False
                # Lemma 1 by value: members failing the current test leave
                # the mask; already-removed seeds stay removed (AND is
                # monotone) and are never recounted.
                keep = (
                    seed_dists[current[to_prune]]
                    < 2.0 * min_dist[to_prune, None]
                )
                act = active[to_prune]
                pruned += int(np.count_nonzero(act & ~keep))
                active[to_prune] = act & keep

            # Advance each live cursor to its row's rightmost surviving
            # candidate; rows whose cursor runs off the left edge are done
            # (their scalar loop would see an empty candidate list).
            pending = alive
            while pending.size:
                pos = cursor[pending]
                in_range = pos >= 0
                live = pending[in_range]
                lpos = pos[in_range]
                ok = active[live, cand[live, lpos]]
                stuck = live[~ok]
                cursor[stuck] -= 1
                pending = stuck
            alive = alive[cursor[alive] >= 0]
            if alive.size == 0:
                break

            # Probe each survivor's tail candidate (the same uniformly
            # random probe the scalar loop pops).
            pos = cursor[alive]
            probes = cand[alive, pos]
            active[alive, probes] = False
            cursor[alive] = pos - 1
            dists = row_norms(locations[probes] - points[alive])
            computed += alive.size
            better = dists < min_dist[alive]
            improved = alive[better]
            current[improved] = probes[better]
            min_dist[improved] = dists[better]
            to_prune = improved

        return current.copy(), int(computed), int(pruned), index_pruned


class AssignerCache:
    """Reuses one assigner while the bubble set it reflects is unchanged.

    Building a :class:`TriangleInequalityAssigner` costs the ``B·(B-1)/2``
    seed-to-seed matrix; maintainers that assign several batches against
    an unchanged summary (or run several redistribution steps against the
    same candidate set) should not pay it repeatedly. The cache keys on
    the :attr:`BubbleSet.version <repro.core.bubble_set.BubbleSet.version>`
    mutation counter plus the candidate id subset and the pruning flag, so
    any mutation of any bubble — absorb, release, reseed, clear, restore —
    invalidates it.

    The shared ``counter`` and ``rng`` are captured at construction of the
    cached assigner; callers must pass the same objects on every ``get``
    (the maintainers do — both live for the maintainer's lifetime).
    Accounting note: a cache *hit* spends no setup distance computations,
    and honestly records none.
    """

    __slots__ = ("_key", "_assigner", "hits", "misses")

    def __init__(self) -> None:
        self._key: tuple | None = None
        self._assigner: Assigner | None = None
        self.hits = 0
        self.misses = 0

    def invalidate(self) -> None:
        """Drop the cached assigner unconditionally."""
        self._key = None
        self._assigner = None

    def get(
        self,
        bubbles,
        counter: DistanceCounter,
        use_triangle_inequality: bool = True,
        rng: np.random.Generator | None = None,
        active_ids: np.ndarray | list | None = None,
        obs=None,
        use_seed_index: bool = False,
        workers: int = 0,
    ) -> Assigner:
        """The cached assigner, rebuilt only when the bubble set changed.

        Args:
            bubbles: the :class:`~repro.core.bubble_set.BubbleSet` whose
                representatives are the candidate locations.
            counter, use_triangle_inequality, rng: as for
                :func:`make_assigner`.
            active_ids: optional id subset to assign among (e.g. the
                adaptive maintainer's non-retired bubbles, or a merge's
                everything-but-the-donor set); ``None`` means all bubbles.
            obs: observability handle stamped onto the assigner (hit or
                miss) so block spans follow the caller; deliberately NOT
                part of the cache key — instrumentation must never change
                cache behaviour.
            use_seed_index, workers: as for :func:`make_assigner`; part
                of the cache key, so flipping either rebuilds the
                assigner. A cache hit also reuses the assigner's lazily
                built :class:`~repro.core.seed_index.SeedIndex` — this
                is how the index stays keyed on ``bubbles.version``
                without its own invalidation machinery.
        """
        key = (
            bubbles.version,
            None
            if active_ids is None
            else tuple(int(i) for i in active_ids),
            bool(use_triangle_inequality),
            bool(use_seed_index),
            int(workers),
        )
        if self._assigner is not None and key == self._key:
            self.hits += 1
            self._assigner.obs = obs
            return self._assigner
        reps = bubbles.reps()
        if active_ids is not None:
            reps = reps[np.asarray(active_ids, dtype=np.int64)]
        self._assigner = make_assigner(
            reps,
            counter=counter,
            use_triangle_inequality=use_triangle_inequality,
            rng=rng,
            obs=obs,
            use_seed_index=use_seed_index,
            workers=workers,
        )
        self._key = key
        self.misses += 1
        return self._assigner


def make_assigner(
    locations: PointMatrix,
    counter: DistanceCounter | None = None,
    use_triangle_inequality: bool = True,
    rng: np.random.Generator | None = None,
    obs=None,
    use_seed_index: bool = False,
    workers: int = 0,
) -> Assigner:
    """Factory selecting the pruning or naive assigner.

    Single-location sets short-circuit to the naive assigner — with one
    seed there is nothing to prune (``use_seed_index`` and ``workers``
    are meaningless there and are ignored).
    """
    locations = np.asarray(locations, dtype=np.float64)
    if use_triangle_inequality and locations.shape[0] > 1:
        return TriangleInequalityAssigner(
            locations,
            counter,
            rng,
            obs=obs,
            use_seed_index=use_seed_index,
            workers=workers,
        )
    return NaiveAssigner(locations, counter, obs=obs)
