"""Assignment of points to their closest bubble seed.

Section 3 of the paper speeds up the construction (and incremental
maintenance) of data bubbles by pruning distance computations with the
triangle inequality:

**Lemma 1.** Let ``p`` be a database point and ``s_B1``, ``s_B2`` seeds of
two bubbles. If ``dist(s_B1, s_B2) >= 2 · dist(p, s_B1)`` then
``dist(p, s_B1) <= dist(p, s_B2)`` — so ``s_B2`` can be discarded without
computing ``dist(p, s_B2)``.

:class:`TriangleInequalityAssigner` implements the pseudocode of Figure 2
verbatim (candidate set, random probing, pruning against the current
candidate), on top of a precomputed seed-to-seed distance matrix.
:class:`NaiveAssigner` is the unpruned baseline that compares against every
seed; the complete-rebuild experiments of Figure 11 use it.

Both assigners account every conceptual distance computation either as
*computed* or as *pruned* so the experiments of Figures 10–11 can be
reproduced exactly in the paper's own metric. The cost of building the
seed matrix is tracked separately (:attr:`setup_computed`) because the
paper reports the assignment-phase pruning factor net of that (small)
overhead while still acknowledging it.
"""

from __future__ import annotations

import numpy as np

from ..geometry import DistanceCounter, pairwise
from ..types import Point, PointMatrix

__all__ = [
    "Assigner",
    "NaiveAssigner",
    "TriangleInequalityAssigner",
    "make_assigner",
]


class Assigner:
    """Common interface: map points to the index of their closest location.

    Args:
        locations: ``(B, d)`` matrix of bubble seeds/representatives.
        counter: shared :class:`DistanceCounter`; a private one is created
            when omitted.
    """

    def __init__(
        self,
        locations: PointMatrix,
        counter: DistanceCounter | None = None,
    ) -> None:
        locations = np.ascontiguousarray(locations, dtype=np.float64)
        if locations.ndim != 2 or locations.shape[0] == 0:
            raise ValueError(
                f"locations must be a non-empty (B, d) matrix, got shape "
                f"{locations.shape}"
            )
        self._locations = locations
        self._counter = counter if counter is not None else DistanceCounter()
        self._assign_computed = 0
        self._assign_pruned = 0

    @property
    def num_locations(self) -> int:
        """How many candidate locations the assigner chooses among."""
        return int(self._locations.shape[0])

    @property
    def locations(self) -> np.ndarray:
        """The candidate locations (read-only view)."""
        view = self._locations.view()
        view.flags.writeable = False
        return view

    @property
    def counter(self) -> DistanceCounter:
        """The distance counter receiving this assigner's accounting."""
        return self._counter

    @property
    def assign_computed(self) -> int:
        """Distance computations executed during point assignment."""
        return self._assign_computed

    @property
    def assign_pruned(self) -> int:
        """Distance computations avoided during point assignment."""
        return self._assign_pruned

    @property
    def pruned_fraction(self) -> float:
        """Fraction of assignment-phase computations avoided (Figure 10)."""
        considered = self._assign_computed + self._assign_pruned
        if considered == 0:
            return 0.0
        return self._assign_pruned / considered

    def assign(self, point: Point) -> int:
        """Index of the closest location for one point."""
        raise NotImplementedError

    def assign_many(self, points: PointMatrix) -> np.ndarray:
        """Indices of the closest locations for each row of ``points``."""
        points = np.asarray(points, dtype=np.float64)
        result = np.empty(points.shape[0], dtype=np.int64)
        for i, point in enumerate(points):
            result[i] = self.assign(point)
        return result


class NaiveAssigner(Assigner):
    """Full-scan nearest-seed assignment (no pruning).

    The baseline of Section 3: "the distance between p and all the seeds
    has to be determined". Every point costs exactly ``B`` distance
    computations.
    """

    def assign(self, point: Point) -> int:
        dists = self._counter.point_to_points(point, self._locations)
        self._assign_computed += self._locations.shape[0]
        return int(np.argmin(dists))

    def assign_many(self, points: PointMatrix) -> np.ndarray:
        # Vectorised but identically accounted: m · B computations.
        points = np.asarray(points, dtype=np.float64)
        if points.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        count = points.shape[0] * self._locations.shape[0]
        self._counter.record_computed(count)
        self._assign_computed += count
        diff_sq = (
            np.einsum("ij,ij->i", points, points)[:, None]
            + np.einsum("ij,ij->i", self._locations, self._locations)[None, :]
            - 2.0 * (points @ self._locations.T)
        )
        return np.argmin(diff_sq, axis=1).astype(np.int64)


class TriangleInequalityAssigner(Assigner):
    """Lemma 1 pruning assigner — the pseudocode of Figure 2.

    On construction the pairwise distances among all locations are computed
    once (``B·(B-1)/2`` computations, tracked in :attr:`setup_computed`).
    Per point, candidates are pruned against the current best candidate
    ``s_c``: every remaining seed ``s_j`` with
    ``dist(s_j, s_c) >= 2 · minDist`` cannot be closer than ``s_c`` and is
    discarded without a distance computation.

    Args:
        locations: ``(B, d)`` seed matrix.
        counter: shared distance counter.
        rng: randomness source for the random candidate probing of
            Figure 2; a fresh default generator is used when omitted.
        count_setup: whether the seed-matrix construction cost is also
            recorded into ``counter`` (it always shows in
            :attr:`setup_computed`).
    """

    def __init__(
        self,
        locations: PointMatrix,
        counter: DistanceCounter | None = None,
        rng: np.random.Generator | None = None,
        count_setup: bool = True,
    ) -> None:
        super().__init__(locations, counter)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._seed_dists = pairwise(self._locations)
        b = self._locations.shape[0]
        self._setup_computed = b * (b - 1) // 2
        if count_setup:
            self._counter.record_computed(self._setup_computed)

    @property
    def setup_computed(self) -> int:
        """Distance computations spent on the seed-to-seed matrix."""
        return self._setup_computed

    def assign(self, point: Point) -> int:
        locations = self._locations
        num = locations.shape[0]
        if num == 1:
            self._counter.record_computed(1)
            self._assign_computed += 1
            return 0

        # "set CandidateSeeds to the set of all seeds of data bubbles"
        order = self._rng.permutation(num)
        candidates = order.tolist()

        # "select and remove a random seed s_i ... compute minDist"
        current = candidates.pop()
        diff = locations[current] - point
        min_dist = float(np.sqrt(np.dot(diff, diff)))
        computed = 1

        pruned = 0
        remaining = np.asarray(candidates, dtype=np.int64)
        while remaining.size:
            # Prune every s_j with dist(s_j, s_c) >= 2 · minDist (Lemma 1).
            keep_mask = self._seed_dists[current, remaining] < 2.0 * min_dist
            pruned += int(remaining.size - keep_mask.sum())
            remaining = remaining[keep_mask]
            if remaining.size == 0:
                break
            # "select and remove a random seed s_j; compute dist(p, s_j)"
            # `remaining` preserves the initial random permutation, so
            # popping the last element is a uniformly random probe.
            probe = int(remaining[-1])
            remaining = remaining[:-1]
            diff = locations[probe] - point
            dist = float(np.sqrt(np.dot(diff, diff)))
            computed += 1
            if dist < min_dist:
                current = probe
                min_dist = dist

        self._counter.record_computed(computed)
        self._counter.record_pruned(pruned)
        self._assign_computed += computed
        self._assign_pruned += pruned
        return current


def make_assigner(
    locations: PointMatrix,
    counter: DistanceCounter | None = None,
    use_triangle_inequality: bool = True,
    rng: np.random.Generator | None = None,
) -> Assigner:
    """Factory selecting the pruning or naive assigner.

    Single-location sets short-circuit to the naive assigner — with one
    seed there is nothing to prune.
    """
    locations = np.asarray(locations, dtype=np.float64)
    if use_triangle_inequality and locations.shape[0] > 1:
        return TriangleInequalityAssigner(locations, counter, rng)
    return NaiveAssigner(locations, counter)
