"""The paper's primary contribution: incremental data bubbles.

Public surface:

* :class:`DataBubble`, :class:`BubbleSet` — the summary objects
  (Definition 1 over sufficient statistics).
* :class:`BubbleBuilder` + :class:`BubbleConfig` — static construction
  with triangle-inequality-pruned assignment (Section 3).
* :class:`NaiveAssigner` / :class:`TriangleInequalityAssigner` — the
  Figure 2 assignment algorithms.
* :class:`SeedIndex` — spatial candidate generation (KD-tree/grid)
  layered under the triangle-inequality batch kernel.
* :class:`BetaQuality` / :class:`ExtentQuality` and
  :class:`QualityReport` — compression-quality classification
  (Definitions 2–3).
* :class:`IncrementalMaintainer` + :class:`MaintenanceConfig` — the
  Section 4 scheme, with :func:`merge_bubble` / :func:`split_bubble` as
  the Figure 6 operations.
* :class:`CompleteRebuildMaintainer` — the from-scratch baseline.
"""

from .adaptive import AdaptiveMaintainer
from .audit import AuditReport, InvariantAuditor
from .assignment import (
    Assigner,
    AssignerCache,
    NaiveAssigner,
    TriangleInequalityAssigner,
    make_assigner,
)
from .bubble import DataBubble
from .bubble_set import BubbleSet
from .builder import BubbleBuilder
from .config import (
    BubbleConfig,
    DonorPolicy,
    MaintenanceConfig,
    SplitStrategy,
    chebyshev_k,
)
from .extent_quality import ExtentQuality
from .maintenance import BatchReport, IncrementalMaintainer
from .quality import (
    BetaQuality,
    BubbleClass,
    QualityMeasure,
    QualityReport,
    classify_values,
)
from .rebuild import CompleteRebuildMaintainer
from .seed_index import SeedIndex, default_candidate_count
from .split_merge import merge_bubble, rebuild_pair, split_bubble
from .validate import (
    BAD_POINT_POLICIES,
    ConsistencyReport,
    RejectedPoint,
    ScreenedChunk,
    screen_chunk,
    verify_consistency,
)

__all__ = [
    "AdaptiveMaintainer",
    "Assigner",
    "AssignerCache",
    "AuditReport",
    "BAD_POINT_POLICIES",
    "BatchReport",
    "BetaQuality",
    "BubbleBuilder",
    "BubbleClass",
    "BubbleConfig",
    "BubbleSet",
    "CompleteRebuildMaintainer",
    "ConsistencyReport",
    "DataBubble",
    "DonorPolicy",
    "ExtentQuality",
    "IncrementalMaintainer",
    "InvariantAuditor",
    "MaintenanceConfig",
    "NaiveAssigner",
    "QualityMeasure",
    "QualityReport",
    "RejectedPoint",
    "ScreenedChunk",
    "SeedIndex",
    "SplitStrategy",
    "TriangleInequalityAssigner",
    "chebyshev_k",
    "classify_values",
    "default_candidate_count",
    "make_assigner",
    "merge_bubble",
    "rebuild_pair",
    "screen_chunk",
    "split_bubble",
    "verify_consistency",
]
