"""Configuration for bubble construction and incremental maintenance.

All tunables of Sections 3–4 live here as validated dataclasses so a bad
parameter fails loudly at construction time. The defaults follow the paper:

* the Chebyshev probability ``p`` is 0.90 (Section 5: "The probability
  needed to determine the boundaries of the classes of the data bubbles
  ... was set to 90%");
* the triangle-inequality pruning of Section 3 is on by default;
* the synchronized merge/split pass "is repeated after updating the
  database with each batch" (Section 4.2) — read here as: re-classify and
  split again until no over-filled bubble remains, bounded by
  ``rebuild_rounds`` (default 2). Setting ``rebuild_rounds = 1`` gives
  the strictly-single-pass ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from ..exceptions import InvalidConfigError

__all__ = [
    "BubbleConfig",
    "MaintenanceConfig",
    "DonorPolicy",
    "SplitStrategy",
    "chebyshev_k",
]


def chebyshev_k(probability: float) -> float:
    """The ``k`` for which Chebyshev guarantees mass ``probability`` within ``k·σ``.

    Chebyshev's inequality gives ``P(|X - μ| < k·σ) >= 1 - 1/k²``; solving
    ``1 - 1/k² = p`` yields ``k = 1 / sqrt(1 - p)``. For the paper's default
    ``p = 0.9`` this is ``k = √10 ≈ 3.162``.

    Raises:
        InvalidConfigError: unless ``0 < probability < 1``.
    """
    if not 0.0 < probability < 1.0:
        raise InvalidConfigError(
            f"Chebyshev probability must lie in (0, 1), got {probability}"
        )
    return 1.0 / math.sqrt(1.0 - probability)


class DonorPolicy(Enum):
    """How the maintainer picks the bubble that is migrated to split an
    over-filled bubble (Section 4.2).

    * ``UNDERFILLED_FIRST`` — the paper's scheme: use an under-filled bubble
      when one exists, otherwise the lowest-β "good" bubble.
    * ``LOWEST_BETA`` — ablation: always take the globally lowest-β bubble
      regardless of its class.
    """

    UNDERFILLED_FIRST = "underfilled-first"
    LOWEST_BETA = "lowest-beta"


class SplitStrategy(Enum):
    """How the two new seeds of a split are drawn from the over-filled
    bubble's member points (Figure 6 says only "selecting a new seed ...
    from the current points").

    * ``RANDOM`` — both seeds are distinct uniform random members. With an
      over-filled bubble dominated by one absorbed substructure, both
      seeds usually land inside that substructure and the bubble's
      far-flung minority points stay attached to distant seeds
      indefinitely (no later pass re-homes points of "good" bubbles), so
      compactness never recovers. Kept as an ablation.
    * ``FARTHEST`` — the default: the first seed is random, the second is
      the member farthest from it. This costs one distance scan over the
      bubble's members and separates merged substructures in one shot,
      which is what reproduces Table 1's "incremental compactness is
      comparable to complete rebuilds" behaviour.
    """

    RANDOM = "random"
    FARTHEST = "farthest"


@dataclass(frozen=True)
class BubbleConfig:
    """Parameters of static bubble construction (Section 3).

    Attributes:
        num_bubbles: how many bubbles summarize the database — the paper's
            compression-rate knob (step 1 samples this many seeds).
        use_triangle_inequality: whether point-to-seed assignment uses the
            Lemma 1 pruning (Figure 2) or the naive full scan.
        seed: RNG seed for the random seed-point sampling.
        use_seed_index: layer a spatial candidate index (KD-tree/grid)
            under the Lemma 1 pruning so the batch engine can skip
            provably hopeless probes. Assignments stay bit-identical;
            computed distance counts only shrink. Off by default — the
            plain kernel is the reference the parity tests pin down.
        assign_workers: worker-pool size for batch assignment; ``0``
            (the default) is the serial bit-reproducible reference,
            ``>= 1`` switches to the documented per-block substream
            contract (results independent of the worker count).
    """

    num_bubbles: int
    use_triangle_inequality: bool = True
    seed: int | None = None
    use_seed_index: bool = False
    assign_workers: int = 0

    def __post_init__(self) -> None:
        if self.num_bubbles < 1:
            raise InvalidConfigError(
                f"num_bubbles must be >= 1, got {self.num_bubbles}"
            )
        if self.assign_workers < 0:
            raise InvalidConfigError(
                f"assign_workers must be >= 0, got {self.assign_workers}"
            )


@dataclass(frozen=True)
class MaintenanceConfig:
    """Parameters of the incremental maintenance scheme (Section 4).

    Attributes:
        probability: the Chebyshev probability ``p`` delimiting "good"
            bubbles; the class boundaries are ``μ_β ± k·σ_β`` with
            ``k = 1/sqrt(1-p)``.
        rebuild_rounds: how many classification → merge/split passes run per
            batch. ``1`` is the paper's scheme; larger values iterate until
            either no over-filled bubble remains or the round budget is
            exhausted.
        donor_policy: how split donors are selected.
        split_strategy: how the two new seeds of a split are drawn.
        use_triangle_inequality: whether incremental point assignment uses
            the Lemma 1 pruning.
        seed: RNG seed for the random choices inside merge/split (new seed
            selection from an over-filled bubble's points).
        use_seed_index: as for :class:`BubbleConfig` — spatial candidate
            skipping under Lemma 1 for every batch assignment the
            maintainer runs (insertion, merge redistribution). Off by
            default.
        assign_workers: as for :class:`BubbleConfig` — batch-assignment
            worker-pool size; ``0`` keeps the serial reference path.
    """

    probability: float = 0.9
    rebuild_rounds: int = 2
    donor_policy: DonorPolicy = DonorPolicy.UNDERFILLED_FIRST
    split_strategy: SplitStrategy = SplitStrategy.FARTHEST
    use_triangle_inequality: bool = True
    seed: int | None = None
    use_seed_index: bool = False
    assign_workers: int = 0

    def __post_init__(self) -> None:
        # Validates the probability range as a side effect.
        chebyshev_k(self.probability)
        if self.rebuild_rounds < 1:
            raise InvalidConfigError(
                f"rebuild_rounds must be >= 1, got {self.rebuild_rounds}"
            )
        if self.assign_workers < 0:
            raise InvalidConfigError(
                f"assign_workers must be >= 0, got {self.assign_workers}"
            )

    @property
    def k(self) -> float:
        """The Chebyshev ``k`` implied by :attr:`probability`."""
        return chebyshev_k(self.probability)
