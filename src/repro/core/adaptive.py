"""Adaptive bubble count — the paper's Section 6 future-work extension.

The published scheme maintains a *fixed* number of bubbles and recycles
under-filled ones; the conclusions list "investigating how to dynamically
increase or decrease the number of incremental data bubbles" as future
work. :class:`AdaptiveMaintainer` implements a straightforward version of
that idea on top of the fixed-count machinery:

* a target **compression rate** is expressed as *points per bubble*; after
  every batch the active bubble count is steered toward
  ``N / points_per_bubble`` (bounded by ``max_adjust_per_batch``);
* **growth** appends a fresh bubble and immediately splits the currently
  fullest (highest-β) bubble into it — the Figure 6 split with a brand-new
  (rather than recycled) donor;
* **shrinking** retires the emptiest active bubble: its points are merged
  away to their next-closest active bubbles and the bubble id is parked in
  a retired set that no assignment, donor selection or merge will touch
  again (ids stay dense and stable, which the rest of the system relies
  on). Retired bubbles are *revived* first when growth is needed later.

Everything else — deletions, insertions, β classification, merge/split
quality repair — is inherited unchanged.
"""

from __future__ import annotations

from ..database import PointStore, UpdateBatch
from ..exceptions import InvalidConfigError
from ..geometry import DistanceCounter
from ..observability import Observability
from ..observability.spans import maybe_span
from .bubble_set import BubbleSet
from .config import MaintenanceConfig
from .maintenance import BatchReport, IncrementalMaintainer
from .quality import QualityMeasure, QualityReport
from .split_merge import merge_bubble, split_bubble

__all__ = ["AdaptiveMaintainer"]


class AdaptiveMaintainer(IncrementalMaintainer):
    """Incremental maintainer that also steers the number of bubbles.

    Args:
        bubbles: the summary to maintain.
        store: the database it describes.
        points_per_bubble: target compression rate; the active bubble
            count is steered toward ``store.size / points_per_bubble``.
        max_adjust_per_batch: at most this many bubbles are added or
            retired per batch (keeps adjustments incremental too).
        config, quality, counter, obs: as for
            :class:`~repro.core.maintenance.IncrementalMaintainer`.
    """

    def __init__(
        self,
        bubbles: BubbleSet,
        store: PointStore,
        points_per_bubble: int,
        max_adjust_per_batch: int = 4,
        config: MaintenanceConfig | None = None,
        quality: QualityMeasure | None = None,
        counter: DistanceCounter | None = None,
        obs: Observability | None = None,
    ) -> None:
        if points_per_bubble < 1:
            raise InvalidConfigError(
                f"points_per_bubble must be >= 1, got {points_per_bubble}"
            )
        if max_adjust_per_batch < 1:
            raise InvalidConfigError(
                f"max_adjust_per_batch must be >= 1, got "
                f"{max_adjust_per_batch}"
            )
        super().__init__(
            bubbles,
            store,
            config=config,
            quality=quality,
            counter=counter,
            obs=obs,
        )
        self._points_per_bubble = points_per_bubble
        self._max_adjust = max_adjust_per_batch
        self._retired: set[int] = set()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def retired_ids(self) -> frozenset[int]:
        """Ids of currently retired (parked, empty) bubbles."""
        return frozenset(self._retired)

    @property
    def points_per_bubble(self) -> int:
        """The target compression rate being steered toward."""
        return self._points_per_bubble

    @property
    def max_adjust_per_batch(self) -> int:
        """Maximum bubbles added or retired per batch."""
        return self._max_adjust

    @property
    def active_count(self) -> int:
        """Number of non-retired bubbles."""
        return len(self._bubbles) - len(self._retired)

    @property
    def target_count(self) -> int:
        """The bubble count the maintainer is steering toward."""
        return max(1, round(self._store.size / self._points_per_bubble))

    def _active_ids(self) -> list[int]:
        return [
            b.bubble_id
            for b in self._bubbles
            if b.bubble_id not in self._retired
        ]

    # ------------------------------------------------------------------
    # Overridden steps: keep retired bubbles out of every assignment
    # ------------------------------------------------------------------
    def _assignable_ids(self) -> list[int] | None:
        """Insertions only ever target active (non-retired) bubbles.

        The inherited batch insertion path maps the assigner's indices
        back through this id list and shares the assigner cache, so the
        vectorized engine and seed-matrix reuse apply here unchanged.
        """
        return self._active_ids()

    def _donor_queue(self, report: QualityReport) -> list[int]:
        return [
            bubble_id
            for bubble_id in super()._donor_queue(report)
            if bubble_id not in self._retired
        ]

    def _merge_exclude(self) -> frozenset[int]:
        return frozenset(self._retired)

    def restore_retired(self, retired: frozenset[int] | set[int]) -> None:
        """Adopt a persisted retired-bubble set (recovery support).

        Only legal when every named bubble exists and is empty — a retired
        bubble never summarizes points, so anything else indicates a
        desynchronized snapshot.
        """
        retired = set(int(i) for i in retired)
        for bubble_id in retired:
            if not (0 <= bubble_id < len(self._bubbles)):
                raise ValueError(f"retired id {bubble_id} does not exist")
            if not self._bubbles[bubble_id].is_empty():
                raise ValueError(
                    f"retired bubble {bubble_id} still summarizes points"
                )
        self._retired = retired

    # ------------------------------------------------------------------
    # The adaptive step
    # ------------------------------------------------------------------
    def _apply_batch_inner(self, batch: UpdateBatch) -> BatchReport:
        report = super()._apply_batch_inner(batch)
        self._steer_count()
        return report

    def _steer_count(self) -> None:
        deficit = self.target_count - self.active_count
        if deficit == 0:
            return
        with maybe_span(self._obs, "adaptive_steer", deficit=deficit):
            if deficit > 0:
                for _ in range(min(deficit, self._max_adjust)):
                    self._grow_one()
            else:
                for _ in range(min(-deficit, self._max_adjust)):
                    if self.active_count <= 1:
                        break
                    self._shrink_one()

    def _grow_one(self) -> None:
        """Add (or revive) one bubble by splitting the fullest one."""
        counts = self._bubbles.counts()
        active = self._active_ids()
        fullest = max(active, key=lambda i: counts[i])
        if self._bubbles[fullest].n < 2:
            return  # nothing worth splitting
        if self._retired:
            # Revive a parked bubble instead of allocating a new id.
            new_id = self._retired.pop()
            revived = True
        else:
            seed = self._bubbles[fullest].rep.copy()
            new_id = self._bubbles.add_bubble(seed).bubble_id
            revived = False
        donor_n, over_n = split_bubble(
            self._bubbles,
            self._store,
            over_id=fullest,
            donor_id=new_id,
            counter=self._counter,
            rng=self._rng,
            strategy=self._config.split_strategy,
            obs=self._obs,
        )
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_adaptive_grows_total",
                help="Bubbles added (or revived) by adaptive count "
                "steering.",
            ).inc()
            self._obs.emit(
                "bubble_grow",
                split=int(fullest),
                new=int(new_id),
                revived=revived,
                donor_size=donor_n,
                over_size=over_n,
            )

    def _shrink_one(self) -> None:
        """Retire the emptiest active bubble, merging its points away."""
        counts = self._bubbles.counts()
        active = self._active_ids()
        emptiest = min(active, key=lambda i: counts[i])
        exclude = frozenset(self._retired | {emptiest})
        moved = merge_bubble(
            self._bubbles,
            self._store,
            emptiest,
            self._counter,
            use_triangle_inequality=self._config.use_triangle_inequality,
            rng=self._rng,
            exclude=exclude - {emptiest},
            assigner_cache=self._assigner_cache,
            obs=self._obs,
            use_seed_index=self._config.use_seed_index,
            workers=self._config.assign_workers,
        )
        self._retired.add(emptiest)
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_adaptive_retires_total",
                help="Bubbles retired by adaptive count steering.",
            ).inc()
            self._obs.emit(
                "bubble_retire", bubble=int(emptiest), points_migrated=moved
            )
