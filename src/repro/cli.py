"""Command-line entry point: regenerate the paper's tables and figures.

Usage (installed as ``repro-bubbles``, also ``python -m repro.cli``)::

    repro-bubbles table1   [--reps 10] [--size 10000] ...
    repro-bubbles figure7
    repro-bubbles figure9  [--reps 3]
    repro-bubbles figure10 [--reps 3]
    repro-bubbles figure11 [--reps 3]
    repro-bubbles all      [--quick]
    repro-bubbles summarize --wal-dir state/ [--resume] [--chunks 20] ...

Every evaluation command prints the corresponding table/series in the
paper's layout. ``--quick`` shrinks sizes/repetitions for a fast smoke run;
the defaults correspond to the numbers recorded in EXPERIMENTS.md.

``summarize`` runs a durable sliding-window summarization over a synthetic
drifting stream: chunks are write-ahead logged to ``--wal-dir`` before
being applied and the state is checkpointed every ``--checkpoint-every``
batches. Re-running with ``--resume`` recovers the summary (snapshot +
WAL-tail replay) and continues the stream where the previous process — or
crash — left off. See docs/PERSISTENCE.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from .experiments import (
    ExperimentConfig,
    construction_pruning,
    render_dimension_sweep,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
    render_figure11,
    render_size_sweep,
    render_staleness,
    render_table1,
    run_dimension_sweep,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_size_sweep,
    run_staleness,
    run_table1,
)
from .exceptions import ReproError
from .experiments.table1 import TABLE1_DATASETS
from .streaming import DurableSummarizer

__all__ = ["main", "build_parser"]


def _stream_chunk(seed: int, index: int, size: int):
    """Deterministic chunk ``index`` of the synthetic drifting stream.

    Each chunk is seeded independently from ``(seed, index)``, so a
    resumed process generates exactly the chunks a fresh one would —
    the stream itself is durable, not just the summary.
    """
    import numpy as np

    rng = np.random.default_rng((int(seed), int(index)))
    center = np.array([0.05 * index, -0.03 * index])
    return rng.normal(loc=center, scale=1.0, size=(size, 2))


def _run_summarize(args: argparse.Namespace) -> None:
    if args.wal_dir is None:
        raise SystemExit("summarize requires --wal-dir")
    fsync = not args.no_fsync
    if args.resume:
        stream = DurableSummarizer.recover(args.wal_dir, fsync=fsync)
        print(
            f"recovered {args.wal_dir}: {stream.batches_applied} batches "
            f"already applied, window holds {stream.size} points"
        )
    else:
        stream = DurableSummarizer(
            args.wal_dir,
            dim=2,
            window_size=args.window,
            points_per_bubble=args.points_per_bubble,
            seed=args.seed,
            checkpoint_every=args.checkpoint_every,
            fsync=fsync,
        )
        print(f"initialized durable state in {args.wal_dir}")
    start = stream.batches_applied
    for index in range(start, start + args.chunks):
        stream.append(_stream_chunk(args.seed, index, args.chunk_size))
    stream.close()  # final checkpoint + WAL truncation
    maintainer = stream.maintainer
    bubbles = (
        f"{maintainer.active_count} active bubbles"
        if maintainer is not None
        else "still buffering (no summary yet)"
    )
    totals = stream.counter.snapshot()
    print(
        f"appended {args.chunks} chunks ({args.chunks * args.chunk_size} "
        f"points); {stream.batches_applied} batches durable"
    )
    print(
        f"window {stream.size}/{stream.window_size} points, {bubbles}, "
        f"{totals.computed} distances computed "
        f"({totals.pruned_fraction:.0%} pruned)"
    )
    print(f"re-run with --resume --wal-dir {args.wal_dir} to continue")


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro-bubbles",
        description=(
            "Regenerate the evaluation of 'Incremental and Effective Data "
            "Summarization for Dynamic Hierarchical Clustering' "
            "(Nassar, Sander & Cheng, SIGMOD 2004)."
        ),
    )
    parser.add_argument(
        "command",
        choices=[
            "table1",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "scalability",
            "staleness",
            "summarize",
            "all",
        ],
        help="which artifact to regenerate (or 'summarize' to run a "
        "durable stream summarization)",
    )
    parser.add_argument(
        "--size", type=int, default=10_000,
        help="initial database size (default 10000)",
    )
    parser.add_argument(
        "--bubbles", type=int, default=100,
        help="number of data bubbles (default 100)",
    )
    parser.add_argument(
        "--batches", type=int, default=10,
        help="update batches per repetition (default 10)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="repetitions (default: 10 for table1, 3 for figures)",
    )
    parser.add_argument(
        "--update-fraction", type=float, default=0.05,
        help="per-batch update volume for table1 (default 0.05)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base RNG seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes and few repetitions (smoke run)",
    )
    durable = parser.add_argument_group(
        "summarize", "options for the durable streaming command"
    )
    durable.add_argument(
        "--wal-dir", default=None,
        help="durable state directory (required for 'summarize')",
    )
    durable.add_argument(
        "--resume", action="store_true",
        help="recover from --wal-dir instead of starting fresh",
    )
    durable.add_argument(
        "--chunks", type=int, default=20,
        help="stream chunks to append this run (default 20)",
    )
    durable.add_argument(
        "--chunk-size", type=int, default=500,
        help="points per stream chunk (default 500)",
    )
    durable.add_argument(
        "--window", type=int, default=5_000,
        help="sliding window capacity in points (default 5000)",
    )
    durable.add_argument(
        "--points-per-bubble", type=int, default=50,
        help="target compression rate (default 50)",
    )
    durable.add_argument(
        "--checkpoint-every", type=int, default=8,
        help="snapshot cadence in batches (default 8)",
    )
    durable.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on WAL appends/snapshots (faster; keeps "
        "process-crash durability, loses power-loss durability)",
    )
    return parser


def _base_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig(
        initial_size=args.size,
        num_bubbles=args.bubbles,
        num_batches=args.batches,
        update_fraction=args.update_fraction,
        seed=args.seed,
    )
    if args.quick:
        config = replace(
            config,
            initial_size=min(args.size, 3_000),
            num_bubbles=min(args.bubbles, 60),
            num_batches=min(args.batches, 4),
        )
    return config


def _run_command(command: str, args: argparse.Namespace) -> None:
    if command == "summarize":
        started = time.perf_counter()
        _run_summarize(args)
        print(f"\n[summarize finished in {time.perf_counter() - started:.1f}s]")
        return
    config = _base_config(args)
    table_reps = args.reps if args.reps is not None else (2 if args.quick else 10)
    figure_reps = args.reps if args.reps is not None else (2 if args.quick else 3)
    started = time.perf_counter()

    if command == "table1":
        datasets = TABLE1_DATASETS[:4] if args.quick else TABLE1_DATASETS
        rows = run_table1(config, repetitions=table_reps, datasets=datasets)
        print(render_table1(rows))
    elif command == "figure7":
        fig_config = replace(
            config,
            scenario="figure7",
            dim=2,
            initial_size=min(config.initial_size, 4_000),
            num_bubbles=min(config.num_bubbles, 50),
            update_fraction=0.1,
            num_batches=max(config.num_batches, 8),
        )
        print(render_figure7(run_figure7(fig_config)))
    elif command == "figure8":
        print(render_figure8(run_figure8(config)))
    elif command == "figure9":
        print(render_figure9(run_figure9(config, repetitions=figure_reps)))
    elif command == "figure10":
        points = run_figure10(config, repetitions=figure_reps)
        anchor = construction_pruning(
            replace(config, scenario="complex"), repetitions=figure_reps
        )
        print(render_figure10(points, construction=anchor))
    elif command == "figure11":
        print(render_figure11(run_figure11(config, repetitions=figure_reps)))
    elif command == "staleness":
        staleness_config = replace(
            config, scenario="complex", update_fraction=0.08,
            num_batches=max(config.num_batches, 10),
        )
        print(render_staleness(run_staleness(staleness_config, rebuild_every=5)))
    elif command == "scalability":
        sizes = (1_000, 2_500, 5_000) if args.quick else (
            2_500, 5_000, 10_000, 20_000
        )
        print(
            render_size_sweep(
                run_size_sweep(
                    config, sizes=sizes, repetitions=figure_reps
                )
            )
        )
        print()
        print(
            render_dimension_sweep(
                run_dimension_sweep(config, repetitions=figure_reps)
            )
        )
    else:
        raise ValueError(f"unknown command {command!r}")

    elapsed = time.perf_counter() - started
    print(f"\n[{command} finished in {elapsed:.1f}s]")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    commands = (
        [
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "scalability",
            "staleness",
            "table1",
        ]
        if args.command == "all"
        else [args.command]
    )
    try:
        for command in commands:
            _run_command(command, args)
            print()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
