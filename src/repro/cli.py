"""Command-line entry point: regenerate the paper's tables and figures.

Usage (installed as ``repro-bubbles``, also ``python -m repro.cli``)::

    repro-bubbles table1   [--reps 10] [--size 10000] ...
    repro-bubbles figure7
    repro-bubbles figure9  [--reps 3]
    repro-bubbles figure10 [--reps 3]
    repro-bubbles figure11 [--reps 3]
    repro-bubbles all      [--quick]

Every command prints the corresponding table/series in the paper's layout.
``--quick`` shrinks sizes/repetitions for a fast smoke run; the defaults
correspond to the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from .experiments import (
    ExperimentConfig,
    construction_pruning,
    render_dimension_sweep,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
    render_figure11,
    render_size_sweep,
    render_staleness,
    render_table1,
    run_dimension_sweep,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_size_sweep,
    run_staleness,
    run_table1,
)
from .experiments.table1 import TABLE1_DATASETS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro-bubbles",
        description=(
            "Regenerate the evaluation of 'Incremental and Effective Data "
            "Summarization for Dynamic Hierarchical Clustering' "
            "(Nassar, Sander & Cheng, SIGMOD 2004)."
        ),
    )
    parser.add_argument(
        "command",
        choices=[
            "table1",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "scalability",
            "staleness",
            "all",
        ],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--size", type=int, default=10_000,
        help="initial database size (default 10000)",
    )
    parser.add_argument(
        "--bubbles", type=int, default=100,
        help="number of data bubbles (default 100)",
    )
    parser.add_argument(
        "--batches", type=int, default=10,
        help="update batches per repetition (default 10)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="repetitions (default: 10 for table1, 3 for figures)",
    )
    parser.add_argument(
        "--update-fraction", type=float, default=0.05,
        help="per-batch update volume for table1 (default 0.05)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base RNG seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes and few repetitions (smoke run)",
    )
    return parser


def _base_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig(
        initial_size=args.size,
        num_bubbles=args.bubbles,
        num_batches=args.batches,
        update_fraction=args.update_fraction,
        seed=args.seed,
    )
    if args.quick:
        config = replace(
            config,
            initial_size=min(args.size, 3_000),
            num_bubbles=min(args.bubbles, 60),
            num_batches=min(args.batches, 4),
        )
    return config


def _run_command(command: str, args: argparse.Namespace) -> None:
    config = _base_config(args)
    table_reps = args.reps if args.reps is not None else (2 if args.quick else 10)
    figure_reps = args.reps if args.reps is not None else (2 if args.quick else 3)
    started = time.perf_counter()

    if command == "table1":
        datasets = TABLE1_DATASETS[:4] if args.quick else TABLE1_DATASETS
        rows = run_table1(config, repetitions=table_reps, datasets=datasets)
        print(render_table1(rows))
    elif command == "figure7":
        fig_config = replace(
            config,
            scenario="figure7",
            dim=2,
            initial_size=min(config.initial_size, 4_000),
            num_bubbles=min(config.num_bubbles, 50),
            update_fraction=0.1,
            num_batches=max(config.num_batches, 8),
        )
        print(render_figure7(run_figure7(fig_config)))
    elif command == "figure8":
        print(render_figure8(run_figure8(config)))
    elif command == "figure9":
        print(render_figure9(run_figure9(config, repetitions=figure_reps)))
    elif command == "figure10":
        points = run_figure10(config, repetitions=figure_reps)
        anchor = construction_pruning(
            replace(config, scenario="complex"), repetitions=figure_reps
        )
        print(render_figure10(points, construction=anchor))
    elif command == "figure11":
        print(render_figure11(run_figure11(config, repetitions=figure_reps)))
    elif command == "staleness":
        staleness_config = replace(
            config, scenario="complex", update_fraction=0.08,
            num_batches=max(config.num_batches, 10),
        )
        print(render_staleness(run_staleness(staleness_config, rebuild_every=5)))
    elif command == "scalability":
        sizes = (1_000, 2_500, 5_000) if args.quick else (
            2_500, 5_000, 10_000, 20_000
        )
        print(
            render_size_sweep(
                run_size_sweep(
                    config, sizes=sizes, repetitions=figure_reps
                )
            )
        )
        print()
        print(
            render_dimension_sweep(
                run_dimension_sweep(config, repetitions=figure_reps)
            )
        )
    else:
        raise ValueError(f"unknown command {command!r}")

    elapsed = time.perf_counter() - started
    print(f"\n[{command} finished in {elapsed:.1f}s]")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    commands = (
        [
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "scalability",
            "staleness",
            "table1",
        ]
        if args.command == "all"
        else [args.command]
    )
    for command in commands:
        _run_command(command, args)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
