"""Command-line entry point: regenerate the paper's tables and figures.

Usage (installed as ``repro-bubbles``, also ``python -m repro.cli``)::

    repro-bubbles table1   [--reps 10] [--size 10000] ...
    repro-bubbles figure7
    repro-bubbles figure9  [--reps 3]
    repro-bubbles figure10 [--reps 3]
    repro-bubbles figure11 [--reps 3]
    repro-bubbles all      [--quick]
    repro-bubbles summarize --wal-dir state/ [--resume] [--chunks 20] ...
    repro-bubbles stats     --wal-dir state/ [--format text|json|prom]
    repro-bubbles audit     --wal-dir state/ [--no-repair]
    repro-bubbles report    --wal-dir state/ [--format text|json]
    repro-bubbles cluster   --wal-dir state/ [--deadline 0.1] [--min-pts 25]
    repro-bubbles loadgen   --out events.ndjson [--tenants 8] [--events 5000]
    repro-bubbles serve     --fleet-dir fleet/ --input events.ndjson ...
    repro-bubbles dlq       --fleet-dir fleet/ [--replay]
    repro-bubbles trace     --fleet-dir fleet/ [--top 3]
    repro-bubbles verify-chain --wal-dir state/  (or --fleet-dir fleet/)

Every evaluation command prints the corresponding table/series in the
paper's layout. ``--quick`` shrinks sizes/repetitions for a fast smoke run;
the defaults correspond to the numbers recorded in EXPERIMENTS.md.

``summarize`` runs a durable sliding-window summarization over a synthetic
drifting stream: chunks are write-ahead logged to ``--wal-dir`` before
being applied and the state is checkpointed every ``--checkpoint-every``
batches. Re-running with ``--resume`` recovers the summary (snapshot +
WAL-tail replay) and continues the stream where the previous process — or
crash — left off. With ``--metrics-out m.json`` the run's metrics registry
is written as JSON (plus a Prometheus twin ``m.prom``); ``--trace-out``
streams maintenance/persistence events as JSON lines; ``--timeseries-out``
records windowed counter deltas and gauges as JSON lines (window width
``--timeseries-window`` batches); ``--health-out`` writes the one-page
health-report document as JSON. ``stats`` inspects a durable state
directory read-only and reports its metrics in any of the three formats.
``audit`` recovers a durable state directory and runs the self-healing
invariant audit over it (exit code 1 when the summary is inconsistent and
could not be repaired). ``report`` recovers a state directory under a
fully instrumented handle and renders its health report (text or JSON).
``cluster`` recovers a state directory and answers the paper's
"cluster me now" request over its bubble summary: it prints the
extracted dendrogram, optionally under a soft ``--deadline`` budget
(anytime staged refinement — a valid coarse tree is always produced).

``loadgen`` writes a deterministic NDJSON event stream (Zipf-skewed
tenant sizes, bursty Poisson arrivals) to ``--out`` or stdout.
``serve`` runs the multi-tenant ingestion service: NDJSON events from
``--input`` (or stdin) are routed to per-tenant durable shards under
``--fleet-dir``, micro-batched through bounded queues with explicit
backpressure, drained gracefully at end of stream, and summarized in a
fleet rollup (``--rollup-out``/``--fleet-health-out`` write it as
JSON). ``serve --resume`` crash-recovers the whole fleet from its
per-tenant WAL directories first; ``serve --supervise`` attaches a
shard supervisor that restarts failed shards under a bounded budget
(``--max-restarts``) with per-tenant circuit breaking. Without a
supervisor, a serve that ends with failed shards exits with code 3.

``serve --listen PORT`` additionally runs the live telemetry plane on
``127.0.0.1:PORT`` while events flow: ``/metrics`` (Prometheus text
0.0.4, snapshot-consistent across every tenant shard), ``/health``
(JSON fleet rollup with supervision and SLO burn-rate state),
``/ready`` (non-200 while any shard is failed), and
``/tenants/<id>/stats``; the SLO engine evaluates its objectives once
a second (windows via ``--slo-fast-seconds``/``--slo-slow-seconds``).
``serve --trace`` records one causally-parented span trace per
micro-batch into each tenant's ``trace.jsonl``; ``trace`` reads them
back and prints per-op latency quantiles plus the critical path of the
slowest micro-batches (``--top``).

``dlq`` inspects (default) or re-submits (``--replay``) the durable
per-tenant dead-letter queues of a fleet directory — or of one tenant
state directory given via ``--wal-dir``. ``verify-chain`` runs the
read-only WAL integrity scan (CRC plus, for version-2 logs, the
SHA-256 hash chain) over one state directory or every tenant of a
fleet, and exits 1 when any log shows at-rest corruption. See
docs/PERSISTENCE.md, docs/OBSERVABILITY.md, docs/ROBUSTNESS.md and
docs/SERVICE.md.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from dataclasses import replace

from .experiments import (
    ExperimentConfig,
    construction_pruning,
    render_dimension_sweep,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
    render_figure11,
    render_size_sweep,
    render_staleness,
    render_table1,
    run_dimension_sweep,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_size_sweep,
    run_staleness,
    run_table1,
)
from .clustering import IncrementalClusterer, render_tree
from .core import MaintenanceConfig
from .exceptions import PersistenceError, ReproError, SnapshotError
from .experiments.table1 import TABLE1_DATASETS
from .faults import install_from_env
from .observability import (
    EventTracer,
    MetricsRegistry,
    Observability,
    SLOEngine,
    SpanTracer,
    TelemetryListener,
    TimeseriesRecorder,
    collect_health,
    load_fleet_traces,
    render_health,
    render_text,
    render_trace_report,
    to_json,
    to_prometheus,
    write_health,
    write_metrics,
)
from .persistence import read_snapshot, verify_chain
from .service import (
    FleetConfig,
    FleetManager,
    LoadSpec,
    ShardSupervisor,
    generate_events,
    read_dead_letters,
    render_rollup,
    replay_dead_letters,
    serve_ndjson,
    write_events,
)
from .service.deadletter import deadletter_path
from .streaming import DurableSummarizer

__all__ = ["main", "build_parser", "EXIT_FAILED_SHARDS"]

#: Distinct exit code for a serve that ends with failed shards and no
#: supervisor attached (1 is generic errors, 2 is argparse usage).
EXIT_FAILED_SHARDS = 3


def _package_version() -> str:
    """Installed distribution version, falling back to the source tree."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from . import __version__

        return __version__


def _stream_chunk(seed: int, index: int, size: int):
    """Deterministic chunk ``index`` of the synthetic drifting stream.

    Each chunk is seeded independently from ``(seed, index)``, so a
    resumed process generates exactly the chunks a fresh one would —
    the stream itself is durable, not just the summary.

    The mixture is deliberately two-scale: a diffuse drifting cloud plus
    a small dense blob that jumps around inside it. The blob concentrates
    points into few bubbles, driving β past the Chebyshev upper boundary
    (Definition 3) so the stream exercises the over-filled → merge/split
    repair path, not just assignment.
    """
    import numpy as np

    rng = np.random.default_rng((int(seed), int(index)))
    center = np.array([0.05 * index, -0.03 * index])
    dense = max(1, size // 5)
    cloud = rng.normal(loc=center, scale=1.0, size=(size - dense, 2))
    offset = np.array(
        [np.cos(0.9 * index), np.sin(0.9 * index)]
    )
    blob = rng.normal(
        loc=center + offset, scale=0.04, size=(dense, 2)
    )
    chunk = np.concatenate([cloud, blob])
    rng.shuffle(chunk)
    return chunk


def _make_observability(args: argparse.Namespace) -> Observability | None:
    """An instrumented handle when any observability output was requested."""
    wanted = (
        args.metrics_out,
        args.trace_out,
        getattr(args, "timeseries_out", None),
        getattr(args, "health_out", None),
    )
    if all(out is None for out in wanted):
        return None
    tracer = (
        EventTracer(sink=args.trace_out)
        if args.trace_out is not None
        else None
    )
    timeseries = (
        TimeseriesRecorder(interval=args.timeseries_window)
        if getattr(args, "timeseries_out", None) is not None
        else None
    )
    # Spans cost nothing to carry and feed both the metrics registry
    # (repro_span_seconds) and the health report's latency table.
    return Observability(
        tracer=tracer, spans=SpanTracer(), timeseries=timeseries
    )


def _run_summarize(args: argparse.Namespace) -> None:
    if args.wal_dir is None:
        raise SystemExit("summarize requires --wal-dir")
    fsync = not args.no_fsync
    obs = _make_observability(args)
    if args.resume:
        stream = DurableSummarizer.recover(
            args.wal_dir, fsync=fsync, obs=obs,
            audit_every=args.audit_every,
        )
        print(
            f"recovered {args.wal_dir}: {stream.batches_applied} batches "
            f"already applied, window holds {stream.size} points"
        )
    else:
        stream = DurableSummarizer(
            args.wal_dir,
            dim=2,
            window_size=args.window,
            points_per_bubble=args.points_per_bubble,
            # Same config the summarizer would default to, plus the
            # assignment-engine options; it is persisted in snapshots,
            # so --resume runs keep whatever mode they started with.
            config=MaintenanceConfig(
                seed=args.seed,
                use_seed_index=args.seed_index,
                assign_workers=args.assign_workers,
            ),
            seed=args.seed,
            checkpoint_every=args.checkpoint_every,
            fsync=fsync,
            obs=obs,
            on_bad_point=args.on_bad_point,
            audit_every=args.audit_every,
        )
        print(f"initialized durable state in {args.wal_dir}")
    start = stream.batches_applied
    for index in range(start, start + args.chunks):
        stream.append(_stream_chunk(args.seed, index, args.chunk_size))
    stream.close()  # final checkpoint + WAL truncation
    maintainer = stream.maintainer
    bubbles = (
        f"{maintainer.active_count} active bubbles"
        if maintainer is not None
        else "still buffering (no summary yet)"
    )
    totals = stream.counter.snapshot()
    print(
        f"appended {args.chunks} chunks ({args.chunks * args.chunk_size} "
        f"points); {stream.batches_applied} batches durable"
    )
    print(
        f"window {stream.size}/{stream.window_size} points, {bubbles}, "
        f"{totals.computed} distances computed "
        f"({totals.pruned_fraction:.0%} pruned)"
    )
    if obs is not None:
        _finish_observability(args, obs, totals, summarizer=stream)
    print(f"re-run with --resume --wal-dir {args.wal_dir} to continue")


def _finish_observability(
    args, obs: Observability, totals, summarizer=None
) -> None:
    if obs.timeseries is not None:
        if summarizer is not None:
            summarizer.flush_timeseries()
        else:
            obs.timeseries.flush()
        obs.timeseries.write_jsonl(args.timeseries_out)
        print(
            f"wrote {len(obs.timeseries)} time-series windows to "
            f"{args.timeseries_out}"
        )
    if getattr(args, "health_out", None) is not None:
        report = collect_health(
            obs, summarizer=summarizer, source=str(args.wal_dir)
        )
        write_health(report, args.health_out)
        print(f"wrote health report to {args.health_out}")
    if obs.tracer is not None:
        obs.tracer.close()
        print(f"wrote event trace to {args.trace_out}")
    if args.metrics_out is not None:
        extra = {
            "run": {
                "command": "summarize",
                "wal_dir": str(args.wal_dir),
                "chunks": args.chunks,
                "chunk_size": args.chunk_size,
                "window": args.window,
                "points_per_bubble": args.points_per_bubble,
                "seed": args.seed,
            },
            "derived": {
                "pruned_fraction": totals.pruned_fraction,
                "computed_distances": totals.computed,
                "pruned_distances": totals.pruned,
            },
        }
        json_path, prom_path = write_metrics(
            args.metrics_out, obs.metrics.snapshot(), extra=extra
        )
        print(f"wrote metrics to {json_path} and {prom_path}")


def _run_audit(args: argparse.Namespace) -> None:
    """Recover a durable state directory and audit its invariants."""
    if args.wal_dir is None:
        raise SystemExit("audit requires --wal-dir")
    obs = _make_observability(args)
    stream = DurableSummarizer.recover(
        args.wal_dir, fsync=not args.no_fsync, obs=obs
    )
    repair = not args.no_repair
    report = stream.audit(repair=repair)
    # Persist a repaired (or confirmed-clean) state; never checkpoint a
    # summary that is still inconsistent.
    stream.close(checkpoint=report.healthy)
    if report.ok:
        print(
            f"{args.wal_dir}: all invariants hold "
            f"({stream.size} points, batch {stream.batches_applied})"
        )
    else:
        print(f"{args.wal_dir}: {len(report.violations)} violation(s)")
        for violation in report.violations[:10]:
            print(f"  - {violation}")
        if len(report.violations) > 10:
            print(f"  ... and {len(report.violations) - 10} more")
        if repair:
            outcome = (
                "consistent" if report.post_repair_ok else "STILL BROKEN"
            )
            print(
                f"repair: rebuilt {len(report.repaired_bubbles)} "
                f"bubble(s), reassigned {report.reassigned_points} "
                f"point(s); summary now {outcome}"
            )
    if obs is not None and obs.tracer is not None:
        obs.tracer.close()
    if not report.healthy:
        raise SystemExit(1)


def _run_report(args: argparse.Namespace) -> None:
    """Render a health report from a durable state directory.

    The directory is recovered under a fresh, fully instrumented
    observability handle (spans + time-series) and checked with a
    non-repairing audit, so the span latency table and robustness
    section reflect genuinely measured recovery/audit work — not
    whatever instrumentation the original run happened to enable.
    """
    if args.wal_dir is None:
        raise SystemExit("report requires --wal-dir")
    obs = Observability(
        tracer=EventTracer(),
        spans=SpanTracer(),
        timeseries=TimeseriesRecorder(interval=args.timeseries_window),
    )
    stream = DurableSummarizer.recover(
        args.wal_dir, fsync=not args.no_fsync, obs=obs
    )
    stream.audit(repair=False)
    report = collect_health(
        obs, summarizer=stream, source=str(args.wal_dir)
    )
    stream.close(checkpoint=False)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_health(report), end="")
    if args.health_out is not None:
        write_health(report, args.health_out)
        print(f"wrote health report to {args.health_out}")
    if args.timeseries_out is not None:
        obs.timeseries.flush()
        obs.timeseries.write_jsonl(args.timeseries_out)
        print(
            f"wrote {len(obs.timeseries)} time-series windows to "
            f"{args.timeseries_out}"
        )


def _run_cluster(args: argparse.Namespace) -> None:
    """Cluster a recovered durable summary ("cluster me now").

    Recovers the state directory read-only (no checkpoint on close),
    runs one :class:`~repro.clustering.IncrementalClusterer` fit —
    deadline-bounded when ``--deadline`` is given — and prints the
    extracted dendrogram with its provenance.
    """
    if args.wal_dir is None:
        raise SystemExit("cluster requires --wal-dir")
    obs = Observability(spans=SpanTracer())
    stream = DurableSummarizer.recover(
        args.wal_dir, fsync=not args.no_fsync, obs=obs
    )
    try:
        if not stream.is_ready():
            print(
                "the stream summary is not bootstrapped yet; run "
                "'summarize' against this directory first",
                file=sys.stderr,
            )
            raise SystemExit(1)
        clusterer = IncrementalClusterer(
            min_pts=args.min_pts,
            counter=stream.counter,
            obs=obs,
        )
        fit = clusterer.fit(
            stream.summary, deadline_seconds=args.deadline
        )
    finally:
        stream.close(checkpoint=False)
    deadline = (
        f"{args.deadline:.3f}s deadline"
        if args.deadline is not None
        else "no deadline"
    )
    print(
        f"clustered {fit.num_bubbles} bubbles "
        f"({int(fit.counts.sum())} summarized points) from "
        f"{args.wal_dir} [{fit.source}, {deadline}]"
    )
    print(
        f"quality {fit.quality:.2f}, "
        f"{len(fit.tree.leaves())} leaf cluster(s), "
        f"{fit.elapsed_seconds * 1e3:.1f} ms"
    )
    if fit.stages:
        print(
            "anytime stages: "
            + ", ".join(
                f"{stage.size} bubbles @ "
                f"{stage.elapsed_seconds * 1e3:.1f} ms"
                for stage in fit.stages
            )
        )
    print()
    print(render_tree(fit.tree))
    if args.metrics_out is not None:
        json_path, prom_path = write_metrics(
            args.metrics_out,
            obs.metrics.snapshot(),
            extra={"directory": str(args.wal_dir)},
        )
        print(f"\nwrote metrics to {json_path} and {prom_path}")


def _run_loadgen(args: argparse.Namespace) -> None:
    """Write a deterministic NDJSON event stream for the service."""
    spec = LoadSpec(
        tenants=args.tenants,
        events=args.events,
        dim=args.dim,
        seed=args.seed,
        zipf_s=args.zipf,
        burst_mean=args.burst,
    )
    if args.out == "-":
        write_events(sys.stdout, generate_events(spec))
        return
    count = write_events(args.out, generate_events(spec))
    print(
        f"wrote {count} events ({spec.tenants} tenants, zipf "
        f"{spec.zipf_s}, burst mean {spec.burst_mean:.0f}, seed "
        f"{spec.seed}) to {args.out}"
    )


def _run_serve(args: argparse.Namespace) -> None:
    """Run the multi-tenant ingestion service over an NDJSON stream."""
    if args.fleet_dir is None:
        raise SystemExit("serve requires --fleet-dir")
    runtime = FleetConfig(
        dim=args.dim,
        window_size=args.window,
        points_per_bubble=args.points_per_bubble,
        checkpoint_every=args.checkpoint_every,
        seed=args.seed,
        fsync=not args.no_fsync,
        on_bad_point=args.on_bad_point,
        queue_points=args.queue_points,
        batch_points=args.batch_points,
        backpressure=args.backpressure,
        workers=args.workers,
        use_seed_index=args.seed_index,
        assign_workers=args.assign_workers,
        trace=args.trace,
    )
    if args.resume:
        fleet = FleetManager.recover(args.fleet_dir, config=runtime)
        print(
            f"recovered fleet {args.fleet_dir}: "
            f"{len(fleet.tenants)} tenant shard(s) resumed"
        )
    else:
        fleet = FleetManager(args.fleet_dir, config=runtime)
        print(
            f"initialized fleet in {args.fleet_dir} "
            f"({args.workers} worker(s), {args.backpressure} "
            "backpressure)"
        )
    if args.supervise:
        fleet.attach_supervisor(
            ShardSupervisor(max_restarts=args.max_restarts)
        )
        print(
            f"supervision on: failed shards restart (budget "
            f"{args.max_restarts}/tenant) behind per-tenant breakers"
        )
    if args.trace:
        print(
            "trace recording on: one span trace per micro-batch -> "
            f"{args.fleet_dir}/tenants/<id>/trace.jsonl "
            "(query with 'repro-bubbles trace')"
        )
    listener = None
    if args.listen is not None:
        fleet.attach_slo(
            SLOEngine(
                fast_window_seconds=args.slo_fast_seconds,
                slow_window_seconds=args.slo_slow_seconds,
            )
        )
        listener = TelemetryListener(fleet, port=args.listen).start()
        print(
            f"telemetry plane listening on {listener.url()} "
            "(/metrics /health /ready /tenants/<id>/stats); slo "
            f"windows {args.slo_fast_seconds:g}s/"
            f"{args.slo_slow_seconds:g}s"
        )
    source = sys.stdin if args.input == "-" else args.input
    stats = serve_ndjson(
        fleet, source, on_bad_event=args.on_bad_event, listener=listener
    )
    print(render_rollup(stats.rollup), end="")
    print(
        f"served {stats.events} events: {stats.accepted} accepted, "
        f"{stats.dropped} dropped, {stats.invalid_lines} invalid "
        f"line(s) in {stats.elapsed_seconds:.2f}s "
        f"({stats.points_per_second:.0f} points/s)"
    )
    if args.rollup_out is not None:
        pathlib.Path(args.rollup_out).write_text(
            json.dumps(stats.rollup, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote fleet rollup to {args.rollup_out}")
    if args.fleet_health_out is not None:
        pathlib.Path(args.fleet_health_out).write_text(
            json.dumps(fleet.fleet_health(), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote fleet health to {args.fleet_health_out}")
    print(
        f"re-run with serve --resume --fleet-dir {args.fleet_dir} to "
        "continue the fleet"
    )
    failed = sorted(
        tenant
        for tenant, row in stats.rollup["tenants"].items()
        if row["state"] == "failed"
    )
    if failed and not args.supervise:
        print(
            f"error: {len(failed)} shard(s) ended failed with no "
            f"supervisor attached: {', '.join(failed)} — their queued "
            "events were dead-lettered; re-run with --supervise, or "
            "inspect/replay with "
            f"'repro-bubbles dlq --fleet-dir {args.fleet_dir}'",
            file=sys.stderr,
        )
        raise SystemExit(EXIT_FAILED_SHARDS)


def _run_trace(args: argparse.Namespace) -> None:
    """Reconstruct and query a fleet's span traces."""
    if args.fleet_dir is None:
        raise SystemExit("trace requires --fleet-dir")
    root = pathlib.Path(args.fleet_dir)
    if not (root / "fleet.json").exists():
        raise PersistenceError(
            f"{root} holds no fleet (fleet.json is missing)"
        )
    traces = load_fleet_traces(root)
    print(render_trace_report(traces, top=args.top), end="")


def _dlq_files(args: argparse.Namespace) -> list[pathlib.Path]:
    """Dead-letter files addressed by --fleet-dir / --wal-dir.

    A fleet directory fans out to every tenant state dir under
    ``tenants/``; a plain state directory is used as-is.
    """
    if args.fleet_dir is not None:
        root = pathlib.Path(args.fleet_dir)
        if not (root / "fleet.json").exists():
            raise PersistenceError(
                f"{root} holds no fleet (fleet.json is missing)"
            )
        tenants = root / "tenants"
        dirs = (
            sorted(p for p in tenants.iterdir() if p.is_dir())
            if tenants.exists()
            else []
        )
        return [deadletter_path(p) for p in dirs]
    if args.wal_dir is not None:
        return [deadletter_path(args.wal_dir)]
    raise SystemExit("dlq requires --fleet-dir or --wal-dir")


def _run_dlq(args: argparse.Namespace) -> None:
    """List or replay the durable dead-letter queues."""
    files = _dlq_files(args)
    if not args.replay:
        total = 0
        for path in files:
            letters = read_dead_letters(path)
            if not letters and not path.exists():
                continue
            total += len(letters)
            print(f"{path}: {len(letters)} letter(s)")
            by_reason: dict[str, int] = {}
            for letter in letters:
                by_reason[letter.reason] = by_reason.get(letter.reason, 0) + 1
            for reason in sorted(by_reason):
                print(f"  {reason}: {by_reason[reason]}")
        print(f"{total} dead letter(s) total")
        return
    if args.fleet_dir is None:
        raise SystemExit(
            "dlq --replay needs --fleet-dir (replay re-submits through "
            "the fleet's normal ingestion path)"
        )
    fleet = FleetManager.recover(args.fleet_dir)
    if args.supervise:
        fleet.attach_supervisor(
            ShardSupervisor(max_restarts=args.max_restarts)
        )
    replayed = requeued = 0
    try:
        for path in files:
            report = replay_dead_letters(
                path, fleet.submit, fsync=not args.no_fsync
            )
            replayed += report.replayed
            requeued += report.requeued
    finally:
        fleet.drain()
    print(
        f"replayed {replayed} dead letter(s); {requeued} still parked"
    )
    if requeued:
        raise SystemExit(1)


def _run_verify_chain(args: argparse.Namespace) -> None:
    """Read-only WAL integrity scan (CRC + v2 hash chain)."""
    if args.fleet_dir is not None:
        root = pathlib.Path(args.fleet_dir)
        if not (root / "fleet.json").exists():
            raise PersistenceError(
                f"{root} holds no fleet (fleet.json is missing)"
            )
        tenants = root / "tenants"
        wal_paths = (
            sorted(p / "wal.log" for p in tenants.iterdir() if p.is_dir())
            if tenants.exists()
            else []
        )
    elif args.wal_dir is not None:
        wal_paths = [pathlib.Path(args.wal_dir) / "wal.log"]
    else:
        raise SystemExit("verify-chain requires --wal-dir or --fleet-dir")
    corrupt = 0
    for path in wal_paths:
        if not path.exists():
            print(f"{path}: missing (no WAL yet)")
            continue
        report = verify_chain(path)
        coverage = "crc+chain" if report.version == 2 else "crc only"
        if report.ok and not report.torn_tail:
            print(
                f"{path}: OK — {report.records} record(s) verified "
                f"({coverage})"
            )
        elif report.ok:
            print(
                f"{path}: OK with torn tail — {report.records} intact "
                f"record(s) ({coverage}); a crashed append will be "
                "repaired on next open"
            )
        else:
            corrupt += 1
            where = (
                f"record {report.bad_record} (seq {report.bad_seq})"
                if report.bad_seq is not None
                else "header"
            )
            print(
                f"{path}: CORRUPT — {report.reason} at {where} after "
                f"{report.records} verified record(s)"
            )
    if corrupt:
        print(
            f"error: {corrupt} WAL file(s) failed integrity "
            "verification",
            file=sys.stderr,
        )
        raise SystemExit(1)


def _run_stats(args: argparse.Namespace) -> None:
    """Read-only inspection of a durable state directory."""
    if args.wal_dir is None:
        raise SystemExit("stats requires --wal-dir")
    directory = pathlib.Path(args.wal_dir)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise PersistenceError(
            f"{directory} holds no durable summarizer state "
            "(manifest.json is missing)"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(
            f"unreadable manifest in {directory}: {exc}"
        ) from exc

    # Newest loadable snapshot, scanned without opening the WAL (a stats
    # probe must not create or repair anything).
    state = None
    snapshots = sorted(directory.glob("snapshot-*.npz"), reverse=True)
    for path in snapshots:
        try:
            state = read_snapshot(path)
            break
        except SnapshotError:
            continue

    registry = MetricsRegistry()
    wal_path = directory / "wal.log"
    registry.gauge(
        "repro_wal_size_bytes",
        help="Size of the write-ahead log file.",
        unit="bytes",
    ).set(wal_path.stat().st_size if wal_path.exists() else 0)
    registry.gauge(
        "repro_snapshot_files",
        help="Snapshot files retained in the state directory.",
    ).set(len(snapshots))
    if state is not None:
        registry.counter(
            "repro_distance_computed_total",
            help="Distance computations actually performed.",
        ).inc(state.counter_computed)
        registry.counter(
            "repro_distance_pruned_total",
            help="Distance computations avoided by pruning (Lemma 1).",
        ).inc(state.counter_pruned)
        registry.gauge(
            "repro_stream_batches_applied",
            help="Stream batches the durable state reflects.",
        ).set(state.batches_applied)
        registry.gauge(
            "repro_stream_window_points",
            help="Points currently inside the sliding window.",
        ).set(int(state.store_ids.size))
        registry.gauge(
            "repro_stream_active_bubbles",
            help="Non-retired bubbles in the summary.",
        ).set(state.num_bubbles - len(state.retired))

    snapshot = registry.snapshot()
    if args.format == "json":
        extra = {"manifest": manifest, "directory": str(directory)}
        print(json.dumps(to_json(snapshot, extra=extra), indent=2))
    elif args.format == "prom":
        print(to_prometheus(snapshot), end="")
    else:
        print(f"durable state in {directory}")
        if state is None:
            print(
                "no loadable snapshot yet (stream still buffering, or "
                "crashed before the first checkpoint)"
            )
        else:
            total = state.counter_computed + state.counter_pruned
            fraction = state.counter_pruned / total if total else 0.0
            print(
                f"as of snapshot: batch {state.batches_applied}, "
                f"{fraction:.0%} of distance computations pruned"
            )
        print()
        print(render_text(snapshot))
    if args.metrics_out is not None:
        json_path, prom_path = write_metrics(
            args.metrics_out,
            snapshot,
            extra={"manifest": manifest, "directory": str(directory)},
        )
        print(f"wrote metrics to {json_path} and {prom_path}")


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro-bubbles",
        description=(
            "Regenerate the evaluation of 'Incremental and Effective Data "
            "Summarization for Dynamic Hierarchical Clustering' "
            "(Nassar, Sander & Cheng, SIGMOD 2004)."
        ),
    )
    parser.add_argument(
        "command",
        choices=[
            "table1",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "scalability",
            "staleness",
            "summarize",
            "stats",
            "audit",
            "report",
            "cluster",
            "serve",
            "loadgen",
            "dlq",
            "trace",
            "verify-chain",
            "all",
        ],
        help="which artifact to regenerate ('summarize' runs a durable "
        "stream summarization; 'stats' inspects its state directory; "
        "'audit' checks and repairs its invariants; 'report' renders a "
        "health report from it; 'cluster' extracts a dendrogram from "
        "its summary (optionally deadline-bounded); 'serve' runs the "
        "multi-tenant ingestion "
        "service; 'loadgen' writes a deterministic NDJSON event stream; "
        "'dlq' lists or replays the durable dead-letter queues; "
        "'trace' reconstructs span trees from a fleet's trace files; "
        "'verify-chain' runs the read-only WAL integrity scan)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    parser.add_argument(
        "--size", type=int, default=10_000,
        help="initial database size (default 10000)",
    )
    parser.add_argument(
        "--bubbles", type=int, default=100,
        help="number of data bubbles (default 100)",
    )
    parser.add_argument(
        "--batches", type=int, default=10,
        help="update batches per repetition (default 10)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="repetitions (default: 10 for table1, 3 for figures)",
    )
    parser.add_argument(
        "--update-fraction", type=float, default=0.05,
        help="per-batch update volume for table1 (default 0.05)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base RNG seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes and few repetitions (smoke run)",
    )
    durable = parser.add_argument_group(
        "summarize", "options for the durable streaming command"
    )
    durable.add_argument(
        "--wal-dir", default=None,
        help="durable state directory (required for 'summarize')",
    )
    durable.add_argument(
        "--resume", action="store_true",
        help="recover from --wal-dir instead of starting fresh",
    )
    durable.add_argument(
        "--chunks", type=int, default=20,
        help="stream chunks to append this run (default 20)",
    )
    durable.add_argument(
        "--chunk-size", type=int, default=500,
        help="points per stream chunk (default 500)",
    )
    durable.add_argument(
        "--window", type=int, default=5_000,
        help="sliding window capacity in points (default 5000)",
    )
    durable.add_argument(
        "--points-per-bubble", type=int, default=50,
        help="target compression rate (default 50)",
    )
    durable.add_argument(
        "--checkpoint-every", type=int, default=8,
        help="snapshot cadence in batches (default 8)",
    )
    durable.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on WAL appends/snapshots (faster; keeps "
        "process-crash durability, loses power-loss durability)",
    )
    durable.add_argument(
        "--on-bad-point", choices=["strict", "skip", "quarantine"],
        default="strict",
        help="how to treat NaN/Inf or wrong-dimension stream points: "
        "fail the append (strict, default), drop them (skip), or drop "
        "and retain them for diagnostics (quarantine)",
    )
    durable.add_argument(
        "--audit-every", type=int, default=0, metavar="N",
        help="run a self-healing invariant audit every N chunks "
        "(0 disables periodic audits; default 0)",
    )
    durable.add_argument(
        "--no-repair", action="store_true",
        help="audit only: report violations without repairing them",
    )
    clustering = parser.add_argument_group(
        "cluster", "options for the on-demand clustering command"
    )
    clustering.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="soft wall-clock budget for 'cluster': return the best "
        "anytime dendrogram finished inside it (default: compute the "
        "complete answer)",
    )
    clustering.add_argument(
        "--min-pts", type=int, default=25, metavar="N",
        help="OPTICS MinPts for 'cluster', in summarized points "
        "(default 25)",
    )
    engine = parser.add_argument_group(
        "assignment engine",
        "batch-assignment acceleration (summarize, serve); applies to "
        "fresh state — resumed runs keep the mode recorded in their "
        "snapshots",
    )
    engine.add_argument(
        "--seed-index", action="store_true",
        help="layer a spatial seed index (scipy KD-tree, or a pure-"
        "numpy grid when scipy is absent) under the Lemma 1 pruning; "
        "assignments stay bit-identical and the computed-distance "
        "count only shrinks",
    )
    engine.add_argument(
        "--assign-workers", type=int, default=0, metavar="N",
        help="worker processes for batch assignment (0 = serial bit-"
        "reproducible reference; N >= 1 switches to per-block RNG "
        "substreams whose results do not depend on N). Distinct from "
        "--workers, which sizes the service flusher thread pool",
    )
    observability = parser.add_argument_group(
        "observability", "metric and trace outputs (summarize, stats)"
    )
    observability.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics registry as JSON at PATH and "
        "Prometheus text beside it (PATH with a .prom suffix)",
    )
    observability.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="append maintenance/streaming/persistence events to PATH "
        "as JSON lines (summarize only)",
    )
    observability.add_argument(
        "--timeseries-out", default=None, metavar="PATH",
        help="write windowed time-series telemetry (counter deltas + "
        "gauges per window) to PATH as JSON lines",
    )
    observability.add_argument(
        "--health-out", default=None, metavar="PATH",
        help="write a health-report document to PATH as JSON "
        "(summarize, report)",
    )
    observability.add_argument(
        "--timeseries-window", type=int, default=1, metavar="N",
        help="time-series window width in appended batches (default 1)",
    )
    observability.add_argument(
        "--format", choices=["text", "json", "prom"], default="text",
        help="stats/report output format (default text; 'prom' is "
        "stats-only)",
    )
    service = parser.add_argument_group(
        "service", "options for the ingestion service (serve, loadgen)"
    )
    service.add_argument(
        "--fleet-dir", default=None,
        help="fleet root directory: one durable shard state dir per "
        "tenant under tenants/ (required for 'serve')",
    )
    service.add_argument(
        "--input", default="-", metavar="PATH",
        help="NDJSON event stream for 'serve' ('-' reads stdin; "
        "default '-')",
    )
    service.add_argument(
        "--workers", type=int, default=4,
        help="flusher threads; tenants are striped across them "
        "(0 = synchronous dispatch with deterministic batching; "
        "default 4)",
    )
    service.add_argument(
        "--queue-points", type=int, default=1_024,
        help="per-shard queue capacity in points (default 1024)",
    )
    service.add_argument(
        "--batch-points", type=int, default=64,
        help="points folded into one micro-batched append (default 64)",
    )
    service.add_argument(
        "--backpressure", choices=["block", "shed"], default="block",
        help="full-queue policy: block the dispatcher or shed the "
        "event (default block)",
    )
    service.add_argument(
        "--on-bad-event", choices=["strict", "skip"], default="skip",
        help="malformed NDJSON lines: abort the serve (strict) or drop "
        "and count them (skip, default)",
    )
    service.add_argument(
        "--dim", type=int, default=2,
        help="point dimensionality for serve/loadgen (default 2)",
    )
    service.add_argument(
        "--rollup-out", default=None, metavar="PATH",
        help="write the end-of-run fleet rollup as JSON to PATH",
    )
    service.add_argument(
        "--fleet-health-out", default=None, metavar="PATH",
        help="write the rollup plus one full health document per "
        "tenant shard as JSON to PATH",
    )
    plane = parser.add_argument_group(
        "telemetry plane", "live observability endpoints and trace "
        "recording (serve, trace)"
    )
    plane.add_argument(
        "--listen", type=int, default=None, metavar="PORT",
        help="serve the live telemetry plane on 127.0.0.1:PORT while "
        "events flow — /metrics (Prometheus 0.0.4), /health, /ready, "
        "/tenants/<id>/stats — and attach the SLO burn-rate engine "
        "(PORT 0 binds an ephemeral port)",
    )
    plane.add_argument(
        "--trace", action="store_true",
        help="serve: record one causally-parented span trace per "
        "micro-batch into each tenant's trace.jsonl (query with "
        "'repro-bubbles trace')",
    )
    plane.add_argument(
        "--slo-fast-seconds", type=float, default=60.0, metavar="S",
        help="SLO fast burn-rate window for --listen (default 60)",
    )
    plane.add_argument(
        "--slo-slow-seconds", type=float, default=300.0, metavar="S",
        help="SLO slow burn-rate window for --listen (default 300)",
    )
    plane.add_argument(
        "--top", type=int, default=3, metavar="N",
        help="trace: print critical paths for the N slowest "
        "micro-batches (default 3)",
    )
    healing = parser.add_argument_group(
        "self-healing", "shard supervision and dead-letter handling "
        "(serve, dlq, verify-chain)"
    )
    healing.add_argument(
        "--supervise", action="store_true",
        help="attach a shard supervisor: failed shards are restarted "
        "in place (bounded budget, exponential backoff) behind "
        "per-tenant circuit breakers; without it a serve ending with "
        f"failed shards exits with code {EXIT_FAILED_SHARDS}",
    )
    healing.add_argument(
        "--max-restarts", type=int, default=5, metavar="N",
        help="per-tenant restart budget for --supervise (default 5)",
    )
    healing.add_argument(
        "--replay", action="store_true",
        help="dlq: re-submit dead letters through the fleet's normal "
        "ingestion path instead of listing them (requires --fleet-dir; "
        "letters that still fail stay parked and exit code is 1)",
    )
    loadgen = parser.add_argument_group(
        "loadgen", "workload shape for the load generator"
    )
    loadgen.add_argument(
        "--out", default="-", metavar="PATH",
        help="where loadgen writes NDJSON events ('-' writes stdout; "
        "default '-')",
    )
    loadgen.add_argument(
        "--tenants", type=int, default=8,
        help="tenant streams to simulate (default 8)",
    )
    loadgen.add_argument(
        "--events", type=int, default=5_000,
        help="total point events to generate (default 5000)",
    )
    loadgen.add_argument(
        "--zipf", type=float, default=1.1,
        help="Zipf exponent of the tenant-size skew (0 = uniform; "
        "default 1.1)",
    )
    loadgen.add_argument(
        "--burst", type=float, default=32.0,
        help="mean Poisson burst size in events (default 32)",
    )
    return parser


def _base_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig(
        initial_size=args.size,
        num_bubbles=args.bubbles,
        num_batches=args.batches,
        update_fraction=args.update_fraction,
        seed=args.seed,
    )
    if args.quick:
        config = replace(
            config,
            initial_size=min(args.size, 3_000),
            num_bubbles=min(args.bubbles, 60),
            num_batches=min(args.batches, 4),
        )
    return config


def _run_command(command: str, args: argparse.Namespace) -> None:
    if command == "summarize":
        started = time.perf_counter()
        _run_summarize(args)
        print(f"\n[summarize finished in {time.perf_counter() - started:.1f}s]")
        return
    if command == "stats":
        _run_stats(args)
        return
    if command == "audit":
        _run_audit(args)
        return
    if command == "report":
        _run_report(args)
        return
    if command == "cluster":
        _run_cluster(args)
        return
    if command == "serve":
        started = time.perf_counter()
        _run_serve(args)
        print(f"\n[serve finished in {time.perf_counter() - started:.1f}s]")
        return
    if command == "loadgen":
        _run_loadgen(args)
        return
    if command == "dlq":
        _run_dlq(args)
        return
    if command == "trace":
        _run_trace(args)
        return
    if command == "verify-chain":
        _run_verify_chain(args)
        return
    config = _base_config(args)
    table_reps = args.reps if args.reps is not None else (2 if args.quick else 10)
    figure_reps = args.reps if args.reps is not None else (2 if args.quick else 3)
    started = time.perf_counter()

    if command == "table1":
        datasets = TABLE1_DATASETS[:4] if args.quick else TABLE1_DATASETS
        rows = run_table1(config, repetitions=table_reps, datasets=datasets)
        print(render_table1(rows))
    elif command == "figure7":
        fig_config = replace(
            config,
            scenario="figure7",
            dim=2,
            initial_size=min(config.initial_size, 4_000),
            num_bubbles=min(config.num_bubbles, 50),
            update_fraction=0.1,
            num_batches=max(config.num_batches, 8),
        )
        print(render_figure7(run_figure7(fig_config)))
    elif command == "figure8":
        print(render_figure8(run_figure8(config)))
    elif command == "figure9":
        print(render_figure9(run_figure9(config, repetitions=figure_reps)))
    elif command == "figure10":
        points = run_figure10(config, repetitions=figure_reps)
        anchor = construction_pruning(
            replace(config, scenario="complex"), repetitions=figure_reps
        )
        print(render_figure10(points, construction=anchor))
    elif command == "figure11":
        print(render_figure11(run_figure11(config, repetitions=figure_reps)))
    elif command == "staleness":
        staleness_config = replace(
            config, scenario="complex", update_fraction=0.08,
            num_batches=max(config.num_batches, 10),
        )
        print(render_staleness(run_staleness(staleness_config, rebuild_every=5)))
    elif command == "scalability":
        sizes = (1_000, 2_500, 5_000) if args.quick else (
            2_500, 5_000, 10_000, 20_000
        )
        print(
            render_size_sweep(
                run_size_sweep(
                    config, sizes=sizes, repetitions=figure_reps
                )
            )
        )
        print()
        print(
            render_dimension_sweep(
                run_dimension_sweep(config, repetitions=figure_reps)
            )
        )
    else:
        raise ValueError(f"unknown command {command!r}")

    elapsed = time.perf_counter() - started
    print(f"\n[{command} finished in {elapsed:.1f}s]")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    install_from_env()  # REPRO_FAILPOINTS, a no-op when unset
    args = build_parser().parse_args(argv)
    commands = (
        [
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "scalability",
            "staleness",
            "table1",
        ]
        if args.command == "all"
        else [args.command]
    )
    try:
        for command in commands:
            _run_command(command, args)
            print()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
