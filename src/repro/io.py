"""Persistence of stores and summaries (numpy ``.npz`` archives).

An incremental summarization is only useful if it survives process
restarts — rebuilding bubbles from scratch at startup would forfeit the
incremental savings. This module round-trips a whole session (the
:class:`~repro.database.PointStore` plus its
:class:`~repro.core.bubble_set.BubbleSet`) through a single compressed
``.npz`` file:

* the store is saved as its alive ids, coordinates, labels, ownership and
  id counter (ids are preserved exactly, including deletion gaps — they
  are the keys the bubbles' member sets refer to);
* the summary is saved structurally (seeds + member id lists); sufficient
  statistics are *recomputed* from the member coordinates on load, which
  both keeps the file format minimal and guarantees the loaded statistics
  agree with the membership (a corrupted file cannot produce an
  inconsistent summary).

Example:
    >>> save_session("session.npz", store, bubbles)   # doctest: +SKIP
    >>> store2, bubbles2 = load_session("session.npz")  # doctest: +SKIP
"""

from __future__ import annotations

import pathlib

import numpy as np

from .core.bubble_set import BubbleSet
from .database import PointStore

__all__ = ["save_session", "load_session"]

_FORMAT_VERSION = 1


def save_session(
    path: str | pathlib.Path,
    store: PointStore,
    bubbles: BubbleSet | None = None,
) -> None:
    """Persist a store (and optionally its summary) to ``path``.

    Raises:
        ValueError: if the summary's members are not all alive in the
            store (a desynchronized pair would not survive the round
            trip, so it is rejected up front).
    """
    ids, points, labels = store.snapshot()
    owners = store.owners_of(ids)
    payload: dict[str, np.ndarray] = {
        "format_version": np.int64(_FORMAT_VERSION),
        "dim": np.int64(store.dim),
        "next_id": np.int64(store.next_id),
        "ids": ids,
        "points": points,
        "labels": labels,
        "owners": owners,
        "has_summary": np.bool_(bubbles is not None),
    }
    if bubbles is not None:
        alive = set(int(i) for i in ids)
        member_chunks: list[np.ndarray] = []
        offsets = [0]
        seeds = bubbles.seeds()
        for bubble in bubbles:
            members = bubble.member_ids()
            if not set(int(i) for i in members) <= alive:
                raise ValueError(
                    f"bubble {bubble.bubble_id} references points not alive "
                    "in the store"
                )
            member_chunks.append(members)
            offsets.append(offsets[-1] + members.size)
        payload["seeds"] = seeds
        payload["member_offsets"] = np.asarray(offsets, dtype=np.int64)
        payload["member_ids"] = (
            np.concatenate(member_chunks)
            if member_chunks
            else np.empty(0, dtype=np.int64)
        )
    np.savez_compressed(pathlib.Path(path), **payload)


def load_session(
    path: str | pathlib.Path,
) -> tuple[PointStore, BubbleSet | None]:
    """Load a session saved by :func:`save_session`.

    Returns:
        ``(store, bubbles)``; ``bubbles`` is ``None`` when the session was
        saved without a summary.
    """
    with np.load(pathlib.Path(path)) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported session format version {version}"
            )
        dim = int(archive["dim"])
        store = PointStore.from_snapshot(
            dim=dim,
            ids=archive["ids"],
            points=archive["points"],
            labels=archive["labels"],
            owners=archive["owners"],
            next_id=int(archive["next_id"]),
        )
        if not bool(archive["has_summary"]):
            return store, None
        seeds = archive["seeds"]
        offsets = archive["member_offsets"]
        member_ids = archive["member_ids"]

    bubbles = BubbleSet(dim=dim)
    for index in range(seeds.shape[0]):
        bubble = bubbles.add_bubble(seeds[index])
        members = member_ids[offsets[index] : offsets[index + 1]]
        if members.size:
            bubble.absorb_many(members, store.points_of(members))
    return store, bubbles
