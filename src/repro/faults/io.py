"""Faulty file IO: torn writes, short reads, ``ENOSPC``/``EIO``, fsync.

:class:`FaultyFile` proxies a binary file object and consults the
failpoint registry before every ``write``/``read``/``flush``, under the
names::

    io.<domain>.write     io.<domain>.read     io.<domain>.flush

where ``domain`` is ``wal``, ``snapshot``, or ``manifest`` — the three
durable artifacts of :mod:`repro.persistence`. fsync goes through
:func:`fsync` under ``io.<domain>.fsync`` (it takes a file descriptor,
not a file object, so it cannot live on the proxy alone).

Fault kinds interpreted here:

* ``error`` — the operation raises the armed :class:`OSError` without
  touching the underlying file (``ENOSPC`` before anything lands);
* ``torn`` — a **write** persists only ``fraction`` of its bytes, flushes
  and fsyncs them (so the torn prefix is really on disk, exactly like a
  power cut mid-write), then crashes or errors per the spec;
* ``short_read`` — a **read** returns only ``fraction`` of the requested
  bytes;
* ``crash`` / ``delay`` — as in the registry.

The wrap is conditional: :func:`maybe_wrap` returns the raw handle
untouched unless some ``io.<domain>.*`` failpoint is armed, so the
disabled-path cost is one prefix scan of an (almost always empty) dict.
"""

from __future__ import annotations

import os
import time
from typing import IO, Callable

from .registry import FAILPOINTS, FailpointRegistry, FaultSpec

__all__ = ["FaultyFile", "IO_DOMAINS", "fsync", "maybe_wrap"]

#: Domains the persistence layer routes through this module.
IO_DOMAINS = ("wal", "snapshot", "manifest")


class FaultyFile:
    """A binary file proxy that injects registry-armed IO faults.

    Args:
        handle: the real (binary) file object.
        domain: failpoint namespace, one of :data:`IO_DOMAINS` (free-form
            domains are allowed for tests).
        registry: the registry to consult; the process-wide
            :data:`~repro.faults.registry.FAILPOINTS` by default.
        sleep: sleep function used by ``delay`` faults (injectable so
            tests never wall-sleep).

    Everything not intercepted (``seek``, ``tell``, ``fileno``, ...)
    passes straight through, so the proxy is drop-in for ``zipfile`` and
    ``numpy`` consumers.
    """

    def __init__(
        self,
        handle: IO[bytes],
        domain: str,
        registry: FailpointRegistry = FAILPOINTS,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._handle = handle
        self._domain = domain
        self._registry = registry
        self._sleep = sleep

    # ------------------------------------------------------------------
    # Intercepted operations
    # ------------------------------------------------------------------
    def write(self, data) -> int:
        spec = self._registry.trigger(f"io.{self._domain}.write")
        if spec is None:
            return self._handle.write(data)
        if spec.kind == "torn":
            return self._torn_write(bytes(data), spec)
        spec.execute(sleep=self._sleep)
        return self._handle.write(data)  # delay faults still write

    def read(self, size: int = -1) -> bytes:
        spec = self._registry.trigger(f"io.{self._domain}.read")
        if spec is None:
            return self._handle.read(size)
        if spec.kind == "short_read":
            data = self._handle.read(size)
            short = data[: int(len(data) * spec.fraction)]
            # Leave the cursor where the short read ended, as a real
            # short read would.
            self._handle.seek(len(short) - len(data), os.SEEK_CUR)
            return short
        spec.execute(sleep=self._sleep)
        return self._handle.read(size)

    def flush(self) -> None:
        spec = self._registry.trigger(f"io.{self._domain}.flush")
        if spec is not None:
            spec.execute(sleep=self._sleep)
        self._handle.flush()

    def _torn_write(self, data: bytes, spec: FaultSpec) -> int:
        kept = data[: int(len(data) * spec.fraction)]
        self._handle.write(kept)
        # Persist the torn prefix the way a power cut would have: flush
        # through the OS so the bytes exist after the process dies.
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except (OSError, ValueError):  # pragma: no cover - non-file sinks
            pass
        if spec.then == "crash":
            os._exit(spec.exit_code)
        raise spec.make_exception()

    # ------------------------------------------------------------------
    # Passthrough
    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        return getattr(self._handle, name)

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._handle.__exit__(*exc_info)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyFile(domain={self._domain!r}, handle={self._handle!r})"


def maybe_wrap(
    handle: IO[bytes],
    domain: str,
    registry: FailpointRegistry = FAILPOINTS,
):
    """Wrap ``handle`` in a :class:`FaultyFile` iff ``io.<domain>.*`` is
    armed; otherwise return it untouched (the zero-cost default)."""
    if not registry.has_prefix(f"io.{domain}."):
        return handle
    return FaultyFile(handle, domain, registry=registry)


def fsync(
    fileno: int,
    domain: str,
    registry: FailpointRegistry = FAILPOINTS,
) -> None:
    """``os.fsync`` with an ``io.<domain>.fsync`` failpoint in front.

    An armed ``error`` fault raises *instead of* syncing — the bytes are
    in the OS page cache but their durability is unknown, which is
    exactly the state a real failed fsync leaves behind.
    """
    if registry._armed:  # fast path mirror of FailpointRegistry.fire
        spec = registry.trigger(f"io.{domain}.fsync")
        if spec is not None:
            spec.execute()
    os.fsync(fileno)
