"""Bounded retry with exponential backoff for transient IO errors.

A long-running summarizer hits IO errors that heal — an NFS hiccup, an
interrupted syscall, a momentarily saturated device. Failing the whole
stream over one of those wastes the incremental investment the paper's
scheme exists to protect; retrying forever hides real faults. This module
is the middle ground: a handful of attempts with exponential backoff,
then the original error propagates.

Classification is deliberately conservative: only ``EIO``, ``EAGAIN``,
``EINTR`` and ``EBUSY`` count as transient. ``ENOSPC`` is **not**
retried — a full disk does not heal in milliseconds, and an operator
needs the loud failure immediately.

Both the sleep function and (for tests that measure backoff) the clock
are injectable, so the test suite never wall-sleeps — the degraded-mode
tests drive thousands of simulated retries in microseconds.
"""

from __future__ import annotations

import errno as errno_module
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

__all__ = ["RetryPolicy", "TRANSIENT_ERRNOS", "is_transient"]

T = TypeVar("T")

#: Errnos worth retrying: failures that routinely heal within
#: milliseconds. ENOSPC is deliberately absent (see module docstring).
TRANSIENT_ERRNOS = frozenset(
    {
        errno_module.EIO,
        errno_module.EAGAIN,
        errno_module.EINTR,
        errno_module.EBUSY,
    }
)


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is an :class:`OSError` worth retrying."""
    return isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff.

    Args:
        attempts: total tries, including the first (``1`` = no retry).
        base_delay: sleep before the first retry, in seconds.
        multiplier: backoff growth factor per retry.
        max_delay: ceiling on any single sleep.
        sleep: the sleep function — injectable so tests pass a recording
            stub instead of wall-sleeping.
    """

    attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def delay_for(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        return min(
            self.base_delay * self.multiplier**retry_index, self.max_delay
        )

    def call(
        self,
        fn: Callable[[], T],
        classify: Callable[[BaseException], bool] = is_transient,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> T:
        """Run ``fn``, retrying transient failures with backoff.

        Args:
            fn: the operation; must be safe to re-execute (callers roll
                back partial effects in ``on_retry``).
            classify: predicate deciding whether an exception is worth
                retrying; non-transient errors propagate immediately.
            on_retry: hook called as ``on_retry(attempt, exc)`` before
                each backoff sleep (1-based attempt that just failed) —
                the place for rollback and retry accounting.

        Raises:
            The last exception, once ``attempts`` are exhausted or a
            non-transient error occurs.
        """
        attempt = 1
        while True:
            try:
                return fn()
            except BaseException as exc:
                if attempt >= self.attempts or not classify(exc):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(self.delay_for(attempt - 1))
                attempt += 1
