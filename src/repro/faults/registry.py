"""Deterministic fault injection: named failpoints.

A **failpoint** is a named hook compiled into a production code path —
``FAILPOINTS.fire("wal.append.flushed")`` — that does nothing until a test
(or an operator, via the ``REPRO_FAILPOINTS`` environment variable) *arms*
it with a fault to inject:

* ``crash`` — terminate the process immediately via :func:`os._exit`
  (no cleanup handlers, no buffered flushes: the closest a test can get
  to pulling the power cord);
* ``error`` — raise an :class:`OSError` with a chosen ``errno``
  (``ENOSPC``, ``EIO``, ...) or an arbitrary exception instance;
* ``delay`` — sleep for a configured duration (through an injectable
  sleep function, so tests never wall-sleep).

Two more kinds are interpreted by :class:`~repro.faults.io.FaultyFile`
rather than executed here:

* ``torn`` — persist only a prefix of a write, then crash or error
  (the signature of a power loss mid-write);
* ``short_read`` — return only a prefix of a read.

Arming supports ``after`` (skip the first N hits — crash at the K-th
append, not the first) and ``times`` (fire at most N times — a transient
error that heals, which is what the retry path needs to be tested
against).

The whole registry is **zero-cost when disabled**: :meth:`fire` on an
empty registry is one attribute load and one falsy check, and no
failpoint lives on a per-point hot path — only on per-batch persistence
boundaries. The streaming overhead budget is enforced by
``benchmarks/test_bench_faults.py`` (≤ 2%, recorded as
``BENCH_faults.json``).

Every fire site declares its name at import time via
:func:`declare_failpoint`, so the crash-matrix test suite can enumerate
:func:`known_failpoints` and prove recovery at every single one.
"""

from __future__ import annotations

import errno as errno_module
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "FAILPOINTS",
    "FaultSpec",
    "FailpointRegistry",
    "declare_failpoint",
    "failpoint",
    "install_from_env",
    "known_failpoints",
]

#: The exit code a ``crash`` fault terminates the process with.  Chosen to
#: be distinctive so the crash-matrix harness can tell an injected crash
#: from an accidental one.
CRASH_EXIT_CODE = 37

#: Environment variable read by :func:`install_from_env`.
ENV_KEY = "REPRO_FAILPOINTS"

_KINDS = ("error", "crash", "delay", "torn", "short_read")

#: Names declared by fire sites at import time (crash-matrix enumeration).
_KNOWN: set[str] = set()


def declare_failpoint(name: str) -> str:
    """Register ``name`` as a known fire site; returns the name.

    Called at module import time by every subsystem that embeds a
    failpoint, so test harnesses can enumerate the full matrix without
    grepping the source.
    """
    _KNOWN.add(name)
    return name


def known_failpoints() -> tuple[str, ...]:
    """All failpoint names declared by imported modules, sorted."""
    return tuple(sorted(_KNOWN))


def _resolve_errno(value: int | str) -> int:
    if isinstance(value, str):
        number = getattr(errno_module, value, None)
        if number is None:
            raise ValueError(f"unknown errno name {value!r}")
        return int(number)
    return int(value)


@dataclass
class FaultSpec:
    """One armed fault.

    Attributes:
        name: the failpoint it is armed on.
        kind: one of ``error``, ``crash``, ``delay``, ``torn``,
            ``short_read``.
        errno: the ``errno`` of the injected :class:`OSError` (``error``
            and ``torn`` kinds); ignored when ``exc`` is given.
        exc: an exception factory overriding the default
            :class:`OSError`.
        after: skip the first ``after`` hits before firing.
        times: fire at most this many times (``None`` = every hit).
        delay: sleep duration for ``delay`` faults, in seconds.
        exit_code: process exit code for ``crash`` (and torn-then-crash)
            faults.
        fraction: prefix fraction persisted/returned by ``torn`` /
            ``short_read`` faults.
        then: what a ``torn`` write does after persisting the prefix —
            ``"crash"`` (default) or ``"error"``.
    """

    name: str
    kind: str = "error"
    errno: int = errno_module.EIO
    exc: Callable[[], BaseException] | None = None
    after: int = 0
    times: int | None = None
    delay: float = 0.0
    exit_code: int = CRASH_EXIT_CODE
    fraction: float = 0.5
    then: str = "crash"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be within [0, 1], got {self.fraction}"
            )
        if self.then not in ("crash", "error"):
            raise ValueError(
                f"torn 'then' must be 'crash' or 'error', got {self.then!r}"
            )
        self.errno = _resolve_errno(self.errno)

    def make_exception(self) -> BaseException:
        """The exception an ``error`` (or torn-then-error) fault raises."""
        if self.exc is not None:
            return self.exc()
        return OSError(
            self.errno,
            f"{os.strerror(self.errno)} [injected at {self.name}]",
        )

    def execute(self, sleep: Callable[[float], None] = time.sleep) -> None:
        """Carry out the fault (``error``/``crash``/``delay`` kinds)."""
        if self.kind == "delay":
            sleep(self.delay)
            return
        if self.kind == "crash":
            os._exit(self.exit_code)
        raise self.make_exception()


@dataclass
class _Armed:
    spec: FaultSpec
    consultations: int = 0
    fired: int = 0

    def should_fire(self) -> bool:
        self.consultations += 1
        if self.consultations <= self.spec.after:
            return False
        if (
            self.spec.times is not None
            and self.fired >= self.spec.times
        ):
            return False
        self.fired += 1
        return True


@dataclass
class FailpointRegistry:
    """Named failpoints with deterministic arm/fire semantics.

    The module-level :data:`FAILPOINTS` instance is the one production
    code consults; tests may also build private registries and pass them
    explicitly (e.g. to :class:`~repro.faults.io.FaultyFile`).
    """

    _armed: dict[str, _Armed] = field(default_factory=dict)
    _enabled: bool = True

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self, name: str, kind: str = "error", **options) -> FaultSpec:
        """Arm ``name`` with a fault; returns the installed spec.

        Keyword options mirror :class:`FaultSpec` fields (``errno``,
        ``exc``, ``after``, ``times``, ``delay``, ``exit_code``,
        ``fraction``, ``then``). Re-arming a name replaces its spec and
        resets its hit counters.
        """
        spec = FaultSpec(name=name, kind=kind, **options)
        self._armed[name] = _Armed(spec=spec)
        return spec

    def disarm(self, name: str) -> bool:
        """Remove the fault on ``name``; returns whether one was armed."""
        return self._armed.pop(name, None) is not None

    def clear(self) -> None:
        """Disarm everything and forget all hit counts."""
        self._armed.clear()

    def enable(self) -> None:
        """Allow armed faults to fire (the default)."""
        self._enabled = True

    def disable(self) -> None:
        """Suppress all faults without disarming them."""
        self._enabled = False

    @property
    def enabled(self) -> bool:
        """Whether faults may fire."""
        return self._enabled

    @contextmanager
    def disabled(self) -> Iterator["FailpointRegistry"]:
        """Context manager suppressing all faults inside the block."""
        previous = self._enabled
        self._enabled = False
        try:
            yield self
        finally:
            self._enabled = previous

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def armed_names(self) -> tuple[str, ...]:
        """Names currently armed, sorted."""
        return tuple(sorted(self._armed))

    def is_armed(self, name: str) -> bool:
        """Whether ``name`` currently carries a fault."""
        return name in self._armed

    def has_prefix(self, prefix: str) -> bool:
        """Whether any armed name starts with ``prefix`` (IO fast path)."""
        if not self._armed or not self._enabled:
            return False
        return any(name.startswith(prefix) for name in self._armed)

    def hits(self, name: str) -> int:
        """How many times the fault on ``name`` has fired."""
        armed = self._armed.get(name)
        return 0 if armed is None else armed.fired

    def consultations(self, name: str) -> int:
        """How many times ``name`` was reached while armed."""
        armed = self._armed.get(name)
        return 0 if armed is None else armed.consultations

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def trigger(self, name: str) -> FaultSpec | None:
        """The spec to execute at this hit, or ``None``.

        Used by interpreters that carry out the fault themselves
        (:class:`~repro.faults.io.FaultyFile` for ``torn`` /
        ``short_read``); plain fire sites call :meth:`fire` instead.
        """
        if not self._armed or not self._enabled:
            return None
        armed = self._armed.get(name)
        if armed is None or not armed.should_fire():
            return None
        return armed.spec

    def fire(
        self, name: str, sleep: Callable[[float], None] = time.sleep
    ) -> None:
        """Execute the fault armed on ``name``, if any fires now.

        The disarmed fast path is one falsy check — cheap enough for
        per-batch persistence boundaries (never placed on per-point
        paths).
        """
        if not self._armed:
            return
        spec = self.trigger(name)
        if spec is not None:
            spec.execute(sleep=sleep)


#: The process-wide registry production fire sites consult.
FAILPOINTS = FailpointRegistry()


@contextmanager
def failpoint(
    name: str,
    kind: str = "error",
    registry: FailpointRegistry = FAILPOINTS,
    **options,
) -> Iterator[FailpointRegistry]:
    """Arm ``name`` on ``registry`` for the duration of a ``with`` block."""
    registry.arm(name, kind=kind, **options)
    try:
        yield registry
    finally:
        registry.disarm(name)


def _parse_spec(name: str, directive: str) -> tuple[str, dict]:
    """Parse one ``kind[:arg[:arg]][@after]`` directive."""
    options: dict = {}
    if "@" in directive:
        directive, after = directive.rsplit("@", 1)
        options["after"] = int(after)
    parts = directive.split(":")
    kind = parts[0]
    args = parts[1:]
    if kind == "crash" and args:
        options["exit_code"] = int(args[0])
    elif kind == "error" and args:
        options["errno"] = args[0]
    elif kind == "delay" and args:
        options["delay"] = float(args[0])
    elif kind in ("torn", "short_read") and args:
        options["fraction"] = float(args[0])
        if kind == "torn" and len(args) > 1:
            if args[1] == "crash":
                options["then"] = "crash"
            else:
                options["then"] = "error"
                options["errno"] = args[1]
    return kind, options


def install_from_env(
    registry: FailpointRegistry = FAILPOINTS,
    environ: dict | None = None,
    key: str = ENV_KEY,
) -> tuple[str, ...]:
    """Arm failpoints described by an environment variable.

    The value is a comma-separated list of ``name=kind[:arg...][@after]``
    directives, e.g.::

        REPRO_FAILPOINTS="wal.append.flushed=crash@3"
        REPRO_FAILPOINTS="io.wal.fsync=error:ENOSPC,snapshot.tmp_written=crash"
        REPRO_FAILPOINTS="io.wal.write=torn:0.5:crash"

    Returns the names armed. This is how the crash-matrix harness arms a
    child process without any code changes in the child.
    """
    source = os.environ if environ is None else environ
    value = source.get(key, "")
    armed: list[str] = []
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if "=" not in entry:
            raise ValueError(
                f"malformed failpoint directive {entry!r} "
                "(expected name=kind[:arg...][@after])"
            )
        name, directive = entry.split("=", 1)
        kind, options = _parse_spec(name, directive)
        registry.arm(name, kind=kind, **options)
        armed.append(name)
    return tuple(armed)
