"""Deterministic fault injection for robustness testing.

The paper's promise — a summary "available at any point in time" — is only
credible if availability survives the failures a long-running service
actually meets: torn writes, full disks, flaky devices, corrupted files,
poisoned input. This package provides the machinery that *proves* it:

* :mod:`~repro.faults.registry` — :class:`FailpointRegistry`: named
  crash/error/delay points compiled into the persistence paths, armed by
  tests (or ``REPRO_FAILPOINTS`` in a child process) and zero-cost when
  disabled;
* :mod:`~repro.faults.io` — :class:`FaultyFile`: a file proxy injecting
  torn writes, short reads, ``ENOSPC``/``EIO`` and fsync failures into
  the WAL/snapshot/manifest IO;
* :mod:`~repro.faults.retry` — :class:`RetryPolicy`: bounded
  exponential backoff for transient IO errors, with injectable sleep so
  tests never wall-sleep.

The crash-matrix suite (``tests/test_faults_crash_matrix.py``) kills a
child process at every :func:`known_failpoints` entry and asserts that
recovery yields either bit-identical state or a consistent older
generation — never a traceback, never silent corruption. Failure modes
and failpoint names are catalogued in ``docs/ROBUSTNESS.md``.
"""

from .io import FaultyFile, IO_DOMAINS, fsync, maybe_wrap
from .registry import (
    CRASH_EXIT_CODE,
    ENV_KEY,
    FAILPOINTS,
    FailpointRegistry,
    FaultSpec,
    declare_failpoint,
    failpoint,
    install_from_env,
    known_failpoints,
)
from .retry import RetryPolicy, TRANSIENT_ERRNOS, is_transient

__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_KEY",
    "FAILPOINTS",
    "FailpointRegistry",
    "FaultSpec",
    "FaultyFile",
    "IO_DOMAINS",
    "RetryPolicy",
    "TRANSIENT_ERRNOS",
    "declare_failpoint",
    "failpoint",
    "fsync",
    "install_from_env",
    "is_transient",
    "known_failpoints",
    "maybe_wrap",
]
