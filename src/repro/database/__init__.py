"""Dynamic in-memory database substrate.

:class:`PointStore` holds the current points with stable ids, ground-truth
labels and bubble ownership; :class:`UpdateBatch` is one batch of deletions
and insertions flowing from a scenario generator into a maintainer.
"""

from .batch import UpdateBatch
from .store import PointStore

__all__ = ["PointStore", "UpdateBatch"]
