"""Batches of updates to a dynamic database.

The paper inspects the clustering structure "after a set of updates during
which N% points have been deleted and M% points have been inserted"
(Section 4). :class:`UpdateBatch` is that unit of work: a set of point ids
to delete plus a matrix of new points (with ground-truth labels) to insert.

Batches are produced by the scenario generators in :mod:`repro.data` and
consumed by the maintainers in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..types import Label, PointId

__all__ = ["UpdateBatch"]


@dataclass(frozen=True)
class UpdateBatch:
    """One batch of deletions followed by insertions.

    Attributes:
        deletions: ids of points to delete (must be alive in the store).
        insertions: ``(m, d)`` matrix of new points.
        insertion_labels: ground-truth labels, one per inserted point.
            Carried for evaluation only; the summarization never reads them.
    """

    deletions: tuple[PointId, ...] = ()
    insertions: np.ndarray = field(
        default_factory=lambda: np.empty((0, 0), dtype=np.float64)
    )
    insertion_labels: tuple[Label, ...] = ()

    def __post_init__(self) -> None:
        insertions = np.asarray(self.insertions, dtype=np.float64)
        if insertions.ndim != 2:
            raise ValueError(
                f"insertions must be a (m, d) matrix, got ndim={insertions.ndim}"
            )
        object.__setattr__(self, "insertions", insertions)
        if len(self.insertion_labels) != insertions.shape[0]:
            raise ValueError(
                f"{insertions.shape[0]} insertions but "
                f"{len(self.insertion_labels)} labels"
            )

    @property
    def num_deletions(self) -> int:
        """How many points this batch deletes."""
        return len(self.deletions)

    @property
    def num_insertions(self) -> int:
        """How many points this batch inserts."""
        return int(self.insertions.shape[0])

    @property
    def num_updates(self) -> int:
        """Total update volume (deletions + insertions)."""
        return self.num_deletions + self.num_insertions

    def is_empty(self) -> bool:
        """Whether the batch performs no work at all."""
        return self.num_updates == 0

    @classmethod
    def empty(cls, dim: int) -> "UpdateBatch":
        """A no-op batch for ``dim``-dimensional data."""
        return cls(
            deletions=(),
            insertions=np.empty((0, dim), dtype=np.float64),
            insertion_labels=(),
        )
