"""In-memory dynamic point database.

The paper's setting is an *incremental database*: a large set of
``d``-dimensional points that changes through batches of insertions and
deletions driven by application logic (Section 1). :class:`PointStore` is
that substrate:

* every inserted point receives a **stable integer id** (ids are never
  reused, so a deletion can always be validated);
* each point carries a **ground-truth label** (used only by the evaluation
  harness — the clustering pipeline never reads it);
* each point records which **data bubble owns it**, which is what makes
  deletions O(1): the incremental maintainer looks the owner up instead of
  searching all bubbles (Section 4: "the data bubble B where p was
  previously assigned").

Storage is a set of parallel, capacity-doubling numpy arrays indexed by the
point id itself, plus an aliveness mask. That keeps bulk snapshots (the
complete-rebuild baseline re-summarizes the whole database every batch)
vectorised and cheap.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..exceptions import (
    DimensionMismatchError,
    UnknownPointError,
)
from ..types import NOISE_LABEL, BubbleId, Label, PointId, PointMatrix

__all__ = ["PointStore"]

_UNOWNED: int = -1
_INITIAL_CAPACITY: int = 1024


class PointStore:
    """Dynamic set of labelled points with stable ids and bubble ownership.

    Args:
        dim: dimensionality of all points in the store.

    Example:
        >>> store = PointStore(dim=2)
        >>> ids = store.insert([[0.0, 0.0], [1.0, 1.0]], labels=[0, 0])
        >>> store.size
        2
        >>> store.delete([ids[0]])
        >>> store.size
        1
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self._dim = int(dim)
        self._capacity = _INITIAL_CAPACITY
        self._points = np.empty((self._capacity, dim), dtype=np.float64)
        self._labels = np.empty(self._capacity, dtype=np.int64)
        self._owners = np.empty(self._capacity, dtype=np.int64)
        self._alive = np.zeros(self._capacity, dtype=bool)
        self._next_id = 0
        self._size = 0

    # ------------------------------------------------------------------
    # Reconstruction (persistence support)
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls,
        dim: int,
        ids: np.ndarray,
        points: np.ndarray,
        labels: np.ndarray,
        owners: np.ndarray | None = None,
        next_id: int | None = None,
    ) -> "PointStore":
        """Rebuild a store from persisted state, preserving ids.

        Args:
            dim: point dimensionality.
            ids: alive point ids (ascending, may have gaps from earlier
                deletions).
            points: coordinates aligned with ``ids``.
            labels: ground-truth labels aligned with ``ids``.
            owners: bubble ownership aligned with ``ids`` (``-1`` =
                unowned); all unowned when omitted.
            next_id: the id counter to resume from; defaults to one past
                the largest alive id (safe: ids are never reused, so any
                id gap above that was free anyway).
        """
        ids = np.asarray(ids, dtype=np.int64)
        points = np.asarray(points, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if ids.ndim != 1 or points.shape != (ids.size, dim):
            raise ValueError("ids and points must align as (m,) and (m, dim)")
        if labels.shape != ids.shape:
            raise ValueError("labels must align with ids")
        if ids.size and ((np.diff(ids) <= 0).any() or ids[0] < 0):
            raise ValueError("ids must be non-negative and strictly ascending")
        store = cls(dim=dim)
        resume = int(next_id) if next_id is not None else (
            int(ids[-1]) + 1 if ids.size else 0
        )
        if ids.size and resume <= int(ids[-1]):
            raise ValueError("next_id must exceed every alive id")
        store._ensure_capacity(max(resume, 1))
        store._points[ids] = points
        store._labels[ids] = labels
        if owners is not None:
            owners = np.asarray(owners, dtype=np.int64)
            if owners.shape != ids.shape:
                raise ValueError("owners must align with ids")
            store._owners[ids] = owners
        else:
            store._owners[ids] = _UNOWNED
        store._alive[ids] = True
        store._next_id = resume
        store._size = int(ids.size)
        return store

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(
        self,
        points: PointMatrix,
        labels: Sequence[Label] | np.ndarray | None = None,
    ) -> list[PointId]:
        """Insert a batch of points; returns their newly assigned ids.

        Args:
            points: ``(m, d)`` matrix of new points.
            labels: optional ground-truth labels, one per point; defaults to
                :data:`~repro.types.NOISE_LABEL` for every point.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.ndim != 2 or points.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"expected (m, {self._dim}) points, got shape {points.shape}"
            )
        count = points.shape[0]
        if labels is None:
            label_array = np.full(count, NOISE_LABEL, dtype=np.int64)
        else:
            label_array = np.asarray(labels, dtype=np.int64)
            if label_array.shape != (count,):
                raise ValueError(
                    f"expected {count} labels, got shape {label_array.shape}"
                )
        start = self._next_id
        self._ensure_capacity(start + count)
        self._points[start : start + count] = points
        self._labels[start : start + count] = label_array
        self._owners[start : start + count] = _UNOWNED
        self._alive[start : start + count] = True
        self._next_id += count
        self._size += count
        return list(range(start, start + count))

    def delete(self, point_ids: Sequence[PointId]) -> None:
        """Delete points by id.

        Raises:
            UnknownPointError: if any id is unknown or already deleted; the
                store is left unchanged in that case.
        """
        ids = np.asarray(point_ids, dtype=np.int64)
        if ids.size == 0:
            return
        bad = (ids < 0) | (ids >= self._next_id)
        if bad.any() or not self._alive[ids].all():
            first = int(ids[bad][0]) if bad.any() else int(
                ids[~self._alive[np.clip(ids, 0, self._next_id - 1)]][0]
            )
            raise UnknownPointError(f"point id {first} is not alive")
        self._alive[ids] = False
        self._owners[ids] = _UNOWNED
        self._size -= ids.size

    def set_owner(self, point_id: PointId, bubble_id: BubbleId) -> None:
        """Record which bubble currently summarizes ``point_id``."""
        self._check_alive(point_id)
        self._owners[point_id] = bubble_id

    def set_owners(
        self, point_ids: Sequence[PointId], bubble_ids: Sequence[BubbleId]
    ) -> None:
        """Vectorised :meth:`set_owner` for parallel sequences."""
        ids = np.asarray(point_ids, dtype=np.int64)
        owners = np.asarray(bubble_ids, dtype=np.int64)
        if ids.shape != owners.shape:
            raise ValueError("point_ids and bubble_ids must align")
        if ids.size == 0:
            return
        if not self._alive[ids].all():
            raise UnknownPointError("cannot set owner of a dead point")
        self._owners[ids] = owners

    def clear_owners(self) -> None:
        """Forget every ownership record (used before a complete rebuild)."""
        self._owners[: self._next_id] = _UNOWNED

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Dimensionality of the stored points."""
        return self._dim

    @property
    def size(self) -> int:
        """Number of currently alive points (the paper's ``N``)."""
        return self._size

    @property
    def next_id(self) -> int:
        """The id the next inserted point will receive.

        Ids are handed out monotonically and never reused, so persisting
        this counter (rather than deriving it from the alive ids) keeps id
        assignment stable across a save/restore even when the most recently
        inserted points have already been deleted again.
        """
        return self._next_id

    def __len__(self) -> int:
        return self._size

    def __contains__(self, point_id: object) -> bool:
        if not isinstance(point_id, (int, np.integer)):
            return False
        idx = int(point_id)
        return 0 <= idx < self._next_id and bool(self._alive[idx])

    def point(self, point_id: PointId) -> np.ndarray:
        """The coordinates of one alive point (read-only view)."""
        self._check_alive(point_id)
        view = self._points[point_id].view()
        view.flags.writeable = False
        return view

    def label(self, point_id: PointId) -> Label:
        """Ground-truth label of one alive point."""
        self._check_alive(point_id)
        return int(self._labels[point_id])

    def owner(self, point_id: PointId) -> BubbleId | None:
        """Bubble currently owning the point, or ``None`` if unassigned."""
        self._check_alive(point_id)
        owner = int(self._owners[point_id])
        return None if owner == _UNOWNED else owner

    def ids(self) -> np.ndarray:
        """Ids of all alive points, ascending."""
        return np.flatnonzero(self._alive[: self._next_id]).astype(np.int64)

    def points_of(self, point_ids: Sequence[PointId]) -> np.ndarray:
        """Coordinate matrix for the given alive ids."""
        ids = np.asarray(point_ids, dtype=np.int64)
        if ids.size and not self._alive[ids].all():
            raise UnknownPointError("requested a dead point")
        return self._points[ids].copy()

    def owners_of(self, point_ids: Sequence[PointId]) -> np.ndarray:
        """Bubble ownership for the given alive ids (``-1`` = unowned)."""
        ids = np.asarray(point_ids, dtype=np.int64)
        if ids.size and not self._alive[ids].all():
            raise UnknownPointError("requested a dead point")
        return self._owners[ids].copy()

    def labels_of(self, point_ids: Sequence[PointId]) -> np.ndarray:
        """Ground-truth labels for the given alive ids."""
        ids = np.asarray(point_ids, dtype=np.int64)
        if ids.size and not self._alive[ids].all():
            raise UnknownPointError("requested a dead point")
        return self._labels[ids].copy()

    def snapshot(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(ids, points, labels)`` of all alive points in one shot.

        The workhorse of the complete-rebuild baseline and of the evaluation
        harness.
        """
        ids = self.ids()
        return ids, self._points[ids].copy(), self._labels[ids].copy()

    def iter_alive(self) -> Iterator[tuple[PointId, np.ndarray]]:
        """Iterate ``(id, point)`` pairs for all alive points."""
        for point_id in self.ids():
            yield int(point_id), self._points[point_id]

    def ids_with_label(self, label: Label) -> np.ndarray:
        """Alive point ids whose ground-truth label equals ``label``."""
        mask = self._alive[: self._next_id] & (
            self._labels[: self._next_id] == label
        )
        return np.flatnonzero(mask).astype(np.int64)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_alive(self, point_id: PointId) -> None:
        if not (0 <= point_id < self._next_id) or not self._alive[point_id]:
            raise UnknownPointError(f"point id {point_id} is not alive")

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < needed:
            new_capacity *= 2
        self._points = np.resize(self._points, (new_capacity, self._dim))
        self._labels = np.resize(self._labels, new_capacity)
        self._owners = np.resize(self._owners, new_capacity)
        alive = np.zeros(new_capacity, dtype=bool)
        alive[: self._capacity] = self._alive
        self._alive = alive
        self._capacity = new_capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PointStore(dim={self._dim}, size={self._size})"
