"""NDJSON point events: the ingestion service's wire format.

One event is one JSON object on one line (newline-delimited JSON). The
schema is deliberately tiny — a tenant routes the event to its shard and
a point is what the summarizer ingests::

    {"schema": 1, "tenant": "user-0042", "point": [0.18, -3.2],
     "label": 7, "ts": 12.0}

Fields:

* ``tenant`` (required) — stream identifier; becomes the shard's state
  directory name under the fleet root, so it is restricted to a safe
  charset (``[A-Za-z0-9][A-Za-z0-9._-]*``, at most 64 characters, and
  never ``.`` or ``..``).
* ``point`` (required) — list of finite numbers; the arity must match
  the fleet's dimensionality (checked at the shard boundary, not here,
  so one parser serves fleets of any dimension).
* ``label`` (optional, default ``-1``) — integer ground-truth label
  carried through to the store for evaluation workloads.
* ``ts`` (optional) — producer-side virtual timestamp; recorded by the
  load generator (burst index), ignored by the dispatcher. Ingestion
  latency is measured from *arrival at the service*, not from ``ts``.
* ``schema`` (optional) — format version; only ``1`` is accepted.

Unknown keys are rejected — silently ignoring them would hide producer
bugs (a typo'd ``lable`` must not become an unlabeled point).

Parsing follows the same policy split as the ingestion guards
(:mod:`repro.core.validate`): ``strict`` raises
:class:`~repro.exceptions.EventError` with the line number, ``skip``
drops the malformed line and counts it.
"""

from __future__ import annotations

import io
import json
import math
import pathlib
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from ..exceptions import EventError

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "PointEvent",
    "encode_event",
    "event_document",
    "event_from_document",
    "parse_event",
    "read_events",
    "valid_tenant",
    "write_events",
]

#: Version accepted (and stamped) on every NDJSON point event.
EVENT_SCHEMA_VERSION = 1

#: Tenant ids become directory names under the fleet root, so they are
#: restricted to a filesystem- and shell-safe charset.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_ALLOWED_KEYS = frozenset({"schema", "tenant", "point", "label", "ts"})


def valid_tenant(tenant: str) -> bool:
    """Whether ``tenant`` is a legal shard/directory name."""
    return (
        isinstance(tenant, str)
        and tenant not in (".", "..")
        and _TENANT_RE.match(tenant) is not None
    )


@dataclass(frozen=True)
class PointEvent:
    """One parsed NDJSON point event."""

    tenant: str
    point: tuple[float, ...]
    label: int = -1
    ts: float | None = None


def event_document(event: PointEvent) -> dict:
    """The JSON document for one event (what :func:`encode_event` dumps).

    Exposed separately so other durable formats — the dead-letter queue
    embeds whole events inside its own envelope — can nest the document
    without a string round-trip.
    """
    document: dict = {
        "schema": EVENT_SCHEMA_VERSION,
        "tenant": event.tenant,
        "point": list(event.point),
    }
    if event.label != -1:
        document["label"] = int(event.label)
    if event.ts is not None:
        document["ts"] = float(event.ts)
    return document


def encode_event(event: PointEvent) -> str:
    """Serialize one event as a single NDJSON line (no trailing newline)."""
    return json.dumps(event_document(event), separators=(",", ":"))


def parse_event(line: str, lineno: int | None = None) -> PointEvent:
    """Parse one NDJSON line into a :class:`PointEvent`.

    Raises:
        EventError: the line is not valid JSON, is not an object, has an
            unsupported schema version, unknown keys, a bad tenant id,
            or a non-finite/non-numeric point.
    """
    try:
        document = json.loads(line)
    except json.JSONDecodeError as exc:
        raise EventError(f"not valid JSON ({exc.msg})", lineno) from None
    return event_from_document(document, lineno)


def event_from_document(document: object, lineno: int | None = None) -> PointEvent:
    """Validate one already-decoded JSON document into a :class:`PointEvent`.

    The validation backend of :func:`parse_event`; also used on event
    documents nested inside dead-letter envelopes, so a hand-edited
    ``deadletter.ndjson`` gets exactly the wire-format screening.
    """
    if not isinstance(document, dict):
        raise EventError(
            f"expected a JSON object, got {type(document).__name__}",
            lineno,
        )
    unknown = set(document) - _ALLOWED_KEYS
    if unknown:
        raise EventError(
            f"unknown keys {sorted(unknown)} (allowed: "
            f"{sorted(_ALLOWED_KEYS)})",
            lineno,
        )
    schema = document.get("schema", EVENT_SCHEMA_VERSION)
    if schema != EVENT_SCHEMA_VERSION:
        raise EventError(
            f"unsupported event schema {schema!r} "
            f"(this build reads schema {EVENT_SCHEMA_VERSION})",
            lineno,
        )
    tenant = document.get("tenant")
    if not valid_tenant(tenant):
        raise EventError(
            f"invalid tenant {tenant!r} (expected 1-64 chars of "
            "[A-Za-z0-9._-], starting alphanumeric)",
            lineno,
        )
    raw_point = document.get("point")
    if not isinstance(raw_point, list) or not raw_point:
        raise EventError(
            f"'point' must be a non-empty list, got {raw_point!r}", lineno
        )
    point: list[float] = []
    for value in raw_point:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EventError(
                f"point coordinate {value!r} is not a number", lineno
            )
        coordinate = float(value)
        if not math.isfinite(coordinate):
            raise EventError(
                f"point coordinate {value!r} is not finite", lineno
            )
        point.append(coordinate)
    label = document.get("label", -1)
    if isinstance(label, bool) or not isinstance(label, int):
        raise EventError(f"label {label!r} is not an integer", lineno)
    ts = document.get("ts")
    if ts is not None:
        if isinstance(ts, bool) or not isinstance(ts, (int, float)):
            raise EventError(f"ts {ts!r} is not a number", lineno)
        ts = float(ts)
    return PointEvent(
        tenant=tenant, point=tuple(point), label=label, ts=ts
    )


def read_events(
    source: str | pathlib.Path | TextIO,
    on_bad_event: str = "strict",
    bad_event_sink=None,
) -> Iterator[PointEvent]:
    """Stream events from an NDJSON file, path, or text handle.

    Blank lines are ignored. ``on_bad_event`` is ``"strict"`` (raise
    :class:`~repro.exceptions.EventError` with the line number) or
    ``"skip"`` (drop the line; when ``bad_event_sink`` is given, call it
    with the :class:`~repro.exceptions.EventError` so callers can count
    or log the drop).
    """
    if on_bad_event not in ("strict", "skip"):
        raise EventError(
            f"unknown event policy {on_bad_event!r} "
            "(expected 'strict' or 'skip')"
        )
    if isinstance(source, (str, pathlib.Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from read_events(
                handle, on_bad_event=on_bad_event,
                bad_event_sink=bad_event_sink,
            )
        return
    for lineno, line in enumerate(source, start=1):
        if not line.strip():
            continue
        try:
            yield parse_event(line, lineno)
        except EventError as exc:
            if on_bad_event == "strict":
                raise
            if bad_event_sink is not None:
                bad_event_sink(exc)


def write_events(
    target: str | pathlib.Path | TextIO, events: Iterable[PointEvent]
) -> int:
    """Write events as NDJSON to a path or text handle; returns the count."""
    if isinstance(target, (str, pathlib.Path)):
        with open(target, "w", encoding="utf-8") as handle:
            return write_events(handle, events)
    count = 0
    buffer: list[str] = []
    for event in events:
        buffer.append(encode_event(event))
        count += 1
        if len(buffer) >= 1024:
            target.write("\n".join(buffer) + "\n")
            buffer.clear()
    if buffer:
        target.write("\n".join(buffer) + "\n")
    if isinstance(target, io.TextIOBase):
        target.flush()
    return count
