"""Deterministic load generator: Zipf tenant skew, bursty arrivals.

Simulating "heavy traffic from millions of users" needs two properties
real traffic has and uniform synthetic streams lack:

* **Skewed tenant sizes** — per-event tenant choice follows a Zipf law
  (tenant rank ``r`` drawn with probability ∝ ``r^-s``), so a few
  tenants dominate while a long tail trickles. This is what exercises
  per-shard backpressure: the head tenant's queue saturates while tail
  shards idle.
* **Bursty arrivals** — events come in Poisson-sized bursts sharing one
  virtual timestamp, the batch-incremental framing of arXiv 1701.09049:
  the service turns each burst's per-tenant slice into micro-batches
  rather than paying per-point maintenance.

Everything is driven by one seeded :class:`numpy.random.Generator`, so
a :class:`LoadSpec` defines the event stream *exactly*: two runs — or a
run and its NDJSON round trip through :mod:`repro.service.events`
(JSON's shortest-repr floats round-trip IEEE doubles losslessly) —
produce identical events in identical order.

Each tenant's points form a private drifting Gaussian cloud (centers on
a circle in the first two dimensions, drifting tangentially per point),
so per-tenant summaries are non-trivial and labeled by tenant index for
evaluation workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..exceptions import InvalidConfigError
from .events import PointEvent

__all__ = [
    "LoadSpec",
    "generate_events",
    "tenant_ids",
    "tenant_weights",
]

#: Radius of the circle tenant cloud centers sit on.
_CENTER_RADIUS = 8.0


@dataclass(frozen=True)
class LoadSpec:
    """One reproducible workload.

    Args:
        tenants: how many tenant streams exist.
        events: total point events to generate.
        dim: point dimensionality.
        seed: RNG seed; the spec + seed define the stream exactly.
        zipf_s: Zipf exponent for the tenant-size skew (0 = uniform;
            1.1 ≈ web-traffic-like head/tail split).
        burst_mean: mean Poisson burst size (events sharing one virtual
            timestamp).
        drift: per-point tangential drift of each tenant's cloud
            center, so summaries track movement, not a static blob.
    """

    tenants: int = 8
    events: int = 5_000
    dim: int = 2
    seed: int = 0
    zipf_s: float = 1.1
    burst_mean: float = 32.0
    drift: float = 0.02

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise InvalidConfigError(
                f"tenants must be >= 1, got {self.tenants}"
            )
        if self.events < 0:
            raise InvalidConfigError(
                f"events must be >= 0, got {self.events}"
            )
        if self.dim < 1:
            raise InvalidConfigError(f"dim must be >= 1, got {self.dim}")
        if self.zipf_s < 0:
            raise InvalidConfigError(
                f"zipf_s must be >= 0, got {self.zipf_s}"
            )
        if self.burst_mean <= 0:
            raise InvalidConfigError(
                f"burst_mean must be > 0, got {self.burst_mean}"
            )


def tenant_ids(spec: LoadSpec) -> list[str]:
    """Stable tenant ids: ``tenant-000`` … (rank order, largest first)."""
    return [f"tenant-{i:03d}" for i in range(spec.tenants)]


def tenant_weights(spec: LoadSpec) -> np.ndarray:
    """Normalized Zipf weights; index 0 is the heaviest tenant."""
    ranks = np.arange(1, spec.tenants + 1, dtype=np.float64)
    weights = ranks ** -float(spec.zipf_s)
    return weights / weights.sum()


def _tenant_centers(spec: LoadSpec) -> np.ndarray:
    """Cloud centers on a circle in the first two dims (or a line in 1d)."""
    centers = np.zeros((spec.tenants, spec.dim), dtype=np.float64)
    for i in range(spec.tenants):
        angle = 2.0 * math.pi * i / spec.tenants
        if spec.dim == 1:
            centers[i, 0] = _CENTER_RADIUS * (2.0 * i / spec.tenants - 1.0)
        else:
            centers[i, 0] = _CENTER_RADIUS * math.cos(angle)
            centers[i, 1] = _CENTER_RADIUS * math.sin(angle)
    return centers


def _tenant_drifts(spec: LoadSpec) -> np.ndarray:
    """Per-point drift vectors (tangential to the center circle)."""
    drifts = np.zeros((spec.tenants, spec.dim), dtype=np.float64)
    for i in range(spec.tenants):
        angle = 2.0 * math.pi * i / spec.tenants
        if spec.dim == 1:
            drifts[i, 0] = spec.drift
        else:
            drifts[i, 0] = -spec.drift * math.sin(angle)
            drifts[i, 1] = spec.drift * math.cos(angle)
    return drifts


def generate_events(spec: LoadSpec) -> Iterator[PointEvent]:
    """Yield the spec's event stream (deterministic in spec alone).

    Events carry ``ts`` = burst index (virtual time) and ``label`` =
    tenant index, so recorded streams double as labeled evaluation
    fixtures.
    """
    rng = np.random.default_rng(spec.seed)
    ids = tenant_ids(spec)
    weights = tenant_weights(spec)
    centers = _tenant_centers(spec)
    drifts = _tenant_drifts(spec)
    counts = np.zeros(spec.tenants, dtype=np.int64)
    produced = 0
    burst_index = 0
    while produced < spec.events:
        burst = int(1 + rng.poisson(spec.burst_mean))
        burst = min(burst, spec.events - produced)
        chosen = rng.choice(spec.tenants, size=burst, p=weights)
        noise = rng.normal(0.0, 1.0, size=(burst, spec.dim))
        for row, tenant in enumerate(chosen):
            tenant = int(tenant)
            k = int(counts[tenant])
            counts[tenant] += 1
            point = centers[tenant] + k * drifts[tenant] + noise[row]
            yield PointEvent(
                tenant=ids[tenant],
                point=tuple(float(v) for v in point),
                label=tenant,
                ts=float(burst_index),
            )
        produced += burst
        burst_index += 1
