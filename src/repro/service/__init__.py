"""Multi-tenant sharded ingestion service over durable summarizers.

The single-process engine summarizes *one* stream; this package turns
it into a long-running service hosting many independent streams — the
system-level realization of the paper's framing of data-bubble
summarization as the online front-end for dynamic hierarchical
clustering, serving many concurrently evolving databases at once.

Layers (each its own module):

* :mod:`~repro.service.events` — the NDJSON point-event wire format
  (parse/encode/stream, with strict/skip malformed-line policies);
* :mod:`~repro.service.shard` — one tenant's bounded queue with
  explicit backpressure (block or shed) and micro-batched appends into
  its :class:`~repro.streaming.DurableSummarizer`;
* :mod:`~repro.service.fleet` — tenant routing, the flusher worker
  pool, the fleet directory layout (one WAL dir per tenant under
  ``tenants/``), graceful drain with checkpointing, fleet-wide crash
  recovery, and health rollups;
* :mod:`~repro.service.loadgen` — a seeded load generator with
  Zipf-skewed tenant sizes and bursty Poisson arrivals;
* :mod:`~repro.service.server` — the serve loop gluing an NDJSON
  source to a fleet, with drop accounting and drain-on-exit;
* :mod:`~repro.service.deadletter` — the durable per-tenant
  dead-letter queue for events the fleet could not apply (poisoned
  batches, breaker-shed traffic, failed-shard drain residue);
* :mod:`~repro.service.supervisor` — shard self-healing: bounded
  restarts with exponential backoff and per-tenant circuit breakers.

CLI surface: ``repro-bubbles loadgen`` writes an event stream,
``repro-bubbles serve`` ingests one into a fleet directory. See
docs/SERVICE.md for the architecture, the backpressure policy, and the
determinism contract.
"""

from __future__ import annotations

from .deadletter import (
    DEADLETTER_REASONS,
    DEADLETTER_SCHEMA_VERSION,
    DeadLetter,
    ReplayReport,
    append_dead_letters,
    deadletter_path,
    read_dead_letters,
    replay_dead_letters,
)
from .events import (
    EVENT_SCHEMA_VERSION,
    PointEvent,
    encode_event,
    parse_event,
    read_events,
    valid_tenant,
    write_events,
)
from .fleet import (
    FLEET_VERSION,
    FleetConfig,
    FleetManager,
    render_rollup,
    tenant_seed,
)
from .loadgen import LoadSpec, generate_events, tenant_ids, tenant_weights
from .server import ServeStats, serve_events, serve_ndjson
from .shard import (
    BACKPRESSURE_POLICIES,
    SHARD_STATES,
    Shard,
    histogram_quantile,
)
from .supervisor import BREAKER_STATES, CircuitBreaker, ShardSupervisor

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BREAKER_STATES",
    "CircuitBreaker",
    "DEADLETTER_REASONS",
    "DEADLETTER_SCHEMA_VERSION",
    "DeadLetter",
    "EVENT_SCHEMA_VERSION",
    "FLEET_VERSION",
    "FleetConfig",
    "FleetManager",
    "LoadSpec",
    "PointEvent",
    "ReplayReport",
    "SHARD_STATES",
    "ServeStats",
    "Shard",
    "ShardSupervisor",
    "append_dead_letters",
    "deadletter_path",
    "encode_event",
    "generate_events",
    "histogram_quantile",
    "parse_event",
    "read_dead_letters",
    "read_events",
    "render_rollup",
    "replay_dead_letters",
    "serve_events",
    "serve_ndjson",
    "tenant_ids",
    "tenant_seed",
    "tenant_weights",
    "valid_tenant",
    "write_events",
]
