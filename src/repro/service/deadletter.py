"""Durable per-tenant dead-letter queue (``tenants/<t>/deadletter.ndjson``).

When the fleet cannot apply an event — the micro-batch holding it blew
up a shard, a circuit breaker is shedding a poisoned tenant, or a failed
shard still held queued points at drain — the event must not simply
vanish from the accounting, and it must *never* reach the WAL (the WAL
is the record of what was applied; a poisoned batch replayed at recovery
would re-kill the shard). Instead each such event is appended here, one
schema-stamped JSON envelope per line::

    {"schema": 1, "reason": "append_failed", "error": "ServiceError: ...",
     "event": {"schema": 1, "tenant": "user-0042", "point": [0.1, -3.2]}}

* ``reason`` — why the event was parked: ``append_failed`` (the batch
  that poisoned a shard), ``breaker_open`` (shed while the tenant's
  circuit breaker was open), or ``drain_failed_shard`` (still queued on
  a failed shard when the fleet drained).
* ``error`` — the stringified exception behind ``append_failed`` /
  ``drain_failed_shard`` envelopes, for post-mortems.
* ``event`` — the full wire-format event document
  (:func:`repro.service.events.event_document`), so a dead letter can be
  re-submitted through the *normal* ingestion path byte-for-byte.

The file is append-only NDJSON with the same crash semantics as the
event log: a torn final line (crash mid-append) is tolerated on read and
dropped; a malformed line *before* the tail fails loudly. Replay
(:func:`replay_dead_letters`, surfaced as ``repro-bubbles dlq
--replay``) drains letters back through a caller-supplied submit
callable and atomically rewrites the file with whatever could not be
re-submitted — a fully drained queue leaves an empty file behind.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Callable, Iterable

from ..exceptions import EventError, ServiceError
from ..faults import FAILPOINTS, declare_failpoint
from .events import PointEvent, event_document, event_from_document

__all__ = [
    "DEADLETTER_FILENAME",
    "DEADLETTER_SCHEMA_VERSION",
    "DEADLETTER_REASONS",
    "DeadLetter",
    "ReplayReport",
    "append_dead_letters",
    "deadletter_path",
    "read_dead_letters",
    "replay_dead_letters",
]

#: Version stamped on (and required of) every dead-letter envelope.
DEADLETTER_SCHEMA_VERSION = 1

#: File name under each tenant's state directory.
DEADLETTER_FILENAME = "deadletter.ndjson"

#: The accepted ``reason`` values, mirrored in the accounting counters.
DEADLETTER_REASONS = ("append_failed", "breaker_open", "drain_failed_shard")

# Fired after a dead-letter append has been flushed to the file — the
# durability boundary the fleet chaos matrix kills at.
_FP_APPEND_FLUSHED = declare_failpoint("dlq.append.flushed")


@dataclass(frozen=True)
class DeadLetter:
    """One parked event plus why it was parked."""

    event: PointEvent
    reason: str
    error: str | None = None

    def __post_init__(self) -> None:
        if self.reason not in DEADLETTER_REASONS:
            raise ServiceError(
                f"unknown dead-letter reason {self.reason!r} "
                f"(expected one of {DEADLETTER_REASONS})"
            )


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one :func:`replay_dead_letters` pass."""

    replayed: int
    requeued: int

    @property
    def drained(self) -> bool:
        """Whether the queue is now empty."""
        return self.requeued == 0


def deadletter_path(state_dir: str | pathlib.Path) -> pathlib.Path:
    """The dead-letter file for one tenant's state directory."""
    return pathlib.Path(state_dir) / DEADLETTER_FILENAME


def _encode(letter: DeadLetter) -> str:
    envelope: dict = {
        "schema": DEADLETTER_SCHEMA_VERSION,
        "reason": letter.reason,
        "event": event_document(letter.event),
    }
    if letter.error is not None:
        envelope["error"] = str(letter.error)
    return json.dumps(envelope, separators=(",", ":"))


def _decode(line: str, lineno: int) -> DeadLetter:
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError as exc:
        raise EventError(
            f"dead-letter line is not valid JSON ({exc.msg})", lineno
        ) from None
    if not isinstance(envelope, dict):
        raise EventError(
            f"dead-letter line is not a JSON object "
            f"(got {type(envelope).__name__})",
            lineno,
        )
    schema = envelope.get("schema")
    if schema != DEADLETTER_SCHEMA_VERSION:
        raise EventError(
            f"unsupported dead-letter schema {schema!r} (this build "
            f"reads schema {DEADLETTER_SCHEMA_VERSION})",
            lineno,
        )
    reason = envelope.get("reason")
    if reason not in DEADLETTER_REASONS:
        raise EventError(
            f"unknown dead-letter reason {reason!r} "
            f"(expected one of {DEADLETTER_REASONS})",
            lineno,
        )
    error = envelope.get("error")
    if error is not None and not isinstance(error, str):
        raise EventError(
            f"dead-letter error {error!r} is not a string", lineno
        )
    event = event_from_document(envelope.get("event"), lineno)
    return DeadLetter(event=event, reason=reason, error=error)


def append_dead_letters(
    path: str | pathlib.Path,
    letters: Iterable[DeadLetter],
    fsync: bool = True,
) -> int:
    """Durably append envelopes to ``path``; returns how many were written.

    The write is flushed (and fsync'd unless disabled) before the
    ``dlq.append.flushed`` failpoint fires, so a process killed at that
    boundary has every letter on disk — at worst a crash *mid*-append
    leaves one torn final line, which readers drop.
    """
    path = pathlib.Path(path)
    lines = [_encode(letter) for letter in letters]
    if not lines:
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    FAILPOINTS.fire(_FP_APPEND_FLUSHED)
    return len(lines)


def read_dead_letters(path: str | pathlib.Path) -> list[DeadLetter]:
    """Read every intact envelope; a missing file is an empty queue.

    A torn final line — no trailing newline and unparseable, the
    footprint of a crash mid-append — is dropped. Any malformed line
    *before* the tail raises :class:`~repro.exceptions.EventError` with
    its line number: previously flushed letters should never be
    unreadable.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return []
    raw = path.read_text(encoding="utf-8")
    if not raw:
        return []
    complete_tail = raw.endswith("\n")
    lines = raw.splitlines()
    letters: list[DeadLetter] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            letters.append(_decode(line, lineno))
        except EventError:
            if lineno == len(lines) and not complete_tail:
                break  # torn final line: never fully flushed
            raise
    return letters


def replay_dead_letters(
    path: str | pathlib.Path,
    submit: Callable[[PointEvent], bool],
    fsync: bool = True,
) -> ReplayReport:
    """Drain the queue back through ``submit``, keeping what still fails.

    Each letter's event is offered to ``submit`` (normally
    ``FleetManager.submit`` — the full ingestion path with screening,
    backpressure and durability). Letters whose submission returns
    ``False`` or raises :class:`~repro.exceptions.ServiceError` are kept;
    the file is then atomically rewritten (tmp + ``os.replace``) with
    exactly the survivors, so a crash mid-replay leaves either the old
    queue or the pruned one — never a half state. Re-submitted events
    are acknowledged by the fleet's WAL before the rewrite happens, so
    the worst crash outcome is a duplicate replay, never a lost letter.
    """
    path = pathlib.Path(path)
    letters = read_dead_letters(path)
    if not letters:
        return ReplayReport(replayed=0, requeued=0)
    kept: list[DeadLetter] = []
    replayed = 0
    for letter in letters:
        try:
            accepted = submit(letter.event)
        except ServiceError as exc:
            kept.append(
                DeadLetter(
                    event=letter.event,
                    reason=letter.reason,
                    error=f"replay failed: {exc}",
                )
            )
            continue
        if accepted:
            replayed += 1
        else:
            kept.append(letter)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        if kept:
            handle.write("\n".join(_encode(letter) for letter in kept) + "\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    return ReplayReport(replayed=replayed, requeued=len(kept))
