"""Fleet of shards: tenant routing, worker pool, rollups, recovery.

One :class:`FleetManager` owns one fleet root directory::

    <root>/
        fleet.json                 fleet-wide construction parameters
        tenants/
            <tenant-a>/            one DurableSummarizer state dir
                manifest.json      (see repro.persistence.checkpoint)
                wal.log
                snapshot-*.npz
            <tenant-b>/
                ...

Shards are created lazily on a tenant's first event: the tenant id (a
directory-safe string, validated by the NDJSON parser) becomes the
state-directory name, and the shard's summarizer seed is derived
deterministically from the fleet seed and the tenant id — so a fleet
rebuilt from the same event stream produces the same per-tenant
summaries regardless of tenant arrival order.

Dispatch model: exactly one dispatcher thread calls :meth:`submit`.
With ``workers > 0`` the fleet runs that many flusher threads and each
tenant is striped onto one of them (``crc32(tenant) % workers``), so a
shard is only ever flushed by a single thread and per-tenant event
order is preserved end to end. With ``workers == 0`` the dispatcher
flushes inline whenever a shard's queue reaches one full micro-batch —
the *synchronous* mode, whose batch boundaries are a pure function of
the event stream (the determinism contract in docs/SERVICE.md).

Crash recovery is fleet-wide: :meth:`FleetManager.recover` re-opens
every tenant directory under ``tenants/`` through
:meth:`~repro.streaming.DurableSummarizer.recover`, which replays each
shard's WAL tail through the normal maintenance path — the recovered
per-shard summaries are bit-identical to the state the crashed (or
drained) process had durably acknowledged.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
import zlib
from dataclasses import dataclass, replace

from ..exceptions import (
    EventError,
    InvalidConfigError,
    PersistenceError,
    ServiceError,
)
from ..core import MaintenanceConfig
from ..faults import FAILPOINTS, declare_failpoint
from ..observability import (
    EventTracer,
    Observability,
    SpanTracer,
    collect_health,
)
from ..streaming import DurableSummarizer
from .deadletter import (
    DeadLetter,
    append_dead_letters,
    deadletter_path,
)
from .events import PointEvent, valid_tenant
from .shard import BACKPRESSURE_POLICIES, Shard

__all__ = [
    "FLEET_VERSION",
    "FleetConfig",
    "FleetManager",
    "render_rollup",
    "tenant_seed",
]

#: Version stamped on ``fleet.json``.
FLEET_VERSION = 1

# Fired at the top of FleetManager.submit, before the event is routed
# anywhere — a crash here loses only the one in-flight, unacknowledged
# event; an error surfaces to the dispatcher as a plain OSError.
_FP_SUBMIT_START = declare_failpoint("fleet.submit.start")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-wide parameters.

    The first block (``dim`` … ``on_bad_point``) is durable — persisted
    in ``fleet.json`` and applied to every shard's summarizer. The
    second block (``queue_points`` … ``assign_workers``) is runtime-only
    service tuning: it shapes queues and threading, never the durable
    history, so it may change freely between runs of the same fleet.

    ``use_seed_index`` / ``assign_workers`` configure the assignment
    engine of shards *created* by this fleet run (the shard's
    summarizer persists them in its own snapshots, so a later
    ``recover`` replays each shard with the mode it was built with).
    ``assign_workers`` defaults to 0 — forking assignment workers from
    under a multithreaded flusher pool is an explicit opt-in; the
    spatial index is thread-neutral but stays off for parity with the
    single-process default.
    """

    dim: int = 2
    window_size: int = 5_000
    points_per_bubble: int = 50
    checkpoint_every: int = 16
    seed: int | None = 0
    fsync: bool = True
    on_bad_point: str = "skip"

    queue_points: int = 1_024
    batch_points: int = 64
    backpressure: str = "block"
    workers: int = 4
    use_seed_index: bool = False
    assign_workers: int = 0
    #: Runtime-only: write each shard's span events to
    #: ``tenants/<tenant>/trace.jsonl`` and stamp fleet trace ids onto
    #: every micro-batch, enabling cross-shard trace queries
    #: (``repro-bubbles trace``). Off by default — span *metrics* are
    #: always on; this adds the per-event JSONL sink.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise InvalidConfigError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.assign_workers < 0:
            raise InvalidConfigError(
                f"assign_workers must be >= 0, got {self.assign_workers}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise InvalidConfigError(
                f"unknown backpressure policy {self.backpressure!r} "
                f"(expected one of {BACKPRESSURE_POLICIES})"
            )


def tenant_seed(fleet_seed: int | None, tenant: str) -> int | None:
    """Deterministic per-tenant summarizer seed.

    Mixes the fleet seed with a CRC of the tenant id, so two tenants
    never share an RNG stream and the derivation is stable across
    processes, platforms, and tenant arrival order.
    """
    if fleet_seed is None:
        return None
    return (int(fleet_seed) ^ zlib.crc32(tenant.encode("utf-8"))) & 0x7FFFFFFF


def _shard_observability(
    config: FleetConfig, tenant_dir: pathlib.Path
) -> Observability:
    """One shard's private handle: spans always, a trace sink on demand.

    With ``config.trace`` the handle gets an append-mode JSONL sink at
    ``<tenant_dir>/trace.jsonl`` so span (and event) payloads survive
    the run; trace files accumulate across resumes of the same fleet —
    the trace query layer segments them by span-id generation.
    """
    tracer = None
    if config.trace:
        tracer = EventTracer(sink=pathlib.Path(tenant_dir) / "trace.jsonl")
    return Observability(tracer=tracer, spans=SpanTracer())


class _PoolWorker(threading.Thread):
    """One flusher thread draining a fixed stripe of shards."""

    def __init__(self, index: int, on_failure=None) -> None:
        super().__init__(name=f"repro-shard-worker-{index}", daemon=True)
        self.cond = threading.Condition()
        self.shards: list[Shard] = []
        self._on_failure = on_failure
        self._stop_when_idle = False
        self._stop_now = False

    def add(self, shard: Shard) -> None:
        with self.cond:
            self.shards.append(shard)
            self.cond.notify()

    def replace(self, old: Shard, new: Shard) -> None:
        """Swap a failed shard for its supervisor-built replacement."""
        with self.cond:
            self.shards = [new if s is old else s for s in self.shards]
            self.cond.notify()

    def shutdown(self, immediate: bool = False) -> None:
        with self.cond:
            if immediate:
                self._stop_now = True
            self._stop_when_idle = True
            self.cond.notify()

    def _idle(self) -> bool:
        return all(
            shard.pending == 0 or shard.state in ("failed", "stopped")
            for shard in self.shards
        )

    def run(self) -> None:
        while True:
            with self.cond:
                shards = list(self.shards)
            applied = 0
            for shard in shards:
                if self._stop_now:
                    return
                try:
                    applied += shard.flush_once()
                except ServiceError:
                    # The shard is failed (recorded in its stats); let
                    # the fleet dead-letter the batch and — when a
                    # supervisor is attached — restart it on this very
                    # thread, so the stripe's ordering is preserved.
                    if self._on_failure is not None:
                        try:
                            self._on_failure(shard)
                        except Exception:
                            pass  # supervision must never kill a worker
                    continue
            with self.cond:
                if self._stop_now:
                    return
                if self._stop_when_idle and self._idle():
                    return
                if applied == 0:
                    # Timed wait doubles as the missed-notify backstop:
                    # a submit between the scan and this wait is picked
                    # up at the next tick.
                    self.cond.wait(timeout=0.02)


class FleetManager:
    """Hosts many tenant shards under one fleet root (see module doc).

    Args:
        root: the fleet directory; created when missing. Must not
            already hold a fleet (use :meth:`recover` for that).
        config: fleet-wide parameters; defaults to :class:`FleetConfig`.
        obs: optional fleet-level observability handle used only for
            dispatcher-side events; each shard always gets its own
            private handle so per-tenant metrics never mix.
    """

    def __init__(
        self,
        root: str | pathlib.Path,
        config: FleetConfig | None = None,
        obs: Observability | None = None,
        _recovered_shards: dict[str, Shard] | None = None,
    ) -> None:
        self._root = pathlib.Path(root)
        self._config = config if config is not None else FleetConfig()
        self._obs = obs
        self._shards: dict[str, Shard] = {}
        self._shard_worker: dict[str, _PoolWorker] = {}
        self._lock = threading.Lock()
        self._failure_lock = threading.Lock()
        self._supervisor = None
        self._slo = None
        self._draining = False
        self._closed = False
        self._started = time.perf_counter()
        self.invalid_points = 0
        self.failed_submissions = 0
        self._trace_lock = threading.Lock()
        self._trace_seq = 0
        # Wall-clock epoch token (constructor only — never a hot path):
        # disambiguates trace ids across resumed runs of one fleet,
        # since trace.jsonl files are append-mode and span numbering
        # restarts with each process.
        self._trace_epoch = format(int(time.time()) & 0xFFFFFF, "06x")

        if _recovered_shards is None:
            if (self._root / "fleet.json").exists():
                raise PersistenceError(
                    f"{self._root} already holds a fleet; use "
                    "FleetManager.recover() to resume it"
                )
            self._tenants_dir.mkdir(parents=True, exist_ok=True)
            self._write_fleet_manifest()
        self._workers: list[_PoolWorker] = [
            _PoolWorker(i, on_failure=self._on_shard_failed)
            for i in range(self._config.workers)
        ]
        for worker in self._workers:
            worker.start()
        if _recovered_shards:
            for tenant, shard in sorted(_recovered_shards.items()):
                self._adopt(tenant, shard)

    # ------------------------------------------------------------------
    # Layout + manifest
    # ------------------------------------------------------------------
    @property
    def root(self) -> pathlib.Path:
        """The fleet directory."""
        return self._root

    @property
    def config(self) -> FleetConfig:
        """The fleet-wide parameters in force."""
        return self._config

    @property
    def _tenants_dir(self) -> pathlib.Path:
        return self._root / "tenants"

    def tenant_dir(self, tenant: str) -> pathlib.Path:
        """The durable state directory backing ``tenant``'s shard."""
        return self._tenants_dir / tenant

    def _write_fleet_manifest(self) -> None:
        document = {
            "fleet_version": FLEET_VERSION,
            "dim": int(self._config.dim),
            "window_size": int(self._config.window_size),
            "points_per_bubble": int(self._config.points_per_bubble),
            "checkpoint_every": int(self._config.checkpoint_every),
            "seed": (
                None if self._config.seed is None else int(self._config.seed)
            ),
            "on_bad_point": self._config.on_bad_point,
        }
        payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
        tmp = self._root / "fleet.json.tmp"
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, self._root / "fleet.json")

    @staticmethod
    def read_fleet_manifest(root: str | pathlib.Path) -> dict:
        """Load and validate ``fleet.json`` under ``root``."""
        path = pathlib.Path(root) / "fleet.json"
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise PersistenceError(
                f"{pathlib.Path(root)} holds no fleet (fleet.json is "
                "missing); start a new fleet instead of recovering"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise PersistenceError(
                f"unreadable fleet.json in {root}: {exc}"
            ) from exc
        version = int(document.get("fleet_version", -1))
        if version != FLEET_VERSION:
            raise PersistenceError(
                f"unsupported fleet version {version} in {root}"
            )
        return document

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        root: str | pathlib.Path,
        config: FleetConfig | None = None,
        obs: Observability | None = None,
    ) -> "FleetManager":
        """Re-open a fleet: every tenant directory is crash-recovered.

        Durable parameters come from ``fleet.json``; the runtime block
        of ``config`` (queues, batching, backpressure, workers, fsync)
        overrides the defaults when given. Each shard's summarizer is
        recovered through the normal snapshot + WAL-tail replay, so the
        fleet resumes bit-identical to its durably acknowledged state.
        """
        manifest = cls.read_fleet_manifest(root)
        runtime = config if config is not None else FleetConfig()
        merged = replace(
            runtime,
            dim=int(manifest["dim"]),
            window_size=int(manifest["window_size"]),
            points_per_bubble=int(manifest["points_per_bubble"]),
            checkpoint_every=int(manifest["checkpoint_every"]),
            seed=(
                None if manifest["seed"] is None else int(manifest["seed"])
            ),
            on_bad_point=str(manifest["on_bad_point"]),
        )
        shards: dict[str, Shard] = {}
        tenants_dir = pathlib.Path(root) / "tenants"
        tenant_dirs = (
            sorted(p for p in tenants_dir.iterdir() if p.is_dir())
            if tenants_dir.exists()
            else []
        )
        try:
            for tenant_path in tenant_dirs:
                if not (tenant_path / "manifest.json").exists():
                    continue  # never initialized (crashed pre-manifest)
                shard_obs = _shard_observability(merged, tenant_path)
                summarizer = DurableSummarizer.recover(
                    tenant_path, fsync=merged.fsync, obs=shard_obs
                )
                shards[tenant_path.name] = Shard(
                    tenant_path.name,
                    summarizer,
                    queue_points=merged.queue_points,
                    batch_points=merged.batch_points,
                    backpressure=merged.backpressure,
                    obs=shard_obs,
                )
        except BaseException:
            for shard in shards.values():
                shard.close(checkpoint=False)
            raise
        return cls(
            root, config=merged, obs=obs, _recovered_shards=shards
        )

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------
    @property
    def tenants(self) -> tuple[str, ...]:
        """Tenant ids with live shards, sorted."""
        with self._lock:
            return tuple(sorted(self._shards))

    def shard(self, tenant: str) -> Shard:
        """The live shard for ``tenant``.

        Raises:
            ServiceError: no shard exists for ``tenant``.
        """
        with self._lock:
            try:
                return self._shards[tenant]
            except KeyError:
                raise ServiceError(
                    f"no shard for tenant {tenant!r}"
                ) from None

    def _mint_trace(self, tenant: str) -> str:
        """Mint one fleet-unique trace id for a tenant micro-batch.

        The id is ``<tenant>:<epoch>:<seq>`` — ``:`` cannot occur in a
        valid tenant id, the epoch token survives fleet resumes, and the
        locked sequence makes ids unique across every shard and worker
        thread of this process.
        """
        with self._trace_lock:
            self._trace_seq += 1
            seq = self._trace_seq
        return f"{tenant}:{self._trace_epoch}:{seq:06d}"

    def _adopt(self, tenant: str, shard: Shard) -> None:
        """Register a shard and stripe it onto its pool worker."""
        shard.trace_minter = self._mint_trace
        with self._lock:
            self._shards[tenant] = shard
            if self._workers:
                worker = self._workers[
                    zlib.crc32(tenant.encode("utf-8")) % len(self._workers)
                ]
                self._shard_worker[tenant] = worker
                worker.add(shard)

    def _get_or_create(self, tenant: str) -> Shard:
        with self._lock:
            shard = self._shards.get(tenant)
        if shard is not None:
            return shard
        config = self._config
        shard_obs = _shard_observability(config, self.tenant_dir(tenant))
        shard_seed = tenant_seed(config.seed, tenant)
        summarizer = DurableSummarizer(
            self.tenant_dir(tenant),
            dim=config.dim,
            window_size=config.window_size,
            points_per_bubble=config.points_per_bubble,
            # The per-tenant seed plus the fleet's assignment-engine
            # options; persisted by the shard's own snapshots, so a
            # recovered shard replays with the mode it was built with.
            config=MaintenanceConfig(
                seed=shard_seed,
                use_seed_index=config.use_seed_index,
                assign_workers=config.assign_workers,
            ),
            seed=shard_seed,
            checkpoint_every=config.checkpoint_every,
            fsync=config.fsync,
            obs=shard_obs,
            on_bad_point=config.on_bad_point,
        )
        shard = Shard(
            tenant,
            summarizer,
            queue_points=config.queue_points,
            batch_points=config.batch_points,
            backpressure=config.backpressure,
            obs=shard_obs,
        )
        self._adopt(tenant, shard)
        if self._obs is not None:
            self._obs.emit("shard_created", tenant=tenant)
        return shard

    # ------------------------------------------------------------------
    # Failure handling / self-healing
    # ------------------------------------------------------------------
    def attach_supervisor(self, supervisor) -> None:
        """Wire a :class:`~repro.service.supervisor.ShardSupervisor` in.

        From then on every shard failure is handed to the supervisor
        (restart under budget/backoff, circuit breaking); without one,
        failed shards stay failed and their residue is dead-lettered at
        drain.
        """
        self._supervisor = supervisor
        supervisor.bind(self)

    @property
    def supervisor(self):
        """The attached supervisor, or ``None``."""
        return self._supervisor

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` / :meth:`close` has begun."""
        return self._draining

    @property
    def closed(self) -> bool:
        """Whether the fleet has fully shut down."""
        return self._closed

    @property
    def obs(self) -> Observability | None:
        """The fleet-level observability handle, or ``None``."""
        return self._obs

    # ------------------------------------------------------------------
    # SLO evaluation
    # ------------------------------------------------------------------
    @property
    def slo(self):
        """The attached :class:`~repro.observability.SLOEngine`, or
        ``None``."""
        return self._slo

    def attach_slo(self, engine) -> None:
        """Wire an SLO engine in; its alerts surface in :meth:`rollup`.

        The engine is fed by :meth:`slo_tick` — called on a wall-clock
        cadence by the telemetry plane's ticker thread, and once more by
        :meth:`drain` so the final window is evaluated.
        """
        self._slo = engine

    def slo_tick(self, now: float | None = None) -> list[dict]:
        """Feed the SLO engine one fleet sample; returns firing alerts.

        A no-op (empty list) without an attached engine. Safe to call
        from any thread on any cadence.
        """
        engine = self._slo
        if engine is None:
            return []
        return engine.observe(self._slo_sample(), now=now)

    def _slo_sample(self) -> dict[str, int | float]:
        """Cumulative fleet totals in :data:`~repro.observability.slo.SAMPLE_KEYS` form.

        ``ingest_slow`` counts applied points whose queue-to-applied
        latency exceeded the engine's bound, split exactly at a bucket
        boundary of the per-shard ingest histogram. Counters are read
        without the fleet lock on purpose — each total is monotone, and
        the SLO engine clamps torn-read deltas.
        """
        with self._lock:
            shards = list(self._shards.values())
        submitted = shed = dead_lettered = 0
        ingest_count = ingest_slow = 0
        bound = (
            self._slo.ingest_latency_bound if self._slo is not None else 0.25
        )
        for shard in shards:
            submitted += shard.submitted_points
            shed += shard.shed_points
            dead_lettered += shard.dead_lettered_points
            histogram = shard._h_ingest
            fast = 0
            for upper, count in zip(
                histogram.bounds, histogram.bucket_counts()
            ):
                if upper <= bound:
                    fast += count
                else:
                    break
            total = histogram.count
            ingest_count += total
            ingest_slow += max(0, total - fast)
        breakers_open = 0
        supervisor = self._supervisor
        if supervisor is not None:
            breakers_open = (
                supervisor.stats()["breaker_states"].get("open", 0)
            )
        return {
            "submitted": submitted,
            "shed": shed,
            "dead_lettered": dead_lettered,
            "ingest_count": ingest_count,
            "ingest_slow": ingest_slow,
            "breakers_open": breakers_open,
        }

    def _dead_letter_items(
        self, shard: Shard, items, reason: str, error: str | None = None
    ) -> int:
        """Durably park queue items of ``shard`` in its dead-letter file."""
        if not items:
            return 0
        letters = [
            DeadLetter(
                event=PointEvent(
                    tenant=shard.tenant, point=tuple(point), label=label
                ),
                reason=reason,
                error=error,
            )
            for point, label, _arrival in items
        ]
        try:
            append_dead_letters(
                deadletter_path(self.tenant_dir(shard.tenant)),
                letters,
                fsync=self._config.fsync,
            )
        except OSError as exc:
            # The dead-letter file itself failed: put the items back in
            # the queue so they stay counted as pending (a later drain
            # or restart re-parks or re-applies them) rather than
            # vanishing from the accounting identity. Replay is
            # at-least-once, so a flush that made it to disk before the
            # error surfaced merely leaves duplicate letters behind.
            shard.adopt_items(items)
            if self._obs is not None:
                self._obs.emit(
                    "dead_letter_failed",
                    tenant=shard.tenant,
                    count=len(letters),
                    error=str(exc),
                )
            return 0
        shard.note_dead_lettered(len(letters))
        if self._obs is not None:
            self._obs.emit(
                "dead_lettered",
                tenant=shard.tenant,
                count=len(letters),
                reason=reason,
            )
        return len(letters)

    def _dead_letter_event(
        self, shard: Shard, event: PointEvent, reason: str,
        error: str | None = None,
    ) -> None:
        """Durably park one in-flight event (breaker-open path)."""
        append_dead_letters(
            deadletter_path(self.tenant_dir(shard.tenant)),
            [DeadLetter(event=event, reason=reason, error=error)],
            fsync=self._config.fsync,
        )
        shard.note_dead_lettered(1)
        if self._obs is not None:
            self._obs.emit(
                "dead_lettered", tenant=shard.tenant, count=1, reason=reason
            )

    def _on_shard_failed(self, shard: Shard) -> None:
        """Harvest one shard-failure incident (idempotent).

        The poisoned micro-batch — which reached neither the WAL nor
        the summary — is dead-lettered durably, then the incident is
        handed to the supervisor (when one is attached and the fleet is
        not draining) to restart the tenant or trip its breaker.
        Callable from the dispatcher and any pool worker; only the
        first caller per incident does the work.
        """
        if shard.state != "failed":
            return
        with self._failure_lock:
            first = not shard.failure_handled
            shard.failure_handled = True
        if not first:
            return
        self._dead_letter_items(
            shard, shard.take_failed_items(), "append_failed", shard.error
        )
        if self._obs is not None:
            self._obs.emit(
                "shard_failed", tenant=shard.tenant, error=shard.error
            )
        supervisor = self._supervisor
        if supervisor is not None and not self._draining:
            supervisor.handle_failure(shard.tenant)

    def _replace_shard(self, old: Shard, new: Shard) -> None:
        """Adopt a supervisor-built replacement for a failed shard."""
        with self._lock:
            self._shards[new.tenant] = new
            worker = self._shard_worker.get(new.tenant)
        if worker is not None:
            worker.replace(old, new)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def submit(self, event: PointEvent) -> bool:
        """Route one event to its tenant's shard; returns acceptance.

        ``False`` means the event was dropped: shed by backpressure,
        rejected for a dimension mismatch, or aimed at a failed shard
        (each counted separately). Dimension screening happens *here*
        because a wrong-arity row cannot even be assembled into the
        micro-batch matrix, let alone reach the summarizer's own
        screening.

        Raises:
            ServiceError: the fleet is draining or closed.
            EventError: the tenant id is invalid (the NDJSON parser
                normally rejects these earlier).
        """
        FAILPOINTS.fire(_FP_SUBMIT_START)
        if self._draining or self._closed:
            raise ServiceError(
                "the fleet is draining and no longer accepts events"
            )
        if not valid_tenant(event.tenant):
            raise EventError(f"invalid tenant {event.tenant!r}")
        if len(event.point) != self._config.dim:
            self.invalid_points += 1
            return False
        supervisor = self._supervisor
        if supervisor is not None and supervisor.breaker_blocks(
            event.tenant
        ):
            # The tenant is persistently poisoned: degrade to durable
            # shed-with-accounting instead of crash-looping restarts.
            shard = self._get_or_create(event.tenant)
            # Park first, count second: if the dead-letter append fails
            # the error propagates with nothing counted, so the
            # accounting identity never claims a point that is neither
            # durable nor acknowledged.
            self._dead_letter_event(
                shard, event, "breaker_open", error=shard.error
            )
            shard.note_breaker_rejected(1)
            return False
        # Fetched *after* the breaker check: a half-open probe may have
        # just swapped a restarted shard into the routing table.
        shard = self._get_or_create(event.tenant)
        try:
            accepted = shard.submit(event.point, event.label)
        except ServiceError:
            # The shard failed earlier; its error is in the rollup.
            self.failed_submissions += 1
            self._on_shard_failed(shard)
            return False
        if not accepted:
            return False
        if self._workers:
            if shard.pending == 1:
                # Empty→non-empty transition: wake the stripe's worker
                # now instead of waiting out its idle tick.
                worker = self._shard_worker[event.tenant]
                with worker.cond:
                    worker.cond.notify()
        else:
            try:
                while shard.pending >= shard.batch_points:
                    shard.flush_once()
            except ServiceError:
                # Same isolation as the pool workers: the shard is now
                # failed, the fleet carries on. The poisoned batch is
                # dead-lettered and a supervisor (when attached) can
                # restart the tenant right here on the dispatcher
                # thread, keeping synchronous mode deterministic.
                self.failed_submissions += 1
                self._on_shard_failed(shard)
                return False
        return True

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Gracefully stop: flush every queue, checkpoint, close.

        Idempotent. After it returns, every non-failed shard has applied
        all accepted events, written a final checkpoint, and released
        its file handles; :meth:`rollup` remains readable.
        """
        if self._closed:
            return
        self._draining = True
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            shard.begin_drain()
        for worker in self._workers:
            worker.shutdown()
        for worker in self._workers:
            worker.join()
        # Re-capture: a worker-thread supervisor restart may have
        # swapped replacement shards in while the first list was taken.
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            shard.begin_drain()
        for shard in shards:
            if shard.state == "failed":
                continue
            try:
                shard.drain_flush()
            except ServiceError:
                # Entered failed state during the final flush: harvest
                # the poisoned batch (no restart — we are draining).
                self._on_shard_failed(shard)
                continue
        for shard in shards:
            if shard.state == "failed":
                # Nothing will ever flush these again: the poisoned
                # batch (if still unharvested) and the queued residue
                # go to the dead-letter file, keeping the accounting
                # identity exact and the points replayable.
                self._dead_letter_items(
                    shard,
                    shard.take_failed_items(),
                    "append_failed",
                    shard.error,
                )
                self._dead_letter_items(
                    shard,
                    shard.take_pending_items(),
                    "drain_failed_shard",
                    shard.error,
                )
        for shard in shards:
            shard.close(checkpoint=True)
        # Failed shards skip Shard.close (their tracer sink stayed open
        # for a possible supervisor restart); close every sink now so
        # trace.jsonl tails are durable. EventTracer.close is idempotent.
        for shard in shards:
            tracer = shard.obs.tracer
            if tracer is not None:
                tracer.close()
        self.slo_tick()
        self._closed = True
        if self._obs is not None:
            self._obs.emit("fleet_drained", tenants=len(shards))

    def close(self) -> None:
        """Stop immediately without flushing queues (crash-like).

        Queued-but-unapplied points are lost *from memory only* — they
        were never acknowledged as durable. Durably appended batches
        survive in each shard's WAL; :meth:`recover` replays them.
        """
        if self._closed:
            return
        self._draining = True
        for worker in self._workers:
            worker.shutdown(immediate=True)
        for worker in self._workers:
            worker.join()
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            shard.close(checkpoint=False)
        for shard in shards:
            tracer = shard.obs.tracer
            if tracer is not None:
                tracer.close()
        self._closed = True

    def __enter__(self) -> "FleetManager":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is None:
            self.drain()
        else:
            self.close()

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    def rollup(self) -> dict:
        """Fleet-wide health rollup (``schema: 1``).

        Aggregates every shard's stats plus fleet totals: applied
        points/sec over the fleet's lifetime, the fleet-wide p95 ingest
        latency (merged across the shard histograms, bucket-granular),
        shard state counts, and backpressure/shed/invalid tallies.
        """
        with self._lock:
            shards = dict(sorted(self._shards.items()))
        tenants = {t: shard.stats() for t, shard in shards.items()}
        states: dict[str, int] = {}
        totals = {
            "submitted_points": 0,
            "enqueued_points": 0,
            "applied_points": 0,
            "applied_batches": 0,
            "shed_points": 0,
            "failed_points": 0,
            "dead_lettered_points": 0,
            "blocked_submissions": 0,
            "blocked_seconds": 0.0,
            "pending_points": 0,
        }
        for row in tenants.values():
            states[row["state"]] = states.get(row["state"], 0) + 1
            for key in totals:
                totals[key] += row[key]
        elapsed = time.perf_counter() - self._started
        merged_p95 = self._merged_ingest_p95(shards.values())
        fleet_section = {
            "tenants": len(shards),
            "states": states,
            "elapsed_seconds": elapsed,
            "points_per_second": (
                totals["applied_points"] / elapsed if elapsed else 0.0
            ),
            "ingest_p95_seconds": merged_p95,
            "invalid_points": self.invalid_points,
            "failed_submissions": self.failed_submissions,
            **totals,
        }
        if self._supervisor is not None:
            fleet_section["supervision"] = self._supervisor.stats()
        if self._slo is not None:
            fleet_section["slo"] = self._slo.summary()
        return {
            "schema": 1,
            "root": str(self._root),
            "fleet": fleet_section,
            "tenants": tenants,
        }

    @staticmethod
    def _merged_ingest_p95(shards) -> float | None:
        """p95 over the union of all shards' ingest histograms."""
        bounds: tuple[float, ...] | None = None
        counts: list[int] = []
        total = 0
        for shard in shards:
            histogram = shard._h_ingest
            if bounds is None:
                bounds = histogram.bounds
                counts = [0] * (len(bounds) + 1)
            for i, count in enumerate(histogram.bucket_counts()):
                counts[i] += count
            total += histogram.count
        if not total or bounds is None:
            return None
        target = 0.95 * total
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += count
            if cumulative >= target:
                return float(bound)
        return None

    def fleet_health(self) -> dict:
        """Rollup plus one full per-shard health document per tenant."""
        with self._lock:
            shards = dict(sorted(self._shards.items()))
        return {
            "schema": 1,
            "root": str(self._root),
            "rollup": self.rollup(),
            "shards": {
                tenant: collect_health(
                    shard.obs,
                    summarizer=shard.summarizer,
                    source=str(self.tenant_dir(tenant)),
                )
                for tenant, shard in shards.items()
            },
        }


def render_rollup(rollup: dict) -> str:
    """Render a fleet rollup as an aligned plain-text report."""
    fleet = rollup["fleet"]
    lines = [
        f"fleet rollup (schema {rollup['schema']})",
        f"root: {rollup['root']}",
        "",
        (
            f"tenants {fleet['tenants']}  states "
            + " ".join(
                f"{state}={count}"
                for state, count in sorted(fleet["states"].items())
            )
        ),
        (
            f"applied {fleet['applied_points']} points in "
            f"{fleet['applied_batches']} batches "
            f"({fleet['points_per_second']:.0f} points/s over "
            f"{fleet['elapsed_seconds']:.2f}s)"
        ),
        (
            f"backpressure: {fleet['blocked_submissions']} blocked "
            f"submissions ({fleet['blocked_seconds']:.3f}s), "
            f"{fleet['shed_points']} shed"
        ),
        (
            f"dropped: {fleet['invalid_points']} invalid points, "
            f"{fleet['failed_points']} rejected by failed shards "
            f"({fleet['failed_submissions']} failed submissions)"
        ),
        (
            f"dead-lettered: {fleet['dead_lettered_points']} points "
            "(inspect/replay with 'repro-bubbles dlq')"
        ),
        (
            "fleet ingest p95 <= "
            + (
                f"{fleet['ingest_p95_seconds'] * 1e3:.1f}ms"
                if fleet["ingest_p95_seconds"] is not None
                else "inf"
            )
        ),
    ]
    supervision = fleet.get("supervision")
    if supervision is not None:
        lines.append(
            f"supervision: {supervision['restarts']} restarts "
            f"({supervision['restart_failures']} failed), breakers "
            + " ".join(
                f"{state}={count}"
                for state, count in sorted(
                    supervision["breaker_states"].items()
                )
            )
        )
    slo = fleet.get("slo")
    if slo is not None:
        lines.append(
            f"slo: {slo['firing']} firing / "
            f"{len(slo['objectives'])} objectives "
            + " ".join(
                f"{row['name']}={row['state']}"
                for row in slo["objectives"]
            )
        )
    lines.append("")
    tenants = rollup["tenants"]
    if not tenants:
        lines.append("(no tenants)")
        return "\n".join(lines) + "\n"
    width = max(len(t) for t in tenants)
    lines.append(
        f"{'tenant'.ljust(width)}  {'state':>8}  {'points':>8}  "
        f"{'batches':>7}  {'shed':>6}  {'failed':>6}  {'dlq':>5}  "
        f"{'blocked':>7}  {'p95_ms':>8}  {'window':>7}  {'bubbles':>7}"
    )
    failed_rows: list[tuple[str, dict]] = []
    for tenant, row in tenants.items():
        p95 = row["ingest_p95_seconds"]
        p95_text = "-" if p95 is None else f"{p95 * 1e3:.1f}"
        lines.append(
            f"{tenant.ljust(width)}  {row['state']:>8}  "
            f"{row['applied_points']:>8}  {row['applied_batches']:>7}  "
            f"{row['shed_points']:>6}  {row['failed_points']:>6}  "
            f"{row['dead_lettered_points']:>5}  "
            f"{row['blocked_submissions']:>7}  "
            f"{p95_text:>8}  {row['window_points']:>7}  "
            f"{row['active_bubbles']:>7}"
        )
        if row["state"] == "failed":
            failed_rows.append((tenant, row))
    for tenant, row in failed_rows:
        failed_at = row.get("failed_at")
        age = (
            "unknown age"
            if failed_at is None
            else f"{max(0.0, time.monotonic() - failed_at):.1f}s ago"
        )
        lines.append(
            f"!! {tenant}: failed {age}: {row.get('error') or 'unknown'}"
        )
    return "\n".join(lines) + "\n"
