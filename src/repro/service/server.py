"""The serve loop: NDJSON in, routed micro-batches out, rollup at exit.

:func:`serve_events` is the dispatcher: it walks an event iterable (or
an NDJSON source via :func:`serve_ndjson`), submits each event to the
fleet, and — always, even when the stream or a shard misbehaves — ends
with a graceful :meth:`~repro.service.fleet.FleetManager.drain`, so
every accepted event is durably applied and checkpointed before the
call returns. Counters for everything dropped along the way (malformed
lines, wrong-arity points, shed events, failed shards) come back in a
:class:`ServeStats`, because a service that silently loses data is
indistinguishable from one that works.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Iterable, TextIO

from .events import PointEvent, read_events
from .fleet import FleetManager

__all__ = ["ServeStats", "serve_events", "serve_ndjson"]


@dataclass
class ServeStats:
    """Outcome of one serve run (dispatcher-side accounting)."""

    events: int = 0
    accepted: int = 0
    dropped: int = 0
    invalid_lines: int = 0
    elapsed_seconds: float = 0.0
    drained: bool = False
    rollup: dict = field(default_factory=dict)

    @property
    def points_per_second(self) -> float:
        """Accepted points per wall-clock second, drain included."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.accepted / self.elapsed_seconds


def serve_events(
    fleet: FleetManager,
    events: Iterable[PointEvent],
    progress_every: int = 0,
    progress_sink=None,
    listener=None,
) -> ServeStats:
    """Dispatch ``events`` into ``fleet``, then drain it.

    The drain runs even when dispatch raises (a strict-policy
    :class:`~repro.exceptions.EventError`, a KeyboardInterrupt): events
    already accepted are never abandoned in queues. ``progress_every``
    > 0 calls ``progress_sink(stats)`` every that many events.

    ``listener`` (a
    :class:`~repro.observability.TelemetryListener`) is started before
    the first event and stopped only after the final rollup is
    captured, so ``/metrics`` and ``/health`` answer throughout the
    run *and* the drain.
    """
    stats = ServeStats()
    started = time.perf_counter()
    if listener is not None:
        listener.start()
    try:
        for event in events:
            stats.events += 1
            if fleet.submit(event):
                stats.accepted += 1
            else:
                stats.dropped += 1
            if (
                progress_every
                and progress_sink is not None
                and stats.events % progress_every == 0
            ):
                progress_sink(stats)
    finally:
        try:
            fleet.drain()
            stats.drained = True
            stats.elapsed_seconds = time.perf_counter() - started
            stats.rollup = fleet.rollup()
        finally:
            if listener is not None:
                listener.stop()
    return stats


def serve_ndjson(
    fleet: FleetManager,
    source: str | pathlib.Path | TextIO,
    on_bad_event: str = "strict",
    progress_every: int = 0,
    progress_sink=None,
    listener=None,
) -> ServeStats:
    """:func:`serve_events` over an NDJSON file, path, or text handle.

    ``on_bad_event`` is the parse policy: ``strict`` aborts on the
    first malformed line (after draining what was accepted), ``skip``
    counts it in ``ServeStats.invalid_lines`` and continues.
    """
    invalid = [0]

    def count_invalid(_exc) -> None:
        invalid[0] += 1

    events = read_events(
        source, on_bad_event=on_bad_event, bad_event_sink=count_invalid
    )
    stats = serve_events(
        fleet,
        events,
        progress_every=progress_every,
        progress_sink=progress_sink,
        listener=listener,
    )
    stats.invalid_lines = invalid[0]
    return stats
