"""Shard supervision: bounded restarts, backoff, per-tenant breakers.

A failed shard (see :mod:`repro.service.shard`) is an isolation
boundary, not a repair: without intervention the tenant stays dark until
the whole fleet is restarted. The :class:`ShardSupervisor` closes that
gap. When the fleet hands it a failure incident it

1. **restarts** the tenant in place — the poisoned micro-batch has
   already been dead-lettered by the fleet, so the supervisor re-runs
   the normal crash-recovery path (snapshot + WAL-tail replay, with the
   hash-chain divergence check) on the tenant's durable state, builds a
   fresh shard around the recovered summarizer, carries the old shard's
   accounting and still-queued points over, and swaps it into the
   fleet's routing table;
2. under a **bounded budget** (``max_restarts`` per tenant) with
   **exponential backoff** between consecutive incidents, reusing
   :class:`repro.faults.retry.RetryPolicy` both for the pacing schedule
   and for transient-IO retry around the recovery itself (EIO is worth
   a few tries; ENOSPC fails fast — see :mod:`repro.faults.retry`);
3. guarded by a per-tenant **circuit breaker**: ``threshold`` failures
   inside ``window_seconds`` open the breaker, after which the tenant's
   events are shed to its durable dead-letter queue (reason
   ``breaker_open``) instead of crash-looping the restart path. After
   ``cooldown_seconds`` the breaker goes half-open and one probe
   restart is allowed; a quiet window closes it again, a new failure
   re-opens it.

Everything time- and sleep-shaped is injectable (``clock``, ``sleep``),
so the chaos matrix drives poisoned tenants through open → half-open →
closed transitions in microseconds of wall time, deterministically.

The supervisor is driven from whichever thread observes the failure —
a pool worker (preserving that stripe's ordering) or the dispatcher
itself in synchronous mode (``workers=0`` stays fully deterministic).
Per-tenant bookkeeping is guarded by a lock so concurrent incidents on
*different* tenants never race; per-shard incidents are already
serialized by the fleet's ``failure_handled`` latch.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..exceptions import InvalidConfigError, ServiceError
from ..faults import FAILPOINTS, declare_failpoint
from ..faults.retry import RetryPolicy, is_transient
from ..streaming import DurableSummarizer
from .shard import Shard

__all__ = ["BREAKER_STATES", "CircuitBreaker", "ShardSupervisor"]

#: The classic three breaker states.
BREAKER_STATES = ("closed", "open", "half_open")

# Service-boundary failpoints around the restart path: ``start`` fires
# before recovery begins (old shard already detached from the routing
# table's point of view), ``recovered`` fires after the replacement
# shard has been swapped in.
_FP_RESTART_START = declare_failpoint("shard.restart.start")
_FP_RESTART_RECOVERED = declare_failpoint("shard.restart.recovered")


class CircuitBreaker:
    """Per-tenant failure breaker: closed → open → half-open → closed.

    * **closed** — healthy; failures are recorded into a sliding window.
      ``threshold`` failures within ``window_seconds`` trip the breaker.
    * **open** — the tenant is shed (callers dead-letter instead of
      submitting). After ``cooldown_seconds`` the next :meth:`blocks`
      check transitions to half-open.
    * **half_open** — traffic flows again as a probe. A new failure
      re-opens immediately; a full ``window_seconds`` without failures
      closes the breaker and clears its history.

    The clock is injectable so tests (and the chaos matrix) never
    wall-wait for cooldowns.
    """

    def __init__(
        self,
        threshold: int = 3,
        window_seconds: float = 60.0,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise InvalidConfigError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        if window_seconds <= 0 or cooldown_seconds < 0:
            raise InvalidConfigError(
                "breaker window must be positive and cooldown "
                "non-negative"
            )
        self.threshold = int(threshold)
        self.window_seconds = float(window_seconds)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._state = "closed"
        self._failures: list[float] = []
        self._opened_at: float | None = None

    @property
    def state(self) -> str:
        """Current state, *after* applying any due time transition."""
        self._tick()
        return self._state

    def _tick(self) -> None:
        now = self._clock()
        if self._state == "open":
            assert self._opened_at is not None
            if now - self._opened_at >= self.cooldown_seconds:
                self._state = "half_open"
        if self._state == "half_open":
            if (
                not self._failures
                or now - self._failures[-1] >= self.window_seconds
            ):
                self._state = "closed"
                self._failures.clear()
                self._opened_at = None

    def record_failure(self) -> str:
        """Note one failure; returns the resulting state."""
        self._tick()
        now = self._clock()
        if self._state == "half_open":
            # The probe failed: straight back to open, fresh cooldown.
            self._state = "open"
            self._opened_at = now
            self._failures.append(now)
            return self._state
        self._failures.append(now)
        cutoff = now - self.window_seconds
        self._failures = [t for t in self._failures if t > cutoff]
        if self._state == "closed" and len(self._failures) >= self.threshold:
            self._state = "open"
            self._opened_at = now
        return self._state

    def blocks(self) -> bool:
        """Whether submissions for this tenant should be shed right now."""
        self._tick()
        return self._state == "open"


class ShardSupervisor:
    """Restart failed shards under budget, backoff and circuit breaking.

    Args:
        max_restarts: restart budget **per tenant** over the
            supervisor's lifetime; once spent, further incidents leave
            the shard failed (and the breaker, if tripped, sheds its
            traffic durably).
        policy: the :class:`~repro.faults.retry.RetryPolicy` reused in
            two roles — its ``delay_for`` schedule paces consecutive
            restarts of the same tenant (restart *n* sleeps
            ``delay_for(n - 1)`` first), and its ``call`` wraps the
            recovery itself so transient IO (EIO, EINTR, …) is retried
            while ENOSPC propagates immediately.
        breaker_threshold / breaker_window_seconds /
        breaker_cooldown_seconds: per-tenant breaker shape (see
            :class:`CircuitBreaker`).
        sleep: backoff sleep, injectable for deterministic tests.
        clock: monotonic clock for the breakers, injectable likewise.
        obs: optional observability handle for supervisor events
            (``shard_restarted``, ``restart_failed``, ``breaker_open``,
            ``restart_budget_exhausted``).
    """

    def __init__(
        self,
        max_restarts: int = 5,
        policy: RetryPolicy | None = None,
        breaker_threshold: int = 3,
        breaker_window_seconds: float = 60.0,
        breaker_cooldown_seconds: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        obs=None,
    ) -> None:
        if max_restarts < 0:
            raise InvalidConfigError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self.max_restarts = int(max_restarts)
        self._policy = policy if policy is not None else RetryPolicy()
        self._breaker_threshold = breaker_threshold
        self._breaker_window = breaker_window_seconds
        self._breaker_cooldown = breaker_cooldown_seconds
        self._sleep = sleep
        self._clock = clock
        self._obs = obs
        self._fleet = None
        self._lock = threading.Lock()
        self._restarts: dict[str, int] = {}
        self._restart_failures: dict[str, int] = {}
        self._last_error: dict[str, str] = {}
        self._breakers: dict[str, CircuitBreaker] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, fleet) -> None:
        """Called by ``FleetManager.attach_supervisor``; one fleet only."""
        if self._fleet is not None and self._fleet is not fleet:
            raise ServiceError(
                "this supervisor is already bound to another fleet"
            )
        self._fleet = fleet

    def _require_fleet(self):
        if self._fleet is None:
            raise ServiceError(
                "supervisor is not attached to a fleet (use "
                "FleetManager.attach_supervisor)"
            )
        return self._fleet

    def _breaker(self, tenant: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(tenant)
            if breaker is None:
                breaker = CircuitBreaker(
                    threshold=self._breaker_threshold,
                    window_seconds=self._breaker_window,
                    cooldown_seconds=self._breaker_cooldown,
                    clock=self._clock,
                )
                self._breakers[tenant] = breaker
            return breaker

    def _emit(self, event: str, **fields) -> None:
        if self._obs is not None:
            self._obs.emit(event, **fields)

    # ------------------------------------------------------------------
    # The fleet-facing protocol
    # ------------------------------------------------------------------
    def breaker_blocks(self, tenant: str) -> bool:
        """Whether ``tenant``'s traffic should be shed (breaker open).

        Called by ``FleetManager.submit`` on the hot path. An open
        breaker whose cooldown has elapsed flips to half-open here; if
        the tenant's shard is still failed at that moment, one probe
        restart is attempted so the half-open traffic has something
        healthy to land on.
        """
        with self._lock:
            breaker = self._breakers.get(tenant)
        if breaker is None:
            return False
        was_open = breaker._state == "open"
        if breaker.blocks():
            return True
        if was_open and breaker._state == "half_open":
            # Open → half-open transition observed: probe-restart the
            # shard if the incident that opened the breaker left it
            # failed (the open window never restarts).
            fleet = self._require_fleet()
            try:
                shard = fleet.shard(tenant)
            except ServiceError:
                return False
            if shard.state == "failed":
                self._restart(tenant, shard)
        return False

    def handle_failure(self, tenant: str) -> bool:
        """React to one failure incident; returns whether a restart ran.

        Records the failure into the tenant's breaker first: an open
        breaker suppresses the restart entirely (the tenant is shed to
        its dead-letter queue until the cooldown's half-open probe).
        """
        fleet = self._require_fleet()
        breaker = self._breaker(tenant)
        state = breaker.record_failure()
        shard = fleet.shard(tenant)
        with self._lock:
            self._last_error[tenant] = shard.error or "unknown"
        if state == "open":
            self._emit(
                "breaker_open",
                tenant=tenant,
                failures=len(breaker._failures),
                error=shard.error,
            )
            return False
        return self._restart(tenant, shard)

    # ------------------------------------------------------------------
    # Restart machinery
    # ------------------------------------------------------------------
    def _restart(self, tenant: str, old: Shard) -> bool:
        fleet = self._require_fleet()
        with self._lock:
            used = self._restarts.get(tenant, 0)
        if used >= self.max_restarts:
            self._emit(
                "restart_budget_exhausted",
                tenant=tenant,
                max_restarts=self.max_restarts,
            )
            return False
        if used > 0:
            # Exponential backoff between consecutive restarts of the
            # same tenant — the RetryPolicy's schedule, its sleep.
            self._policy.sleep(self._policy.delay_for(used - 1))
        FAILPOINTS.fire(_FP_RESTART_START)
        config = fleet.config
        pending = old.take_pending_items()
        try:
            # The recovery re-runs the tenant's normal crash path —
            # snapshot + WAL-tail replay, including the hash-chain
            # divergence check — retrying transient IO, failing fast
            # on anything else (ENOSPC, corruption, chain divergence).
            summarizer = self._policy.call(
                lambda: DurableSummarizer.recover(
                    fleet.tenant_dir(tenant),
                    fsync=config.fsync,
                    obs=old.obs,
                ),
                classify=is_transient,
            )
        except BaseException as exc:
            # Put the queue residue back so a later probe (or drain)
            # still accounts for every point.
            old.adopt_items(pending)
            with self._lock:
                self._restart_failures[tenant] = (
                    self._restart_failures.get(tenant, 0) + 1
                )
                self._last_error[tenant] = f"restart failed: {exc}"
            self._breaker(tenant).record_failure()
            self._emit("restart_failed", tenant=tenant, error=str(exc))
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            return False
        new = Shard(
            tenant,
            summarizer,
            queue_points=config.queue_points,
            batch_points=config.batch_points,
            backpressure=config.backpressure,
            obs=old.obs,
        )
        new.inherit_accounting(old)
        new.adopt_items(pending)
        fleet._replace_shard(old, new)
        with self._lock:
            self._restarts[tenant] = used + 1
        FAILPOINTS.fire(_FP_RESTART_RECOVERED)
        self._emit(
            "shard_restarted",
            tenant=tenant,
            restart=used + 1,
            requeued=len(pending),
            error=old.error,
        )
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Supervision snapshot for the fleet rollup."""
        with self._lock:
            restarts = dict(self._restarts)
            failures = dict(self._restart_failures)
            last_error = dict(self._last_error)
            breakers = dict(self._breakers)
        states = {state: 0 for state in BREAKER_STATES}
        tenants: dict[str, dict] = {}
        for tenant in sorted(
            set(restarts) | set(failures) | set(breakers) | set(last_error)
        ):
            breaker = breakers.get(tenant)
            state = breaker.state if breaker is not None else "closed"
            states[state] += 1
            row: dict = {
                "restarts": restarts.get(tenant, 0),
                "restart_failures": failures.get(tenant, 0),
                "breaker": state,
            }
            if tenant in last_error:
                row["last_error"] = last_error[tenant]
            tenants[tenant] = row
        return {
            "max_restarts": self.max_restarts,
            "restarts": sum(restarts.values()),
            "restart_failures": sum(failures.values()),
            "breaker_states": states,
            "tenants": tenants,
        }
