"""One tenant's shard: bounded queue, backpressure, micro-batched appends.

A :class:`Shard` pairs one tenant's
:class:`~repro.streaming.DurableSummarizer` with a bounded in-memory
queue of arrived-but-unapplied points. The dispatcher calls
:meth:`Shard.submit` for every event; a flusher (a pool worker thread,
or the dispatcher itself in synchronous mode) calls
:meth:`Shard.flush_once` to drain up to ``batch_points`` queued points
into one :meth:`~repro.streaming.DurableSummarizer.append` — the
batch-incremental framing: bursty per-point arrivals become per-shard
micro-batches, so maintenance cost is paid per batch, not per point.

Backpressure engages when the queue holds ``queue_points`` points:

* ``block`` (default) — :meth:`submit` waits until the flusher frees
  space. Every submission that had to wait increments the block counter
  and the total blocked seconds, so saturation is visible in rollups.
* ``shed`` — :meth:`submit` drops the event immediately, counts it, and
  returns ``False``. Nothing shed ever reaches the WAL.

Ingestion latency is measured per point from arrival (``submit``) to
durable application (the end of the ``append`` that consumed it) and
recorded in the ``repro_service_ingest_seconds`` histogram of the
shard's own metrics registry — each shard has a private
:class:`~repro.observability.Observability` handle, so per-tenant
signals never mix.

Thread contract: exactly one flusher at a time may call
:meth:`flush_once` (the fleet stripes shards over pool workers so a
shard always belongs to one worker); any thread may call
:meth:`submit`. A shard whose ``append`` raised enters the ``failed``
state, wakes every blocked submitter, and refuses further traffic —
other shards are unaffected. The poisoned micro-batch and anything
still queued are *kept* (:meth:`take_failed_items` /
:meth:`take_pending_items`): the fleet dead-letters the batch and a
:class:`~repro.service.supervisor.ShardSupervisor`, when attached, can
restart the tenant from its WAL and adopt the queue — see
docs/ROBUSTNESS.md for the full failure-handling pipeline.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..clustering.incremental import ClusterFit, IncrementalClusterer
from ..exceptions import InvalidConfigError, ServiceError
from ..faults import FAILPOINTS, declare_failpoint
from ..observability import NULL_SPAN, Observability
from ..streaming import DurableSummarizer

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BATCH_POINTS_BUCKETS",
    "SHARD_STATES",
    "Shard",
    "histogram_quantile",
]

# Fired between dequeuing a micro-batch and handing it to the durable
# append — the service-side moment where a crash leaves arrived points
# neither applied nor acknowledged, and an error poisons the shard with
# the batch in hand. The fleet chaos matrix kills/errors here.
_FP_APPLY_BEFORE_APPEND = declare_failpoint("shard.apply.before_append")

#: Legal backpressure policies for a full shard queue.
BACKPRESSURE_POLICIES = ("block", "shed")

#: Shard lifecycle states surfaced in fleet rollups.
SHARD_STATES = ("running", "draining", "stopped", "failed")

#: Bucket bounds for the micro-batch size histogram (points per append).
BATCH_POINTS_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def histogram_quantile(histogram, q: float) -> float | None:
    """Upper bucket bound covering quantile ``q`` of a live histogram.

    Fixed-bucket histograms only support bound-granular quantiles; the
    returned value guarantees ``quantile <= bound``. ``None`` means the
    quantile falls in the ``+Inf`` bucket (or no observations exist).
    """
    if histogram.count == 0:
        return None
    target = q * histogram.count
    cumulative = 0
    for bound, count in zip(histogram.bounds, histogram.bucket_counts()):
        cumulative += count
        if cumulative >= target:
            return float(bound)
    return None


class Shard:
    """One tenant's queue + durable summarizer (see module docstring).

    Args:
        tenant: the tenant/stream id this shard serves.
        summarizer: the tenant's durable summarizer (the shard takes
            ownership: :meth:`close` closes it).
        queue_points: queue capacity in points; arrivals beyond it hit
            the backpressure policy.
        batch_points: at most this many queued points are folded into
            one ``append`` micro-batch.
        backpressure: ``"block"`` or ``"shed"``.
        obs: the shard's observability handle; when ``None`` a private
            metrics-only handle is created (service counters need a
            registry to live in).
    """

    def __init__(
        self,
        tenant: str,
        summarizer: DurableSummarizer,
        queue_points: int = 1024,
        batch_points: int = 64,
        backpressure: str = "block",
        obs: Observability | None = None,
    ) -> None:
        if queue_points < 1:
            raise InvalidConfigError(
                f"queue_points must be >= 1, got {queue_points}"
            )
        if batch_points < 1:
            raise InvalidConfigError(
                f"batch_points must be >= 1, got {batch_points}"
            )
        if batch_points > queue_points:
            raise InvalidConfigError(
                f"batch_points ({batch_points}) must not exceed "
                f"queue_points ({queue_points}); synchronous flushing "
                "could never assemble a full batch"
            )
        if backpressure not in BACKPRESSURE_POLICIES:
            raise InvalidConfigError(
                f"unknown backpressure policy {backpressure!r} "
                f"(expected one of {BACKPRESSURE_POLICIES})"
            )
        self.tenant = tenant
        self.summarizer = summarizer
        self.queue_points = int(queue_points)
        self.batch_points = int(batch_points)
        self.backpressure = backpressure
        self.obs = obs if obs is not None else Observability()
        self.error: str | None = None
        #: ``time.monotonic()`` of the failure that poisoned this shard
        #: (``None`` while healthy) — surfaced in fleet rollups so an
        #: operator can tell a fresh failure from a stale one.
        self.failed_at: float | None = None
        #: Set by the fleet once this shard's failure has been harvested
        #: (batch dead-lettered, supervisor notified) — makes the
        #: failure path idempotent across dispatcher and worker threads.
        self.failure_handled = False
        #: Optional ``callable(tenant) -> str`` minting one trace id per
        #: micro-batch (the fleet installs its fleet-unique minter); a
        #: standalone shard falls back to a batch-index id.
        self.trace_minter = None
        #: Trace id of the most recent micro-batch (``None`` before the
        #: first flush) — the rollup's metrics→trace exemplar link.
        self.last_trace_id: str | None = None

        self._clusterer: IncrementalClusterer | None = None
        self._cluster_attached = None

        self._queue: deque[tuple[tuple[float, ...], int, float]] = deque()
        #: The micro-batch whose append poisoned the shard, held for the
        #: fleet to dead-letter (it reached neither the WAL nor the
        #: summary, and must not simply vanish from the accounting).
        self._failed_items: list[tuple[tuple[float, ...], int, float]] = []
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._state = "running"

        self.enqueued_points = 0
        self.applied_points = 0
        self.applied_batches = 0
        self.shed_points = 0
        self.failed_points = 0
        self.dead_lettered_points = 0
        self.breaker_rejected_points = 0
        self.blocked_submissions = 0
        self.blocked_seconds = 0.0

        m = self.obs.metrics
        self._m_enqueued = m.counter(
            "repro_service_enqueued_points_total",
            help="Points accepted into this shard's queue.",
            unit="points",
        )
        self._m_applied = m.counter(
            "repro_service_applied_points_total",
            help="Points durably applied by micro-batched appends.",
            unit="points",
        )
        self._m_batches = m.counter(
            "repro_service_batches_total",
            help="Micro-batches flushed into the summarizer.",
        )
        self._m_shed = m.counter(
            "repro_service_shed_points_total",
            help="Points dropped by the 'shed' backpressure policy.",
            unit="points",
        )
        self._m_failed = m.counter(
            "repro_service_failed_points_total",
            help="Points rejected because the shard had failed.",
            unit="points",
        )
        self._m_dead_lettered = m.counter(
            "repro_service_dead_lettered_points_total",
            help="Points parked in the durable dead-letter queue.",
            unit="points",
        )
        self._m_blocks = m.counter(
            "repro_service_backpressure_blocks_total",
            help="Submissions that had to wait for queue space "
            "('block' policy).",
        )
        self._m_block_seconds = m.counter(
            "repro_service_backpressure_seconds_total",
            help="Total seconds submissions spent blocked on a full "
            "queue.",
            unit="seconds",
        )
        self._m_queue = m.gauge(
            "repro_service_queue_points",
            help="Points currently queued ahead of the summarizer.",
            unit="points",
        )
        self._h_ingest = m.histogram(
            "repro_service_ingest_seconds",
            help="Per-point latency from arrival to durable "
            "application.",
            unit="seconds",
        )
        self._h_batch = m.histogram(
            "repro_service_batch_points",
            help="Micro-batch sizes (points per append).",
            unit="points",
            buckets=BATCH_POINTS_BUCKETS,
        )

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Lifecycle state (one of :data:`SHARD_STATES`)."""
        return self._state

    @property
    def pending(self) -> int:
        """Points queued but not yet applied."""
        return len(self._queue)

    @property
    def submitted_points(self) -> int:
        """Every point ever aimed at this shard, whatever became of it.

        The left side of the service accounting identity::

            applied + pending + shed + failed + dead_lettered == submitted

        which holds exactly because every submission lands in one
        bucket: accepted into the queue (``enqueued`` = applied +
        pending + queue-harvested dead letters), dropped by
        backpressure (``shed``), rejected by a failed shard
        (``failed``), or parked straight into the dead-letter queue by
        an open circuit breaker (``breaker_rejected``, a subset of
        ``dead_lettered``).
        """
        return (
            self.enqueued_points
            + self.shed_points
            + self.failed_points
            + self.breaker_rejected_points
        )

    def ingest_p95_seconds(self) -> float | None:
        """p95 arrival→applied latency bound (bucket-granular)."""
        return histogram_quantile(self._h_ingest, 0.95)

    # ------------------------------------------------------------------
    # Clustering
    # ------------------------------------------------------------------
    def clusterer(self, min_pts: int = 25) -> IncrementalClusterer:
        """This shard's incremental clusterer, created on first use.

        The clusterer shares the shard's observability handle (so the
        ``repro_cluster_*`` metrics land in the same per-tenant
        registry) and the summarizer's distance counter (so clustering
        distance work shows up in the same accounting as maintenance).
        ``min_pts`` only applies to the creating call.
        """
        if self._clusterer is None:
            self._clusterer = IncrementalClusterer(
                min_pts=min_pts,
                counter=self.summarizer.counter,
                obs=self.obs,
            )
        return self._clusterer

    def cluster_now(
        self,
        deadline_seconds: float | None = None,
        min_pts: int = 25,
    ) -> ClusterFit:
        """Cluster the shard's current summary, as incrementally as possible.

        Serves the paper's "cluster me now" request against the live
        bubble summary: a cache hit when nothing changed, an incremental
        reachability repair when only some bubbles were touched, and an
        anytime staged fit under ``deadline_seconds`` otherwise.

        Thread contract: like :meth:`flush_once`, one caller at a time —
        call from the shard's flusher thread or while the shard is
        quiescent; a fit does not synchronize with a concurrent append.

        Raises:
            NotFittedError: the stream has not bootstrapped a summary.
        """
        clusterer = self.clusterer(min_pts=min_pts)
        bubbles = self.summarizer.summary
        maintainer = self.summarizer.maintainer
        if maintainer is not None and maintainer is not self._cluster_attached:
            # (Re)bootstrap and recovery swap the maintainer out from
            # under a long-lived shard; follow it so batch callbacks
            # keep witnessing touched bubbles.
            if self._cluster_attached is not None:
                clusterer.detach(self._cluster_attached)
            clusterer.attach(maintainer)
            self._cluster_attached = maintainer
        return clusterer.fit(bubbles, deadline_seconds=deadline_seconds)

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    def submit(self, point: tuple[float, ...], label: int = -1) -> bool:
        """Queue one point; returns whether it was accepted.

        Blocks while the queue is full under the ``block`` policy;
        returns ``False`` (and counts the shed) under ``shed``.

        Raises:
            ServiceError: the shard is draining, stopped, or failed.
        """
        with self._not_full:
            self._check_accepting()
            if len(self._queue) >= self.queue_points:
                if self.backpressure == "shed":
                    self.shed_points += 1
                    self._m_shed.inc()
                    return False
                self.blocked_submissions += 1
                self._m_blocks.inc()
                started = time.perf_counter()
                while len(self._queue) >= self.queue_points:
                    self._not_full.wait(timeout=0.05)
                    self._check_accepting()
                waited = time.perf_counter() - started
                self.blocked_seconds += waited
                self._m_block_seconds.inc(waited)
            self._queue.append((point, int(label), time.perf_counter()))
            self.enqueued_points += 1
            self._m_enqueued.inc()
            self._m_queue.set(len(self._queue))
        return True

    def _check_accepting(self) -> None:
        if self._state == "running":
            return
        if self._state == "failed":
            # Distinguish "aimed at a dead shard" from backpressure
            # shedding: rollups report these as failed_points.
            self.failed_points += 1
            self._m_failed.inc()
            raise ServiceError(
                f"shard {self.tenant!r} has failed: {self.error}"
            )
        raise ServiceError(
            f"shard {self.tenant!r} is {self._state} and no longer "
            "accepts events"
        )

    def note_dead_lettered(self, count: int) -> None:
        """Record ``count`` points parked in the dead-letter queue."""
        self.dead_lettered_points += int(count)
        self._m_dead_lettered.inc(int(count))

    def note_breaker_rejected(self, count: int) -> None:
        """Record ``count`` submissions refused by an open breaker.

        These never touch the queue; the fleet dead-letters them, so
        they are also counted via :meth:`note_dead_lettered`.
        """
        self.breaker_rejected_points += int(count)

    # ------------------------------------------------------------------
    # Flusher side (single-threaded per shard)
    # ------------------------------------------------------------------
    def flush_once(self) -> int:
        """Apply up to one micro-batch; returns the points applied.

        Raises:
            ServiceError: the wrapped ``append`` failed; the shard is now
                ``failed`` and every blocked submitter has been woken.
        """
        with self._not_full:
            if not self._queue or self._state in ("stopped", "failed"):
                return 0
            take = min(self.batch_points, len(self._queue))
            items = [self._queue.popleft() for _ in range(take)]
            self._m_queue.set(len(self._queue))
            self._not_full.notify_all()
        points = np.asarray([item[0] for item in items], dtype=np.float64)
        labels = [item[1] for item in items]
        if self.obs.spans is not None:
            # Mint one trace id per micro-batch and open the root span
            # of its trace: every span the append itself opens (WAL
            # write, maintenance, assignment) nests under it and
            # inherits the id, so the batch's full latency tree can be
            # reassembled across the fleet→shard→maintainer boundary.
            minter = self.trace_minter
            trace_id = (
                minter(self.tenant)
                if minter is not None
                else f"{self.tenant}:{self.applied_batches:06d}"
            )
            self.last_trace_id = trace_id
            span = self.obs.span(
                "ingest_batch",
                trace=trace_id,
                tenant=self.tenant,
                points=take,
            )
        else:
            span = NULL_SPAN
        try:
            with span:
                FAILPOINTS.fire(_FP_APPLY_BEFORE_APPEND)
                self.summarizer.append(points, labels)
        except BaseException as exc:
            self._fail(exc, items)
            raise ServiceError(
                f"shard {self.tenant!r} failed applying a batch of "
                f"{take} points: {exc}"
            ) from exc
        now = time.perf_counter()
        for _, _, arrived in items:
            self._h_ingest.observe(now - arrived)
        self._h_batch.observe(take)
        self.applied_points += take
        self.applied_batches += 1
        self._m_applied.inc(take)
        self._m_batches.inc()
        return take

    def _fail(
        self,
        exc: BaseException,
        items: list[tuple[tuple[float, ...], int, float]] | None = None,
    ) -> None:
        with self._not_full:
            self._state = "failed"
            self.error = f"{type(exc).__name__}: {exc}"
            self.failed_at = time.monotonic()
            # The poisoned batch and anything still queued are kept for
            # the fleet: the batch is dead-lettered, the queue either
            # adopted by a supervisor restart or dead-lettered at drain.
            if items:
                self._failed_items.extend(items)
            self._not_full.notify_all()
        # Handles are released without checkpointing: the WAL already
        # covers everything acknowledged, and the failed batch was
        # applied to neither the log nor the summary.
        try:
            self.summarizer.close(checkpoint=False)
        except Exception:
            pass
        # The errored span_end is already emitted; push it to disk so
        # the poisoned batch's trace survives even if nothing restarts
        # this tenant. The sink stays open for a supervisor restart
        # (the replacement shard inherits this observability handle).
        tracer = self.obs.tracer
        if tracer is not None:
            try:
                tracer.flush()
            except Exception:
                pass

    def take_failed_items(
        self,
    ) -> list[tuple[tuple[float, ...], int, float]]:
        """Hand over (and forget) the batch that poisoned this shard."""
        with self._not_full:
            items = self._failed_items
            self._failed_items = []
            return items

    def take_pending_items(
        self,
    ) -> list[tuple[tuple[float, ...], int, float]]:
        """Hand over (and forget) everything still queued.

        Used by the supervisor to move a failed shard's arrivals onto
        its replacement, and by drain to dead-letter the residue of a
        shard nobody restarted.
        """
        with self._not_full:
            items = list(self._queue)
            self._queue.clear()
            self._m_queue.set(0)
            self._not_full.notify_all()
            return items

    def adopt_items(
        self, items: list[tuple[tuple[float, ...], int, float]]
    ) -> None:
        """Take over queued-but-unapplied points from a failed shard.

        The points were already counted as enqueued by their original
        shard, so this restores the queue without touching counters
        (pair with :meth:`inherit_accounting`, which carries those
        counts over).
        """
        with self._not_full:
            self._queue.extend(items)
            self._m_queue.set(len(self._queue))

    def inherit_accounting(self, old: "Shard") -> None:
        """Carry a replaced shard's lifetime counters into this one.

        A supervisor restart swaps the Shard object but not the tenant:
        rollups must keep counting from where the failed incarnation
        stopped, and the accounting identity must keep holding across
        the swap. Metric objects are already shared when both shards
        use the same Observability handle (the registry is
        get-or-create), so only the plain attributes need copying.
        """
        self.enqueued_points += old.enqueued_points
        self.applied_points += old.applied_points
        self.applied_batches += old.applied_batches
        self.shed_points += old.shed_points
        self.failed_points += old.failed_points
        self.dead_lettered_points += old.dead_lettered_points
        self.breaker_rejected_points += old.breaker_rejected_points
        self.blocked_submissions += old.blocked_submissions
        self.blocked_seconds += old.blocked_seconds

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop accepting events; queued points may still be flushed."""
        with self._not_full:
            if self._state == "running":
                self._state = "draining"
            self._not_full.notify_all()

    def drain_flush(self) -> int:
        """Flush everything still queued; returns the points applied."""
        applied = 0
        while True:
            flushed = self.flush_once()
            if flushed == 0:
                return applied
            applied += flushed

    def close(self, checkpoint: bool = True) -> None:
        """Release the shard's durable handles (idempotent).

        A ``failed`` shard was already closed without a checkpoint;
        otherwise the summarizer is closed (by default after a final
        checkpoint) and the shard becomes ``stopped``.
        """
        with self._not_full:
            if self._state in ("stopped", "failed"):
                return
            self._state = "stopped"
            self._not_full.notify_all()
        # Close the final partial telemetry window before the handles go
        # away; without this flush the last window of every run would be
        # silently missing from timeseries output.
        self.summarizer.flush_timeseries()
        self.summarizer.close(checkpoint=checkpoint)
        tracer = self.obs.tracer
        if tracer is not None:
            tracer.close()

    def stats(self) -> dict:
        """One rollup row: queue/backpressure/latency/summary signals."""
        summarizer = self.summarizer
        maintainer = summarizer.maintainer
        return {
            "state": self._state,
            "pending_points": self.pending,
            "submitted_points": self.submitted_points,
            "enqueued_points": self.enqueued_points,
            "applied_points": self.applied_points,
            "applied_batches": self.applied_batches,
            "shed_points": self.shed_points,
            "failed_points": self.failed_points,
            "dead_lettered_points": self.dead_lettered_points,
            "blocked_submissions": self.blocked_submissions,
            "blocked_seconds": self.blocked_seconds,
            "ingest_p95_seconds": self.ingest_p95_seconds(),
            "batches_durable": summarizer.batches_applied,
            "window_points": summarizer.size,
            "active_bubbles": (
                maintainer.active_count if maintainer is not None else 0
            ),
            "rejected_points": summarizer.rejected_points,
            "clustering": (
                self._clusterer.stats()
                if self._clusterer is not None
                else None
            ),
            "error": self.error,
            "failed_at": self.failed_at,
            "last_trace_id": self.last_trace_id,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Shard(tenant={self.tenant!r}, state={self._state!r}, "
            f"pending={self.pending})"
        )
