"""Synthetic Gaussian-mixture databases.

The evaluation (Section 5) uses synthetic databases of 50,000–110,000
points in 2, 5, 10 and 20 dimensions, built from Gaussian clusters plus
uniform background noise, "to simulate the various scenarios ... which
allow us to analyze the effectiveness of our scheme for different changes
to the data distribution".

:class:`ClusterSpec` describes one spherical Gaussian cluster;
:class:`MixtureModel` samples labelled points from a set of clusters plus a
uniform noise component. :func:`well_separated_mixture` fabricates a
mixture whose cluster centres keep a minimum pairwise separation (in units
of their standard deviations), which is what makes ground-truth F-scores
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import NOISE_LABEL

__all__ = ["ClusterSpec", "MixtureModel", "well_separated_mixture"]


@dataclass(frozen=True)
class ClusterSpec:
    """One spherical Gaussian cluster.

    Attributes:
        center: the mean, shape ``(d,)``.
        std: isotropic standard deviation.
        label: ground-truth label carried by points of this cluster.
    """

    center: np.ndarray
    std: float
    label: int

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=np.float64)
        if center.ndim != 1:
            raise ValueError("center must be a (d,) vector")
        if self.std <= 0:
            raise ValueError(f"std must be positive, got {self.std}")
        if self.label < 0:
            raise ValueError("cluster labels must be non-negative")
        object.__setattr__(self, "center", center)

    @property
    def dim(self) -> int:
        """Dimensionality of the cluster."""
        return int(self.center.shape[0])

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` points from this cluster."""
        return rng.normal(self.center, self.std, size=(count, self.dim))

    def shifted(self, offset: np.ndarray) -> "ClusterSpec":
        """A copy of this cluster with its centre moved by ``offset``."""
        return ClusterSpec(
            center=self.center + np.asarray(offset, dtype=np.float64),
            std=self.std,
            label=self.label,
        )


class MixtureModel:
    """A set of Gaussian clusters plus uniform background noise.

    Args:
        clusters: the cluster components; may be empty (pure noise).
        noise_fraction: expected fraction of sampled points that are noise.
        bounds: ``(low, high)`` arrays of shape ``(d,)`` delimiting the
            uniform noise region; defaults to the cluster bounding box
            padded by three standard deviations.
        weights: relative sampling weights of the clusters; uniform when
            omitted.
    """

    def __init__(
        self,
        clusters: list[ClusterSpec],
        noise_fraction: float = 0.0,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        weights: np.ndarray | None = None,
    ) -> None:
        if not 0.0 <= noise_fraction <= 1.0:
            raise ValueError(
                f"noise_fraction must lie in [0, 1], got {noise_fraction}"
            )
        if not clusters and noise_fraction < 1.0 and bounds is None:
            raise ValueError("a mixture needs clusters, full noise, or bounds")
        dims = {c.dim for c in clusters}
        if len(dims) > 1:
            raise ValueError("all clusters must share one dimensionality")
        self._clusters = list(clusters)
        self._noise_fraction = float(noise_fraction)
        if weights is None:
            self._weights = (
                np.full(len(clusters), 1.0 / len(clusters))
                if clusters
                else np.empty(0)
            )
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (len(clusters),) or (weights < 0).any():
                raise ValueError("weights must be non-negative, one per cluster")
            total = weights.sum()
            if total <= 0:
                raise ValueError("weights must not all be zero")
            self._weights = weights / total
        if bounds is not None:
            low, high = bounds
            self._bounds = (
                np.asarray(low, dtype=np.float64),
                np.asarray(high, dtype=np.float64),
            )
        elif clusters:
            centers = np.stack([c.center for c in clusters])
            pad = 3.0 * max(c.std for c in clusters)
            self._bounds = (centers.min(axis=0) - pad, centers.max(axis=0) + pad)
        else:
            self._bounds = None  # pure-noise mixtures require explicit bounds

    @property
    def clusters(self) -> list[ClusterSpec]:
        """The cluster components (copy of the list, shared specs)."""
        return list(self._clusters)

    @property
    def noise_fraction(self) -> float:
        """Expected fraction of noise points per sample."""
        return self._noise_fraction

    @property
    def bounds(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The uniform-noise bounding box."""
        return self._bounds

    @property
    def dim(self) -> int:
        """Dimensionality of the mixture."""
        if self._clusters:
            return self._clusters[0].dim
        if self._bounds is not None:
            return int(self._bounds[0].shape[0])
        raise ValueError("mixture dimensionality is undefined")

    def labels(self) -> list[int]:
        """The ground-truth labels of the cluster components."""
        return [c.label for c in self._clusters]

    def sample(
        self, count: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` labelled points from the mixture.

        Returns:
            ``(points, labels)`` where noise points carry
            :data:`~repro.types.NOISE_LABEL`.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        dim = self.dim
        points = np.empty((count, dim), dtype=np.float64)
        labels = np.empty(count, dtype=np.int64)
        if count == 0:
            return points, labels

        is_noise = rng.random(count) < self._noise_fraction
        num_noise = int(is_noise.sum())
        if num_noise and self._bounds is None:
            raise ValueError("mixture cannot sample noise without bounds")
        if num_noise:
            low, high = self._bounds
            points[is_noise] = rng.uniform(low, high, size=(num_noise, dim))
            labels[is_noise] = NOISE_LABEL

        num_clustered = count - num_noise
        if num_clustered:
            if not self._clusters:
                raise ValueError("mixture has no clusters to sample from")
            choice = rng.choice(
                len(self._clusters), size=num_clustered, p=self._weights
            )
            clustered_rows = np.flatnonzero(~is_noise)
            for idx, cluster in enumerate(self._clusters):
                rows = clustered_rows[choice == idx]
                if rows.size == 0:
                    continue
                points[rows] = cluster.sample(rows.size, rng)
                labels[rows] = cluster.label
        return points, labels

    def without(self, label: int) -> "MixtureModel":
        """A copy of this mixture with the given cluster removed."""
        remaining = [c for c in self._clusters if c.label != label]
        if len(remaining) == len(self._clusters):
            raise KeyError(f"no cluster with label {label}")
        return MixtureModel(
            remaining,
            noise_fraction=self._noise_fraction,
            bounds=self._bounds,
        )

    def with_cluster(self, cluster: ClusterSpec) -> "MixtureModel":
        """A copy of this mixture with one more cluster component."""
        return MixtureModel(
            self._clusters + [cluster],
            noise_fraction=self._noise_fraction,
            bounds=self._bounds,
        )


def well_separated_mixture(
    dim: int,
    num_clusters: int,
    rng: np.random.Generator,
    std: float = 1.0,
    separation: float = 10.0,
    noise_fraction: float = 0.05,
    box: float = 100.0,
    max_tries: int = 10_000,
) -> MixtureModel:
    """A mixture whose cluster centres are at least ``separation·std`` apart.

    Centres are rejection-sampled uniformly in ``[0, box]^dim``; standard
    deviations are all ``std``. With the defaults, clusters are clearly
    separated at any of the evaluated dimensionalities, matching the
    synthetic set-up of Section 5.

    Raises:
        RuntimeError: if rejection sampling cannot place all centres (box
            too small for the requested separation).
    """
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    centers: list[np.ndarray] = []
    min_dist = separation * std
    tries = 0
    while len(centers) < num_clusters:
        tries += 1
        if tries > max_tries:
            raise RuntimeError(
                f"could not place {num_clusters} centres with separation "
                f"{min_dist} in [0, {box}]^{dim}"
            )
        candidate = rng.uniform(0.0, box, size=dim)
        if all(
            float(np.linalg.norm(candidate - c)) >= min_dist for c in centers
        ):
            centers.append(candidate)
    clusters = [
        ClusterSpec(center=center, std=std, label=i)
        for i, center in enumerate(centers)
    ]
    low = np.zeros(dim)
    high = np.full(dim, box)
    return MixtureModel(
        clusters, noise_fraction=noise_fraction, bounds=(low, high)
    )
