"""The paper's six dynamic database scenarios (Section 5).

Each scenario owns a mixture model, produces the initial database, and
manufactures :class:`~repro.database.UpdateBatch` objects that keep the
database size constant (the paper assumes "on average there will be an
equal number of insertions and deletions"). A batch of *update fraction*
``f`` deletes ``f/2 · N`` points and inserts ``f/2 · N`` new ones.

The scenarios:

* **random** — points inserted and deleted randomly according to the
  static data distribution.
* **appear** — a new cluster appears over time, inside the region already
  covered by noise.
* **extappear** (extreme appear) — a new cluster appears in a completely
  new region without any previous points, not even noise.
* **disappear** — an existing cluster is drained until it is gone.
* **gradmove** — one cluster gradually moves across the space: its points
  are deleted at the old location and re-inserted around a drifting
  centre.
* **complex** — all of the above at once (Figure 8): several clusters
  churn randomly while one appears, one disappears and one moves.

Plus :class:`Figure7Scenario`, the small qualitative set-up of Figure 7
(two clusters; the middle one disappears while two new clusters appear far
to the right), used to contrast the β and extent quality measures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..database import PointStore, UpdateBatch
from ..types import Label
from .gaussian import ClusterSpec, MixtureModel, well_separated_mixture

__all__ = [
    "DynamicScenario",
    "RandomScenario",
    "AppearScenario",
    "ExtremeAppearScenario",
    "DisappearScenario",
    "GradMoveScenario",
    "ComplexScenario",
    "Figure7Scenario",
    "make_scenario",
    "SCENARIO_KINDS",
]


class DynamicScenario(ABC):
    """Base class: initial database + a stream of constant-size batches.

    Args:
        dim: data dimensionality.
        initial_size: number of points in the initial database.
        seed: RNG seed driving sampling and update selection.
        num_clusters: Gaussian clusters in the base mixture.
        noise_fraction: uniform background noise fraction.
        std: cluster standard deviation.
    """

    name: str = "abstract"

    def __init__(
        self,
        dim: int,
        initial_size: int,
        seed: int | None = None,
        num_clusters: int = 4,
        noise_fraction: float = 0.05,
        std: float = 1.0,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if initial_size < 1:
            raise ValueError(
                f"initial_size must be >= 1, got {initial_size}"
            )
        self._dim = dim
        self._initial_size = initial_size
        self._rng = np.random.default_rng(seed)
        self._mixture = well_separated_mixture(
            dim,
            num_clusters,
            self._rng,
            std=std,
            noise_fraction=noise_fraction,
        )

    @property
    def dim(self) -> int:
        """Data dimensionality."""
        return self._dim

    @property
    def initial_size(self) -> int:
        """Size of the initial database."""
        return self._initial_size

    @property
    def mixture(self) -> MixtureModel:
        """The base mixture model."""
        return self._mixture

    def initial(self) -> tuple[np.ndarray, np.ndarray]:
        """Sample the initial database: ``(points, labels)``."""
        return self._mixture.sample(self._initial_size, self._rng)

    def populate(self, store: PointStore) -> None:
        """Insert the initial database into ``store``."""
        points, labels = self.initial()
        store.insert(points, labels)

    @abstractmethod
    def make_batch(
        self, store: PointStore, update_fraction: float
    ) -> UpdateBatch:
        """Build the next batch for the database currently in ``store``.

        Args:
            store: the live database (used to pick deletion victims).
            update_fraction: total updated fraction ``f``; the batch
                deletes and inserts ``f/2 · store.size`` points each.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _half_count(self, store: PointStore, update_fraction: float) -> int:
        if not 0.0 < update_fraction <= 1.0:
            raise ValueError(
                f"update_fraction must lie in (0, 1], got {update_fraction}"
            )
        return max(1, int(round(update_fraction * store.size / 2.0)))

    def _random_deletions(
        self, store: PointStore, count: int, exclude: np.ndarray | None = None
    ) -> np.ndarray:
        """Uniformly random alive ids (optionally excluding some ids)."""
        ids = store.ids()
        if exclude is not None and exclude.size:
            ids = np.setdiff1d(ids, exclude, assume_unique=False)
        count = min(count, ids.size)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return self._rng.choice(ids, size=count, replace=False)

    def _deletions_from_label(
        self, store: PointStore, label: Label, count: int
    ) -> np.ndarray:
        """Up to ``count`` random alive ids with a given ground-truth label."""
        ids = store.ids_with_label(label)
        count = min(count, ids.size)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return self._rng.choice(ids, size=count, replace=False)


class RandomScenario(DynamicScenario):
    """Uniformly random churn: the stationary-distribution baseline."""

    name = "random"

    def make_batch(
        self, store: PointStore, update_fraction: float
    ) -> UpdateBatch:
        count = self._half_count(store, update_fraction)
        deletions = self._random_deletions(store, count)
        points, labels = self._mixture.sample(count, self._rng)
        return UpdateBatch(
            deletions=tuple(int(i) for i in deletions),
            insertions=points,
            insertion_labels=tuple(int(l) for l in labels),
        )


class _AppearBase(DynamicScenario):
    """Shared machinery of the two appear scenarios."""

    #: placed inside the noise region (True) or far outside it (False)
    inside_noise_region: bool = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._new_cluster = self._place_new_cluster()
        self._target = max(1, self._initial_size // (len(self._mixture.clusters) + 1))

    @property
    def new_cluster(self) -> ClusterSpec:
        """The cluster that appears over time."""
        return self._new_cluster

    @property
    def target_size(self) -> int:
        """How many points the new cluster grows to."""
        return self._target

    def _place_new_cluster(self) -> ClusterSpec:
        existing = self._mixture.clusters
        std = existing[0].std if existing else 1.0
        label = max(self._mixture.labels(), default=-1) + 1
        low, high = self._mixture.bounds
        if self.inside_noise_region:
            # Rejection-sample a centre inside the noise box, away from
            # every existing cluster.
            for _ in range(10_000):
                candidate = self._rng.uniform(low, high)
                if all(
                    float(np.linalg.norm(candidate - c.center)) >= 10.0 * std
                    for c in existing
                ):
                    return ClusterSpec(center=candidate, std=std, label=label)
            raise RuntimeError("could not place the appearing cluster")
        # "Extreme appear": a completely new region that contains no
        # previous points, not even noise — well outside the noise box.
        span = high - low
        center = high + 0.5 * span
        return ClusterSpec(center=center, std=std, label=label)

    def make_batch(
        self, store: PointStore, update_fraction: float
    ) -> UpdateBatch:
        count = self._half_count(store, update_fraction)
        deletions = self._random_deletions(store, count)
        current = store.ids_with_label(self._new_cluster.label).size
        from_new = min(count, max(0, self._target - current))
        new_points = self._new_cluster.sample(from_new, self._rng)
        new_labels = np.full(from_new, self._new_cluster.label, dtype=np.int64)
        rest_points, rest_labels = self._mixture.sample(
            count - from_new, self._rng
        )
        points = np.vstack([new_points, rest_points])
        labels = np.concatenate([new_labels, rest_labels])
        return UpdateBatch(
            deletions=tuple(int(i) for i in deletions),
            insertions=points,
            insertion_labels=tuple(int(l) for l in labels),
        )


class AppearScenario(_AppearBase):
    """A new cluster grows inside the existing (noise-covered) region."""

    name = "appear"
    inside_noise_region = True


class ExtremeAppearScenario(_AppearBase):
    """A new cluster grows in a region with no previous points at all."""

    name = "extappear"
    inside_noise_region = False


class DisappearScenario(DynamicScenario):
    """One cluster is drained away by deletions over time."""

    name = "disappear"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._victim = self._mixture.clusters[0].label
        self._survivors = self._mixture.without(self._victim)

    @property
    def victim_label(self) -> Label:
        """The label of the disappearing cluster."""
        return self._victim

    def make_batch(
        self, store: PointStore, update_fraction: float
    ) -> UpdateBatch:
        count = self._half_count(store, update_fraction)
        from_victim = self._deletions_from_label(store, self._victim, count)
        filler = self._random_deletions(
            store, count - from_victim.size, exclude=from_victim
        )
        deletions = np.concatenate([from_victim, filler])
        points, labels = self._survivors.sample(count, self._rng)
        return UpdateBatch(
            deletions=tuple(int(i) for i in deletions),
            insertions=points,
            insertion_labels=tuple(int(l) for l in labels),
        )


class GradMoveScenario(DynamicScenario):
    """One cluster drifts across space via paired deletions/insertions.

    Per batch, the mover's centre advances ``step_stds`` standard
    deviations along a fixed random direction; points are deleted from the
    mover's current population and re-inserted around the new centre.
    """

    name = "gradmove"

    def __init__(self, *args, step_stds: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if step_stds <= 0:
            raise ValueError(f"step_stds must be positive, got {step_stds}")
        self._mover = self._mixture.clusters[0]
        direction = self._rng.normal(size=self._dim)
        self._direction = direction / np.linalg.norm(direction)
        self._step = step_stds * self._mover.std

    @property
    def mover_label(self) -> Label:
        """The label of the moving cluster."""
        return self._mover.label

    @property
    def mover_center(self) -> np.ndarray:
        """The mover's current centre."""
        return self._mover.center

    def make_batch(
        self, store: PointStore, update_fraction: float
    ) -> UpdateBatch:
        count = self._half_count(store, update_fraction)
        self._mover = self._mover.shifted(self._step * self._direction)
        from_mover = self._deletions_from_label(
            store, self._mover.label, count
        )
        filler = self._random_deletions(
            store, count - from_mover.size, exclude=from_mover
        )
        deletions = np.concatenate([from_mover, filler])
        points = self._mover.sample(count, self._rng)
        labels = np.full(count, self._mover.label, dtype=np.int64)
        return UpdateBatch(
            deletions=tuple(int(i) for i in deletions),
            insertions=points,
            insertion_labels=tuple(int(l) for l in labels),
        )


class ComplexScenario(DynamicScenario):
    """Everything at once (Figure 8).

    The base clusters churn randomly while simultaneously one new cluster
    appears (inside the noise region), one existing cluster disappears and
    another drifts across space. The batch volume is split evenly across
    the four behaviours, with unused quota (e.g. a fully drained victim)
    flowing back into random churn.
    """

    name = "complex"

    def __init__(self, *args, step_stds: float = 1.0, **kwargs) -> None:
        kwargs.setdefault("num_clusters", 4)
        super().__init__(*args, **kwargs)
        clusters = self._mixture.clusters
        if len(clusters) < 3:
            raise ValueError("the complex scenario needs >= 3 base clusters")
        self._victim = clusters[0].label
        self._mover = clusters[1]
        direction = self._rng.normal(size=self._dim)
        self._direction = direction / np.linalg.norm(direction)
        self._step = step_stds * self._mover.std
        # The appearing cluster sits inside the noise region, away from all
        # base clusters (the Figure 4 situation that over-fills a bubble).
        std = clusters[0].std
        low, high = self._mixture.bounds
        label = max(self._mixture.labels()) + 1
        for _ in range(10_000):
            candidate = self._rng.uniform(low, high)
            if all(
                float(np.linalg.norm(candidate - c.center)) >= 10.0 * std
                for c in clusters
            ):
                break
        else:  # pragma: no cover - only with absurd parameters
            raise RuntimeError("could not place the appearing cluster")
        self._appearing = ClusterSpec(center=candidate, std=std, label=label)
        self._appear_target = max(1, self._initial_size // (len(clusters) + 1))
        # Random churn draws from the stable clusters only.
        self._stable = self._mixture.without(self._victim).without(
            self._mover.label
        )

    @property
    def victim_label(self) -> Label:
        """Label of the disappearing cluster."""
        return self._victim

    @property
    def mover_label(self) -> Label:
        """Label of the drifting cluster."""
        return self._mover.label

    @property
    def appearing_label(self) -> Label:
        """Label of the appearing cluster."""
        return self._appearing.label

    def make_batch(
        self, store: PointStore, update_fraction: float
    ) -> UpdateBatch:
        count = self._half_count(store, update_fraction)
        quarter = max(1, count // 4)

        # --- deletions -------------------------------------------------
        self._mover = self._mover.shifted(self._step * self._direction)
        del_victim = self._deletions_from_label(store, self._victim, quarter)
        del_mover = self._deletions_from_label(
            store, self._mover.label, quarter
        )
        used = np.concatenate([del_victim, del_mover])
        del_random = self._random_deletions(
            store, count - used.size, exclude=used
        )
        deletions = np.concatenate([used, del_random])

        # --- insertions ------------------------------------------------
        appearing_now = store.ids_with_label(self._appearing.label).size
        n_appear = min(quarter, max(0, self._appear_target - appearing_now))
        n_mover = quarter
        n_churn = count - n_appear - n_mover

        appear_points = self._appearing.sample(n_appear, self._rng)
        mover_points = self._mover.sample(n_mover, self._rng)
        churn_points, churn_labels = self._stable.sample(n_churn, self._rng)
        points = np.vstack([appear_points, mover_points, churn_points])
        labels = np.concatenate(
            [
                np.full(n_appear, self._appearing.label, dtype=np.int64),
                np.full(n_mover, self._mover.label, dtype=np.int64),
                churn_labels,
            ]
        )
        return UpdateBatch(
            deletions=tuple(int(i) for i in deletions),
            insertions=points,
            insertion_labels=tuple(int(l) for l in labels),
        )


class Figure7Scenario(DynamicScenario):
    """The qualitative set-up of Figure 7, in any dimension.

    The database starts with two clusters; over the update stream the
    second ("middle") cluster disappears while two new clusters appear far
    to the right of all previous data — the situation where the extent
    quality measure redeploys bubbles after the deletion but never notices
    the absorbed insertions, and the β measure handles both.
    """

    name = "figure7"

    def __init__(
        self,
        dim: int = 2,
        initial_size: int = 4000,
        seed: int | None = None,
        std: float = 1.0,
        **_: object,
    ) -> None:
        # Hand-placed clusters; skip the base-class random mixture.
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self._dim = dim
        self._initial_size = initial_size
        self._rng = np.random.default_rng(seed)
        axis = np.zeros(dim)
        axis[0] = 1.0
        self._axis = axis
        left = ClusterSpec(center=0.0 * axis, std=std, label=0)
        middle = ClusterSpec(center=25.0 * axis, std=std, label=1)
        # The noise region extends well past the clusters, covering the
        # area where the new clusters will appear — that is what lets a
        # pre-existing sparse bubble absorb them "without a significant
        # change in its extent" (the failure mode Figure 7 demonstrates
        # for the extent measure).
        self._mixture = MixtureModel(
            [left, middle],
            noise_fraction=0.08,
            bounds=(axis * 0.0 - 5.0, axis * 85.0 + 5.0),
        )
        self._new_one = ClusterSpec(center=58.0 * axis, std=std, label=2)
        self._new_two = ClusterSpec(center=66.0 * axis, std=std, label=3)
        self._victim = middle.label
        self._survivor = self._mixture.without(self._victim)
        self._target_each = initial_size // 4

    def make_batch(
        self, store: PointStore, update_fraction: float
    ) -> UpdateBatch:
        count = self._half_count(store, update_fraction)
        from_victim = self._deletions_from_label(store, self._victim, count)
        filler = self._random_deletions(
            store, count - from_victim.size, exclude=from_victim
        )
        deletions = np.concatenate([from_victim, filler])

        half = count // 2
        sizes = []
        for target_cluster in (self._new_one, self._new_two):
            current = store.ids_with_label(target_cluster.label).size
            sizes.append(min(half, max(0, self._target_each - current)))
        n_rest = count - sum(sizes)
        chunks = [
            self._new_one.sample(sizes[0], self._rng),
            self._new_two.sample(sizes[1], self._rng),
        ]
        labels = [
            np.full(sizes[0], self._new_one.label, dtype=np.int64),
            np.full(sizes[1], self._new_two.label, dtype=np.int64),
        ]
        rest_points, rest_labels = self._survivor.sample(n_rest, self._rng)
        chunks.append(rest_points)
        labels.append(rest_labels)
        return UpdateBatch(
            deletions=tuple(int(i) for i in deletions),
            insertions=np.vstack(chunks),
            insertion_labels=tuple(
                int(l) for l in np.concatenate(labels)
            ),
        )

    @property
    def new_cluster_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """Centres of the two appearing clusters (for assertions/plots)."""
        return self._new_one.center, self._new_two.center


SCENARIO_KINDS: tuple[str, ...] = (
    "random",
    "appear",
    "extappear",
    "disappear",
    "gradmove",
    "complex",
)

_SCENARIOS: dict[str, type[DynamicScenario]] = {
    "random": RandomScenario,
    "appear": AppearScenario,
    "extappear": ExtremeAppearScenario,
    "disappear": DisappearScenario,
    "gradmove": GradMoveScenario,
    "complex": ComplexScenario,
    "figure7": Figure7Scenario,
}


def make_scenario(
    kind: str,
    dim: int,
    initial_size: int,
    seed: int | None = None,
    **kwargs: object,
) -> DynamicScenario:
    """Instantiate a scenario by its Section 5 name.

    Args:
        kind: one of :data:`SCENARIO_KINDS` or ``"figure7"``.
        dim: data dimensionality (the paper evaluates 2, 5, 10 and 20).
        initial_size: initial database size.
        seed: RNG seed.
        **kwargs: scenario-specific extras (``num_clusters``,
            ``noise_fraction``, ``std``, ``step_stds``).

    Raises:
        KeyError: for an unknown scenario kind.
    """
    try:
        cls = _SCENARIOS[kind]
    except KeyError:
        raise KeyError(
            f"unknown scenario {kind!r}; expected one of "
            f"{sorted(_SCENARIOS)}"
        ) from None
    return cls(dim=dim, initial_size=initial_size, seed=seed, **kwargs)
