"""Structured synthetic generators beyond Gaussian mixtures.

Section 4.1 argues that a good quality measure must cope with "richer and
denser substructures in some regions of the data space than in others,
although the regions may occupy the same volume". These generators build
the datasets that exercise exactly that argument (plus the non-convex
shapes that motivate density-based hierarchical clustering over k-means in
the first place):

* :func:`varying_density_mixture` — clusters of equal spatial radius but
  very different point densities (the extent measure's blind spot);
* :func:`nested_density_mixture` — a dense sub-cluster embedded inside a
  sparse parent cluster (hierarchical structure at two resolutions);
* :func:`ring` — an annulus, the classic non-convex OPTICS showcase.

All generators return ``(points, labels)`` pairs compatible with
:class:`~repro.database.PointStore`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["varying_density_mixture", "nested_density_mixture", "ring"]


def varying_density_mixture(
    rng: np.random.Generator,
    total: int = 5_000,
    radius: float = 2.0,
    density_ratio: float = 8.0,
    separation: float = 20.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Two equal-radius 2-d clusters with very different densities.

    The dense cluster holds ``density_ratio`` times the points of the
    sparse one within the same radius. A spatial-extent quality threshold
    treats both clusters identically; the β measure does not.

    Returns:
        ``(points, labels)`` with labels 0 (dense) and 1 (sparse).
    """
    if density_ratio <= 1.0:
        raise ValueError("density_ratio must exceed 1")
    dense_count = int(total * density_ratio / (density_ratio + 1.0))
    sparse_count = total - dense_count
    dense = rng.normal([0.0, 0.0], radius / 3.0, size=(dense_count, 2))
    sparse = rng.normal(
        [separation, 0.0], radius / 3.0, size=(sparse_count, 2)
    )
    points = np.vstack([dense, sparse])
    labels = np.concatenate(
        [
            np.zeros(dense_count, dtype=np.int64),
            np.ones(sparse_count, dtype=np.int64),
        ]
    )
    return points, labels


def nested_density_mixture(
    rng: np.random.Generator,
    parent: int = 4_000,
    child: int = 1_500,
    parent_std: float = 6.0,
    child_std: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """A dense sub-cluster inside a sparse parent cluster (2-d).

    The hierarchical case of Section 4.1: "clustering substructures can
    evolve at lower levels of a hierarchical clustering structure and go
    undetected if they are located within the allowed radius of a data
    bubble". The child sits at the parent's fringe so the two densities
    are spatially distinguishable.

    Returns:
        ``(points, labels)`` with labels 0 (parent) and 1 (child).
    """
    parent_points = rng.normal([0.0, 0.0], parent_std, size=(parent, 2))
    offset = np.array([parent_std, 0.0])
    child_points = rng.normal(offset, child_std, size=(child, 2))
    points = np.vstack([parent_points, child_points])
    labels = np.concatenate(
        [
            np.zeros(parent, dtype=np.int64),
            np.ones(child, dtype=np.int64),
        ]
    )
    return points, labels


def ring(
    rng: np.random.Generator,
    count: int = 2_000,
    radius: float = 10.0,
    thickness: float = 0.8,
    center: tuple[float, float] = (0.0, 0.0),
    label: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Points on a 2-d annulus (non-convex cluster).

    Returns:
        ``(points, labels)`` with all labels equal to ``label``.
    """
    if radius <= 0 or thickness <= 0:
        raise ValueError("radius and thickness must be positive")
    angles = rng.uniform(0.0, 2.0 * np.pi, size=count)
    radii = radius + rng.normal(0.0, thickness, size=count)
    points = np.column_stack(
        [
            center[0] + radii * np.cos(angles),
            center[1] + radii * np.sin(angles),
        ]
    )
    return points, np.full(count, label, dtype=np.int64)
