"""Update streams: driving a scenario against a live database.

:class:`UpdateStream` glues a :class:`~repro.data.scenarios.DynamicScenario`
to a :class:`~repro.database.PointStore`: each ``next(stream)`` asks the
scenario for the next batch *given the current database content* (deletion
victims must be alive ids). The stream does **not** apply the batch — that
is the maintainer's job, and in the evaluation the *same* batch must be
applied to two independent stores (incremental vs complete rebuild), so
application and generation are deliberately decoupled;
:func:`clone_batch_for` re-targets a batch's deletions onto a second store
holding the same logical points under different ids.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..database import PointStore, UpdateBatch
from .scenarios import DynamicScenario

__all__ = ["UpdateStream", "clone_batch_for", "apply_raw"]


class UpdateStream:
    """Iterator of batches generated against a specific store.

    Args:
        scenario: the dynamics to simulate.
        store: the database the batches will be applied to (used to select
            alive deletion victims; the stream never mutates it).
        update_fraction: per-batch update volume as a fraction of the
            current database size (deletes and inserts half each).
        num_batches: how many batches to produce; ``None`` for unbounded.

    Example:
        >>> from repro.data import make_scenario
        >>> from repro.database import PointStore
        >>> scenario = make_scenario("random", dim=2, initial_size=500, seed=0)
        >>> store = PointStore(dim=2)
        >>> scenario.populate(store)
        >>> stream = UpdateStream(scenario, store, update_fraction=0.1,
        ...                       num_batches=3)
        >>> batches = list(stream)   # doctest: +SKIP
    """

    def __init__(
        self,
        scenario: DynamicScenario,
        store: PointStore,
        update_fraction: float = 0.05,
        num_batches: int | None = None,
    ) -> None:
        if not 0.0 < update_fraction <= 1.0:
            raise ValueError(
                f"update_fraction must lie in (0, 1], got {update_fraction}"
            )
        if num_batches is not None and num_batches < 0:
            raise ValueError(
                f"num_batches must be non-negative, got {num_batches}"
            )
        self._scenario = scenario
        self._store = store
        self._fraction = update_fraction
        self._remaining = num_batches
        self._produced = 0

    @property
    def produced(self) -> int:
        """How many batches this stream has generated so far."""
        return self._produced

    def __iter__(self) -> Iterator[UpdateBatch]:
        return self

    def __next__(self) -> UpdateBatch:
        if self._remaining is not None:
            if self._remaining == 0:
                raise StopIteration
            self._remaining -= 1
        batch = self._scenario.make_batch(self._store, self._fraction)
        self._produced += 1
        return batch


def clone_batch_for(
    batch: UpdateBatch,
    source: PointStore,
    target: PointStore,
) -> UpdateBatch:
    """Re-target a batch's deletions onto a mirror store.

    The Table 1 comparison maintains two stores with the same logical
    content but independent id spaces. Deletion ids generated against
    ``source`` are translated to ``target`` by matching coordinates: both
    stores were fed identical insertions in identical order, so the k-th
    alive point of one corresponds to the k-th alive point of the other.

    Raises:
        ValueError: if the two stores have diverged in size.
    """
    if source.size != target.size:
        raise ValueError(
            f"stores diverged: {source.size} vs {target.size} points"
        )
    source_ids = source.ids()
    target_ids = target.ids()
    # Both stores assign ids in insertion order and delete the same logical
    # points, so sorted alive ids correspond positionally.
    position = {int(pid): i for i, pid in enumerate(source_ids)}
    translated = tuple(
        int(target_ids[position[int(pid)]]) for pid in batch.deletions
    )
    return UpdateBatch(
        deletions=translated,
        insertions=batch.insertions,
        insertion_labels=batch.insertion_labels,
    )


def apply_raw(store: PointStore, batch: UpdateBatch) -> None:
    """Apply a batch to a bare store (no summary maintenance).

    Used to keep a mirror database in sync when the consumer on that side
    (e.g. a from-scratch rebuild) does its own summarization afterwards.
    """
    if batch.deletions:
        store.delete(np.asarray(batch.deletions, dtype=np.int64))
    if batch.num_insertions:
        store.insert(batch.insertions, batch.insertion_labels)
