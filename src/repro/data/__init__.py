"""Synthetic dynamic data: mixtures, the six Section 5 scenarios, streams."""

from .gaussian import ClusterSpec, MixtureModel, well_separated_mixture
from .scenarios import (
    SCENARIO_KINDS,
    AppearScenario,
    ComplexScenario,
    DisappearScenario,
    DynamicScenario,
    ExtremeAppearScenario,
    Figure7Scenario,
    GradMoveScenario,
    RandomScenario,
    make_scenario,
)
from .shapes import nested_density_mixture, ring, varying_density_mixture
from .stream import UpdateStream, apply_raw, clone_batch_for

__all__ = [
    "AppearScenario",
    "ClusterSpec",
    "ComplexScenario",
    "DisappearScenario",
    "DynamicScenario",
    "ExtremeAppearScenario",
    "Figure7Scenario",
    "GradMoveScenario",
    "MixtureModel",
    "RandomScenario",
    "SCENARIO_KINDS",
    "UpdateStream",
    "apply_raw",
    "clone_batch_for",
    "make_scenario",
    "nested_density_mixture",
    "ring",
    "varying_density_mixture",
    "well_separated_mixture",
]
