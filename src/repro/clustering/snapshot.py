"""High-level clustering snapshot over a bubble summary.

The pipeline modules (:class:`BubbleOptics`, extraction, majority
labelling) are deliberately small and composable; this façade packages the
common composition into one object — the "current clustering" an
application holds between update batches:

* build once from a :class:`~repro.core.bubble_set.BubbleSet`;
* read the hierarchical structure (:attr:`tree`, :meth:`render`);
* label the database (:meth:`point_labels`) through bubble membership;
* classify *new* points without touching the database
  (:meth:`predict` — nearest non-noise bubble representative), the
  "cluster assignment of new points should use a function that does not
  depend on comparison to past points" requirement Barbará [4] states for
  stream clustering.

Snapshots are immutable value objects: after the next update batch, build
a fresh one (construction is O(B²) — trivial next to the batch itself).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bubble_set import BubbleSet
from ..database import PointStore
from ..types import NOISE_LABEL, PointMatrix
from .bubble_optics import BubbleOptics, BubbleOpticsResult
from .cluster_tree import ClusterTree
from .extraction import extract_cluster_tree, majority_bubble_labels
from .render import render_reachability
from .hierarchy import render_tree

__all__ = ["ClusteringSnapshot"]


@dataclass(frozen=True)
class ClusteringSnapshot:
    """One point-in-time hierarchical clustering of a summarized database.

    Build with :meth:`build`; the constructor fields are the pipeline's
    intermediate products for users who need them.

    Attributes:
        optics: the bubble-level OPTICS result.
        tree: the extracted cluster tree over the expanded plot.
        bubble_labels: bubble id → leaf-cluster index (noise = ``-1``).
        reps: ``(B, d)`` representatives of the non-empty bubbles, aligned
            with :attr:`rep_labels`.
        rep_labels: cluster index of each row of :attr:`reps`.
        num_clusters: how many leaf clusters the snapshot distinguishes.
    """

    optics: BubbleOpticsResult
    tree: ClusterTree
    bubble_labels: dict[int, int]
    reps: np.ndarray
    rep_labels: np.ndarray
    num_clusters: int

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        bubbles: BubbleSet,
        min_pts: int = 25,
        min_cluster_fraction: float = 0.02,
        significance: float = 0.45,
    ) -> "ClusteringSnapshot":
        """Cluster a summary and freeze the result.

        Args:
            bubbles: the (non-empty) summary to cluster.
            min_pts: OPTICS MinPts, in points.
            min_cluster_fraction: smallest admissible cluster as a
                fraction of the summarized points.
            significance: split-significance of the tree extraction. The
                default is deliberately stricter than the 0.75 of Sander
                et al. (which targets smooth point-level plots): expanded
                bubble plots are jagged — flat virtual-reachability
                plateaus with jumps at bubble boundaries — so a moderate
                bar easily clears 0.75 against its plateau interiors and
                over-segments. At 0.45 a split needs its bar to more than
                double the interior level, which empirically recovers the
                generating clusters across seeds and dimensions.
        """
        optics = BubbleOptics(min_pts=min_pts).fit(bubbles)
        expanded = optics.expanded()
        min_size = max(2, int(min_cluster_fraction * len(expanded)))
        tree = extract_cluster_tree(
            expanded.reachability,
            min_size=min_size,
            significance=significance,
        )
        spans = [leaf.span() for leaf in tree.leaves()]
        labels = majority_bubble_labels(expanded, spans)

        rows = []
        row_labels = []
        for bubble_id, label in sorted(labels.items()):
            rows.append(bubbles[bubble_id].rep)
            row_labels.append(label)
        return cls(
            optics=optics,
            tree=tree,
            bubble_labels=labels,
            reps=np.stack(rows),
            rep_labels=np.asarray(row_labels, dtype=np.int64),
            num_clusters=len(spans),
        )

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def point_labels(self, store: PointStore) -> np.ndarray:
        """Cluster labels for every alive point, aligned with ``store.ids()``.

        Each point inherits its owning bubble's cluster; points owned by
        no bubble (never summarized) come out as noise.
        """
        ids = store.ids()
        labels = np.full(ids.size, NOISE_LABEL, dtype=np.int64)
        for position, pid in enumerate(ids):
            owner = store.owner(int(pid))
            if owner is not None:
                labels[position] = self.bubble_labels.get(owner, NOISE_LABEL)
        return labels

    def predict(self, points: PointMatrix) -> np.ndarray:
        """Cluster labels for new points, via nearest bubble representative.

        Noise-labelled bubbles participate: a point closest to a noise
        bubble is predicted as noise (it landed in a region the clustering
        deems unclustered).
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        sq = (
            np.einsum("ij,ij->i", points, points)[:, None]
            + np.einsum("ij,ij->i", self.reps, self.reps)[None, :]
            - 2.0 * (points @ self.reps.T)
        )
        nearest = np.argmin(sq, axis=1)
        return self.rep_labels[nearest]

    def cluster_sizes(self) -> np.ndarray:
        """Summarized points per leaf cluster (cluster index order)."""
        sizes = np.zeros(self.num_clusters, dtype=np.int64)
        counts = self.optics.counts
        for row, bubble_id in enumerate(self.optics.bubble_ids):
            label = self.bubble_labels.get(int(bubble_id), NOISE_LABEL)
            if label != NOISE_LABEL:
                sizes[label] += counts[row]
        return sizes

    def render(self, width: int = 78, height: int = 10) -> str:
        """ASCII reachability plot plus the cluster tree."""
        expanded = self.optics.expanded()
        plot = render_reachability(
            expanded.reachability, width=width, height=height
        )
        return plot + "\n\n" + render_tree(self.tree)
