"""Cluster-tree structures for hierarchical extraction results.

A cluster extracted from a reachability plot is a contiguous span
``[start, end)`` of ordering positions; the hierarchical structure is a
tree of nested spans. :class:`ClusterNode` is one such span with children;
:class:`ClusterTree` wraps the root(s) and offers the traversals the
evaluation needs (all nodes as cluster candidates, leaves as a flat
partition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["ClusterNode", "ClusterTree"]


@dataclass
class ClusterNode:
    """One cluster: a contiguous region of the reachability ordering.

    Attributes:
        start: first ordering position of the region (inclusive).
        end: one past the last ordering position (exclusive).
        split_value: the reachability height that separated this node from
            its sibling context (``inf`` for the root).
        children: nested sub-clusters, in plot order.
    """

    start: int
    end: int
    split_value: float = float("inf")
    children: list["ClusterNode"] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of ordering positions (points, on an expanded plot)."""
        return self.end - self.start

    def is_leaf(self) -> bool:
        """Whether this node has no further sub-structure."""
        return not self.children

    def span(self) -> tuple[int, int]:
        """The ``(start, end)`` pair of the region."""
        return (self.start, self.end)

    def iter_nodes(self) -> Iterator["ClusterNode"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def leaves(self) -> list["ClusterNode"]:
        """The leaf descendants (this node itself if it is a leaf)."""
        if self.is_leaf():
            return [self]
        result: list[ClusterNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def __contains__(self, position: object) -> bool:
        if not isinstance(position, int):
            return False
        return self.start <= position < self.end


@dataclass
class ClusterTree:
    """The hierarchical clustering structure extracted from one plot.

    Attributes:
        root: the node spanning the whole ordering.
    """

    root: ClusterNode

    def nodes(self) -> list[ClusterNode]:
        """Every node, pre-order (the root first)."""
        return list(self.root.iter_nodes())

    def leaves(self) -> list[ClusterNode]:
        """The finest-resolution flat clustering."""
        return self.root.leaves()

    def clusters(self) -> list[ClusterNode]:
        """All *proper* clusters: every node except the all-spanning root.

        The root always spans the entire database and carries no grouping
        information; evaluation candidates exclude it unless it is the only
        node.
        """
        nodes = self.nodes()
        if len(nodes) == 1:
            return nodes
        return nodes[1:]

    @property
    def depth(self) -> int:
        """Length of the longest root-to-leaf path (a lone root has depth 1)."""

        def walk(node: ClusterNode) -> int:
            if node.is_leaf():
                return 1
            return 1 + max(walk(child) for child in node.children)

        return walk(self.root)
