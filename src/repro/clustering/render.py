"""Plain-text rendering of reachability plots.

Reachability plots are the paper's central visual artifact; this module
renders one as ASCII bars so CLI runs and examples can show the clustering
structure without a plotting dependency. Valleys (clusters) read as gaps
between tall separator columns, exactly as in the paper's Figures 7–8.

The renderer downsamples the ordering into ``width`` buckets (taking the
*maximum* reachability in each bucket so separators are never lost to the
downsampling), clips infinite bars to the top row, and scales linearly to
``height`` text rows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_reachability"]


def render_reachability(
    reachability: np.ndarray,
    width: int = 78,
    height: int = 12,
    bar: str = "#",
) -> str:
    """Render plot heights as an ASCII bar chart.

    Args:
        reachability: plot heights in ordering position; ``inf`` allowed.
        width: output columns (the ordering is max-pooled into this many
            buckets; narrower inputs are rendered one column per entry).
        height: output rows for the tallest finite bar.
        bar: the fill character.

    Returns:
        A multi-line string, top row first, with a baseline rule and an
        axis annotation giving the finite maximum.
    """
    reach = np.asarray(reachability, dtype=np.float64)
    if reach.size == 0:
        raise ValueError("cannot render an empty plot")
    if width < 1 or height < 1:
        raise ValueError("width and height must be positive")

    # Max-pool into `width` buckets so separator bars always survive.
    num = reach.shape[0]
    columns = min(width, num)
    edges = np.linspace(0, num, columns + 1).astype(np.int64)
    pooled = np.array(
        [reach[edges[i] : edges[i + 1]].max() for i in range(columns)]
    )

    finite = pooled[np.isfinite(pooled)]
    top = float(finite.max()) if finite.size and finite.max() > 0 else 1.0
    levels = np.where(
        np.isfinite(pooled),
        np.ceil(np.clip(pooled / top, 0.0, 1.0) * height),
        height,  # infinite bars hit the ceiling
    ).astype(np.int64)

    rows = []
    for row in range(height, 0, -1):
        rows.append(
            "".join(bar if level >= row else " " for level in levels)
        )
    rows.append("-" * columns)
    rows.append(f"max finite reachability = {top:.4g}  (n = {num})")
    return "\n".join(rows)
