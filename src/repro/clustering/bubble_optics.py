"""OPTICS over data bubbles (Breunig et al. 2001, as used by the paper).

Applying a hierarchical clustering algorithm to data summarizations needs
"only minor modifications" (Section 1): OPTICS keeps its priority-queue
walk, but distances, core distances and the final plot are defined on
bubbles instead of points.

**Bubble-to-bubble distance.** With representatives ``rep``, extents ``e``
and expected nearest-neighbour distances ``nnDist(1, ·)``::

    d_rep = dist(rep_B, rep_C)
    dist(B, C) = d_rep - (e_B + e_C) + nnDist(1, B) + nnDist(1, C)
                                         if d_rep - (e_B + e_C) >= 0
                 max(nnDist(1, B), nnDist(1, C))      otherwise (overlap)

i.e. the expected distance between *border points* of non-overlapping
bubbles, corrected by the average gap between points inside each bubble;
overlapping bubbles are as close as their internal point gaps.

**Core distance.** MinPts counts *points*, not bubbles: a bubble whose own
``n`` reaches MinPts is core within itself and its core distance is the
internal estimate ``nnDist(MinPts, B)``. A smaller bubble accumulates
neighbouring bubbles by increasing distance until the cumulative point
count reaches MinPts; its core distance is the bubble distance at which
that happens.

**Virtual reachability.** For expanding a bubble into its ``n`` plot
entries, the points inside a bubble are estimated to reach each other at
``max(coreDist(B), nnDist(1, B))``, which the internal core-distance
estimate already dominates; empty/singleton bubbles fall back to their
extent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bubble_set import BubbleSet
from ..sufficient import SufficientStatistics
from .engine import run_optics
from .reachability import ExpandedPlot, ReachabilityPlot

__all__ = [
    "BubbleOptics",
    "BubbleOpticsResult",
    "bubble_distance_matrix",
    "bubble_distance_rows",
    "optics_over_summaries",
]

#: Row block size for the chunked distance matrix build; bounds the
#: ``(block, B, d)`` difference tensor without changing any result float
#: (each row is computed independently).
_MATRIX_BLOCK_ROWS = 256


def _nn_dist_arrays(
    counts: np.ndarray, extents: np.ndarray, dim: int, k: int
) -> np.ndarray:
    """Vectorised ``nnDist(k, B)`` for every bubble; the extent where
    ``n <= k``.

    Degenerate summaries are sanitized rather than propagated: a NaN or
    negative extent (float cancellation in the variance term of
    ``extent``, e.g. from duplicate points) would otherwise leak NaN into
    every distance involving the bubble and from there into the whole
    reachability plot. The paper's formula gives 0 for a zero-spread
    bubble, so non-finite and negative inputs clamp to 0.0.
    """
    extents = np.where(np.isfinite(extents) & (extents > 0.0), extents, 0.0)
    result = extents.copy()
    mask = counts > k
    result[mask] = (k / counts[mask]) ** (1.0 / dim) * extents[mask]
    return result


def _distance_rows_from_sq(
    sq: np.ndarray,
    rows: np.ndarray,
    extents: np.ndarray,
    nn1: np.ndarray,
) -> np.ndarray:
    """Finish bubble distances for ``rows`` given squared rep distances."""
    d_rep = np.sqrt(sq)
    gap = d_rep - (extents[rows][:, None] + extents[None, :])
    # The nn1 sum is parenthesized so every term of the row formula is
    # symmetric under (i, j) swap; the whole matrix is then bitwise
    # symmetric, letting the incremental repair refresh column j of a
    # touched bubble from its recomputed row without ULP drift.
    separated = gap + (nn1[rows][:, None] + nn1[None, :])
    overlapping = np.maximum(nn1[rows][:, None], nn1[None, :])
    dists = np.where(gap >= 0.0, separated, overlapping)
    dists[np.arange(rows.shape[0]), rows] = 0.0
    return dists


def bubble_distance_rows(
    rows: np.ndarray,
    reps: np.ndarray,
    extents: np.ndarray,
    nn1: np.ndarray,
) -> np.ndarray:
    """Bubble distances from each of ``rows`` to every bubble.

    Bit-identical to the corresponding rows of
    :func:`bubble_distance_matrix`: both compute the squared rep distance
    as a difference-based einsum contraction over the coordinate axis
    (same operands, same reduction order), so an incrementally repaired
    row equals a from-scratch rebuild float for float — the foundation of
    the exact-equivalence contract in
    :mod:`repro.clustering.incremental`.
    """
    rows = np.asarray(rows, dtype=np.int64)
    diff = reps[rows][:, None, :] - reps[None, :, :]
    sq = np.einsum("ijk,ijk->ij", diff, diff)
    np.maximum(sq, 0.0, out=sq)
    return _distance_rows_from_sq(sq, rows, extents, nn1)


def bubble_distance_matrix(
    reps: np.ndarray, extents: np.ndarray, nn1: np.ndarray
) -> np.ndarray:
    """Full matrix of bubble-to-bubble distances.

    The squared rep distances are computed difference-based (``(a-b)·(a-b)``
    per pair) rather than via the norm trick (``|a|² + |b|² - 2a·b``):
    marginally slower, but exactly reproducible one row at a time, which
    the incremental cluster cache requires to repair touched rows without
    introducing ULP drift against a cold rebuild. Rows are processed in
    blocks to bound the ``(block, B, d)`` difference tensor.

    Args:
        reps: ``(B, d)`` representative matrix.
        extents: per-bubble extents, shape ``(B,)``.
        nn1: per-bubble ``nnDist(1, ·)`` estimates, shape ``(B,)``.
    """
    num = reps.shape[0]
    dists = np.empty((num, num), dtype=np.float64)
    for start in range(0, num, _MATRIX_BLOCK_ROWS):
        rows = np.arange(start, min(start + _MATRIX_BLOCK_ROWS, num))
        dists[rows] = bubble_distance_rows(rows, reps, extents, nn1)
    return dists


def optics_over_summaries(
    reps: np.ndarray,
    extents: np.ndarray,
    counts: np.ndarray,
    internal_core: np.ndarray,
    min_pts: int,
    eps: float = np.inf,
) -> ReachabilityPlot:
    """OPTICS over arbitrary summaries described by rep/extent/count.

    The generic path shared by data bubbles and BIRCH clustering features:
    any summary that can state a representative, a spatial extent, a point
    count and an internal ``nnDist(MinPts)`` estimate can be ordered with
    the bubble distance function.

    Args:
        reps: ``(K, d)`` representatives.
        extents: per-summary extents.
        counts: per-summary point counts (weights for the core condition).
        internal_core: per-summary internal core-distance estimate, used
            when the summary alone holds ``min_pts`` points.
        min_pts: MinPts in points.
        eps: generating distance.
    """
    reps = np.ascontiguousarray(reps, dtype=np.float64)
    extents = np.asarray(extents, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    internal_core = np.asarray(internal_core, dtype=np.float64)
    num = reps.shape[0]
    if num == 0:
        # Nothing to order is a legal state for service-facing callers (a
        # "cluster me now" query against a fresh tenant): an empty plot,
        # not an error. run_optics itself still rejects zero objects.
        empty = np.empty(0)
        return ReachabilityPlot(
            ordering=np.empty(0, dtype=np.int64),
            reachability=empty,
            core_distances=empty,
        )
    dim = reps.shape[1]
    # Degenerate summaries (duplicate points → zero/NaN extent, NaN
    # internal core from variance cancellation) must not leak NaN into
    # the plot; clamp to the paper's zero-spread semantics. A +inf
    # internal core is meaningful (never core within itself) and kept.
    extents = np.where(np.isfinite(extents) & (extents > 0.0), extents, 0.0)
    internal_core = np.where(np.isnan(internal_core), 0.0, internal_core)
    internal_core = np.where(internal_core < 0.0, 0.0, internal_core)
    nn1 = _nn_dist_arrays(counts, extents, dim, k=1)
    dist_matrix = bubble_distance_matrix(reps, extents, nn1)

    def distances_from(obj: int) -> np.ndarray:
        return dist_matrix[obj]

    def core_distance(obj: int, dists: np.ndarray) -> float:
        if counts[obj] >= min_pts:
            return float(internal_core[obj])
        within = dists <= eps
        order = np.argsort(dists[within], kind="stable")
        cumulative = np.cumsum(counts[within][order])
        reached = np.flatnonzero(cumulative >= min_pts)
        if reached.size == 0:
            return np.inf
        return float(dists[within][order][reached[0]])

    return run_optics(num, distances_from, core_distance, eps=eps)


@dataclass(frozen=True)
class BubbleOpticsResult:
    """A bubble-level cluster ordering plus what is needed to expand it.

    Attributes:
        plot: the reachability plot over *compact indices* (0..K-1 over the
            non-empty bubbles that were clustered).
        bubble_ids: compact index → original bubble id.
        counts: per compact index, how many points the bubble summarizes.
        virtual_reachability: per compact index, the reachability estimate
            for the bubble's interior points.
    """

    plot: ReachabilityPlot
    bubble_ids: np.ndarray
    counts: np.ndarray
    virtual_reachability: np.ndarray

    def expanded(self) -> ExpandedPlot:
        """One plot entry per summarized point, attributed to bubble ids.

        The entry order follows the bubble ordering; each bubble's first
        entry carries its actual reachability, the rest its virtual
        reachability — the comparability trick of Breunig et al. 2001 that
        makes cluster sizes in the bubble plot match the point plot.
        """
        raw = self.plot.expand(self.counts, self.virtual_reachability)
        return ExpandedPlot(
            reachability=raw.reachability,
            source=self.bubble_ids[raw.source],
        )


class BubbleOptics:
    """OPTICS configured for :class:`~repro.core.bubble_set.BubbleSet`.

    Args:
        min_pts: MinPts in *points* (summed over bubbles).
        eps: generating distance over bubble distances; ``inf`` for the
            complete ordering (the evaluation's setting).

    Example:
        >>> # bubbles: a BubbleSet from BubbleBuilder
        >>> result = BubbleOptics(min_pts=25).fit(bubbles)  # doctest: +SKIP
        >>> expanded = result.expanded()                    # doctest: +SKIP
    """

    def __init__(self, min_pts: int = 25, eps: float = np.inf) -> None:
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self._min_pts = int(min_pts)
        self._eps = float(eps)

    @property
    def min_pts(self) -> int:
        """The MinPts parameter (in points)."""
        return self._min_pts

    def fit(self, bubbles: BubbleSet) -> BubbleOpticsResult:
        """Order the non-empty bubbles of ``bubbles``.

        Empty bubbles summarize nothing and are skipped; they reappear the
        moment the maintainer recycles them.

        Raises:
            ValueError: when every bubble is empty.
        """
        non_empty = bubbles.non_empty_ids()
        if not non_empty:
            raise ValueError("cannot cluster a summary with no points")
        bubble_ids = np.asarray(non_empty, dtype=np.int64)

        reps = np.stack([bubbles[i].rep for i in non_empty])
        extents = np.asarray(
            [bubbles[i].extent for i in non_empty], dtype=np.float64
        )
        counts = np.asarray(
            [bubbles[i].n for i in non_empty], dtype=np.int64
        )
        internal_core = np.asarray(
            [bubbles[i].nn_dist(self._min_pts) for i in non_empty],
            dtype=np.float64,
        )
        plot = optics_over_summaries(
            reps,
            extents,
            counts,
            internal_core,
            min_pts=self._min_pts,
            eps=self._eps,
        )

        # Interior points of a bubble reach each other at roughly the
        # bubble's core distance; fall back to the extent when the core
        # distance is undefined or degenerate.
        virtual = plot.core_distances.copy()
        fallback = ~np.isfinite(virtual) | (virtual <= 0.0)
        virtual[fallback] = extents[fallback]
        return BubbleOpticsResult(
            plot=plot,
            bubble_ids=bubble_ids,
            counts=counts,
            virtual_reachability=virtual,
        )

    @staticmethod
    def distance(
        stats_a: SufficientStatistics, stats_b: SufficientStatistics
    ) -> float:
        """Bubble distance between two standalone sufficient statistics.

        Convenience for tests and for users composing their own pipelines;
        semantics identical to the matrix used by :meth:`fit`.
        """
        from ..sufficient import extent as _extent, nn_dist

        rep_a, rep_b = stats_a.mean(), stats_b.mean()
        ext_a, ext_b = _extent(stats_a), _extent(stats_b)
        nn_a = nn_dist(stats_a, 1) if stats_a.n > 1 else ext_a
        nn_b = nn_dist(stats_b, 1) if stats_b.n > 1 else ext_b
        diff = rep_a - rep_b
        d_rep = float(np.sqrt(np.dot(diff, diff)))
        gap = d_rep - (ext_a + ext_b)
        if gap >= 0.0:
            return gap + nn_a + nn_b
        return max(nn_a, nn_b)
