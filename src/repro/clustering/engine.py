"""Shared OPTICS engine.

OPTICS over raw points and OPTICS over data bubbles differ only in three
plug-in decisions:

* the distance from one object to all others,
* how many *points* an object stands for (1 for raw points, ``n`` for a
  bubble), and
* the core distance of an object given its distances and the weights.

The priority-queue walk itself — visit the closest unprocessed object by
current reachability, update reachabilities of its neighbours through its
core distance — is identical, so it lives here once.

The implementation uses a lazy-deletion binary heap (``heapq``), the
standard way to realise OPTICS' "OrderSeeds" structure: stale entries are
skipped when popped, which keeps updates O(log n) without a decrease-key
operation.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from .reachability import ReachabilityPlot

__all__ = ["run_optics"]


def run_optics(
    num_objects: int,
    distances_from: Callable[[int], np.ndarray],
    core_distance: Callable[[int, np.ndarray], float],
    eps: float = np.inf,
) -> ReachabilityPlot:
    """Compute an OPTICS cluster ordering.

    Args:
        num_objects: how many objects to order.
        distances_from: maps an object id to its distance vector to *all*
            objects (self-distance at its own index, typically 0).
        core_distance: maps ``(object id, its distance vector)`` to the
            object's core distance, or ``inf`` if it is not a core object.
        eps: generating distance; neighbours farther than this never have
            their reachability updated. ``inf`` (the default used by the
            evaluation) yields the complete hierarchical ordering.

    Returns:
        The finished :class:`~repro.clustering.reachability.ReachabilityPlot`.
    """
    if num_objects <= 0:
        raise ValueError("cannot order zero objects")

    processed = np.zeros(num_objects, dtype=bool)
    reach_by_obj = np.full(num_objects, np.inf)
    core_by_obj = np.full(num_objects, np.inf)
    ordering: list[int] = []
    reach_in_order: list[float] = []

    counter = 0  # tiebreaker keeping heap entries comparable
    heap: list[tuple[float, int, int]] = []

    def expand(obj: int) -> None:
        """Mark ``obj`` processed and push reachability updates from it."""
        nonlocal counter
        processed[obj] = True
        ordering.append(obj)
        reach_in_order.append(float(reach_by_obj[obj]))
        dists = distances_from(obj)
        core = core_distance(obj, dists)
        core_by_obj[obj] = core
        if not np.isfinite(core):
            return  # not a core object: expands no neighbourhood
        candidates = np.flatnonzero(~processed & (dists <= eps))
        new_reach = np.maximum(dists[candidates], core)
        improved = new_reach < reach_by_obj[candidates]
        for idx, reach in zip(candidates[improved], new_reach[improved]):
            reach_by_obj[idx] = reach
            counter += 1
            heapq.heappush(heap, (float(reach), counter, int(idx)))

    for start in range(num_objects):
        if processed[start]:
            continue
        # New component: the start object has undefined (inf) reachability.
        expand(start)
        while heap:
            reach, _, obj = heapq.heappop(heap)
            if processed[obj] or reach > reach_by_obj[obj]:
                continue  # stale lazy-deletion entry
            expand(obj)

    return ReachabilityPlot(
        ordering=np.asarray(ordering, dtype=np.int64),
        reachability=np.asarray(reach_in_order, dtype=np.float64),
        core_distances=core_by_obj,
    )
