"""Shared OPTICS engine.

OPTICS over raw points and OPTICS over data bubbles differ only in three
plug-in decisions:

* the distance from one object to all others,
* how many *points* an object stands for (1 for raw points, ``n`` for a
  bubble), and
* the core distance of an object given its distances and the weights.

The priority-queue walk itself — visit the closest unprocessed object by
current reachability, update reachabilities of its neighbours through its
core distance — is identical, so it lives here once.

The classical realisation of OPTICS' "OrderSeeds" structure is a
lazy-deletion binary heap. This implementation replaces the heap with flat
arrays while reproducing its semantics **exactly**: reachability values
only ever *decrease*, so at any moment each object has at most one
non-stale heap entry — its most recent improving push, carrying the global
push counter as tiebreaker. The heap's next pop is therefore the
lexicographic minimum of ``(reachability, last-push counter)`` over the
unprocessed objects that have ever been pushed, which an ``argmin`` over
two arrays computes directly. Every pop, every tiebreak, and every float
is identical to the heap walk; there is just no heap to churn, which makes
both a full walk and a replayed one mostly vectorised.

:class:`OpticsWalk` exposes the walk as a resumable object so the
incremental layer (:mod:`repro.clustering.incremental`) can *replay*
verified positions of an earlier ordering (:meth:`OpticsWalk.splice`,
:meth:`OpticsWalk.splice_segment`), take over live exactly where the old
and new walks diverge (:meth:`OpticsWalk.step`), and record the **push
trace** — per ordering position, the ``(targets, values)`` reachability
improvements that position pushed — which is what makes replay
verifiable. :func:`run_optics` remains the one-shot entry point and is
bit-identical to the historical implementation (same pops, same
tiebreakers, same floats).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .reachability import ReachabilityPlot

__all__ = ["OpticsWalk", "PushBatch", "run_optics"]

#: One ordering position's recorded pushes: ``(targets, values)`` arrays,
#: in ascending target order (the order the expansion emits them).
PushBatch = tuple[np.ndarray, np.ndarray]

_EMPTY_IDX = np.empty(0, dtype=np.int64)
_EMPTY_VAL = np.empty(0, dtype=np.float64)

#: The shared "no pushes" batch.
EMPTY_PUSHES: PushBatch = (_EMPTY_IDX, _EMPTY_VAL)


class OpticsWalk:
    """A resumable OPTICS priority-queue walk.

    The walk owns the full algorithm state: the processed flags, the
    per-object best reachability, the per-object counter of its last
    improving push (the pop tiebreaker), and the ordering built so far.
    :meth:`run` drives it to completion exactly like the classical loop;
    :meth:`step` performs a single expansion so a caller can interleave
    its own checks (the incremental repair's divergence tracking);
    :meth:`splice` replays one already-verified position of an earlier
    walk, and :meth:`splice_segment` replays a whole run of them in a
    handful of vector operations.

    Args:
        num_objects: how many objects to order.
        distances_from: maps an object id to its distance vector to *all*
            objects (self-distance at its own index, typically 0).
        core_distance: maps ``(object id, its distance vector)`` to the
            object's core distance, or ``inf`` if it is not a core object.
        eps: generating distance; neighbours farther than this never have
            their reachability updated.
        record_trace: when true, every expansion's pushes are recorded in
            :attr:`trace` (needed to make a later incremental repair of
            this ordering verifiable).
    """

    def __init__(
        self,
        num_objects: int,
        distances_from: Callable[[int], np.ndarray],
        core_distance: Callable[[int, np.ndarray], float],
        eps: float = np.inf,
        record_trace: bool = False,
    ) -> None:
        if num_objects <= 0:
            raise ValueError("cannot order zero objects")
        self._num = int(num_objects)
        self._distances_from = distances_from
        self._core_distance = core_distance
        self._eps = float(eps)
        self.processed = np.zeros(self._num, dtype=bool)
        self.reach_by_obj = np.full(self._num, np.inf)
        self.core_by_obj = np.full(self._num, np.inf)
        #: Counter of each object's most recent improving push; -1 means
        #: never pushed. The pop rule is ``argmin (reach, counter)`` over
        #: unprocessed pushed objects — exactly a lazy-deletion heap's
        #: next non-stale pop.
        self.counter_by_obj = np.full(self._num, -1, dtype=np.int64)
        self._ordering = np.empty(self._num, dtype=np.int64)
        self._reach_in_order = np.empty(self._num, dtype=np.float64)
        self._placed = 0
        #: Per ordering position, the pushes that expansion made (only
        #: populated when ``record_trace`` is set).
        self.trace: list[PushBatch] | None = [] if record_trace else None
        self._counter = 0  # global push counter (heap tiebreaker)
        self._next_start = 0  # lowest id that may still open a component

    @property
    def num_objects(self) -> int:
        """How many objects this walk orders."""
        return self._num

    @property
    def ordering(self) -> np.ndarray:
        """The ordering built so far (a view, grows as the walk runs)."""
        return self._ordering[: self._placed]

    @property
    def reach_in_order(self) -> np.ndarray:
        """Reachability bars aligned with :attr:`ordering`."""
        return self._reach_in_order[: self._placed]

    @property
    def position(self) -> int:
        """How many objects have been placed so far."""
        return self._placed

    def done(self) -> bool:
        """Whether every object has been placed in the ordering."""
        return self._placed >= self._num

    # ------------------------------------------------------------------
    # Core moves
    # ------------------------------------------------------------------
    def _place(self, obj: int, reach: float) -> None:
        self.processed[obj] = True
        self._ordering[self._placed] = obj
        self._reach_in_order[self._placed] = reach
        self._placed += 1

    def _expand(self, obj: int) -> None:
        """Mark ``obj`` processed and push reachability updates from it."""
        self._place(obj, float(self.reach_by_obj[obj]))
        dists = self._distances_from(obj)
        core = self._core_distance(obj, dists)
        self.core_by_obj[obj] = core
        if np.isfinite(core):
            new_reach = np.maximum(dists, core)
            improved = np.flatnonzero(
                ~self.processed
                & (dists <= self._eps)
                & (new_reach < self.reach_by_obj)
            )
            if improved.size:
                values = new_reach[improved]
                self.reach_by_obj[improved] = values
                # Counters advance one per push, in ascending target
                # order — the order the classical loop's heappushes
                # happen in.
                self.counter_by_obj[improved] = self._counter + np.arange(
                    1, improved.size + 1
                )
                self._counter += int(improved.size)
                if self.trace is not None:
                    self.trace.append((improved, values.copy()))
                return
        if self.trace is not None:
            self.trace.append(EMPTY_PUSHES)

    def _pop(self) -> int:
        """The object a lazy-deletion heap would pop next, or -1.

        Among unprocessed objects that have been pushed, the one with the
        smallest ``(reachability, last-push counter)``; -1 when no pushed
        object remains (heap exhausted → a new component opens).
        """
        eligible = ~self.processed & (self.counter_by_obj >= 0)
        if not eligible.any():
            return -1
        reach = np.where(eligible, self.reach_by_obj, np.inf)
        best = reach.min()
        if not np.isfinite(best):  # pragma: no cover - pushes are finite
            return -1
        ties = np.flatnonzero(reach == best)
        if ties.size == 1:
            return int(ties[0])
        return int(ties[np.argmin(self.counter_by_obj[ties])])

    def peek_pop(self) -> int:
        """What :meth:`step` would pop next, without performing it.

        The incremental repair uses this to *verify* a replayed pop:
        because the walk's reachabilities and push counters are exactly
        the live algorithm's, the peek is the ground truth for which
        object a from-scratch walk would expand at this position.
        """
        return self._pop()

    def step(self) -> int:
        """Perform exactly one expansion and return the expanded object.

        When no pushed object is waiting, the lowest unprocessed id opens
        the next component at infinite reachability — together exactly
        the classical loop's order of operations, one expansion at a
        time.
        """
        if self.done():
            raise RuntimeError("walk already complete")
        obj = self._pop()
        if obj < 0:
            while self.processed[self._next_start]:
                self._next_start += 1
            obj = self._next_start
        self._expand(obj)
        return obj

    def splice(
        self,
        obj: int,
        reach: float,
        core: float,
        targets: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Replay one verified position of an earlier walk.

        The caller certifies (see the equivalence argument in
        ``docs/CLUSTERING.md``) that a live walk at this position would
        expand exactly ``obj`` with reachability ``reach``, core distance
        ``core``, and exactly these pushes — so the expansion is applied
        to the walk state without recomputing distances or cores.
        Counters advance per push as in a live expansion, which keeps
        every later tiebreak identical to the walk being replayed.
        """
        self._place(int(obj), float(reach))
        self.core_by_obj[obj] = core
        if targets.size:
            self.reach_by_obj[targets] = values
            self.counter_by_obj[targets] = self._counter + np.arange(
                1, targets.size + 1
            )
            self._counter += int(targets.size)
        if self.trace is not None:
            self.trace.append((targets, values))

    def splice_segment(
        self,
        objs: np.ndarray,
        reaches: np.ndarray,
        cores: np.ndarray,
        targets: np.ndarray,
        values: np.ndarray,
        batches: list[PushBatch] | None = None,
    ) -> None:
        """Replay a verified run of positions in bulk.

        ``targets``/``values`` concatenate the pushes of every replayed
        position in chronological order (ascending position; ascending
        target within a position). Reachability values per target only
        ever decrease, so fancy assignment — which applies duplicate
        indices left to right — lands each target on its *last* push of
        the segment, exactly the state a push-by-push replay would reach;
        the same argument covers the counters.

        Args:
            objs: the expanded objects, in position order.
            reaches: their reachability bars.
            cores: their core distances (aligned with ``objs``).
            targets: concatenated push targets of the whole segment.
            values: concatenated push values, aligned with ``targets``.
            batches: per-position push batches, required (and only used)
                when the walk records a trace.
        """
        count = int(objs.size)
        if count == 0:
            return
        self.processed[objs] = True
        self._ordering[self._placed : self._placed + count] = objs
        self._reach_in_order[self._placed : self._placed + count] = reaches
        self._placed += count
        self.core_by_obj[objs] = cores
        if targets.size:
            self.reach_by_obj[targets] = values
            self.counter_by_obj[targets] = self._counter + np.arange(
                1, targets.size + 1
            )
            self._counter += int(targets.size)
        if self.trace is not None:
            if batches is None or len(batches) != count:
                raise ValueError(
                    "splice_segment on a tracing walk needs one push "
                    "batch per replayed position"
                )
            self.trace.extend(batches)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self) -> ReachabilityPlot:
        """Drive the walk to completion and return the finished plot."""
        while not self.done():
            self.step()
        return self.plot()

    def plot(self) -> ReachabilityPlot:
        """The (finished) walk as a :class:`ReachabilityPlot`."""
        return ReachabilityPlot(
            ordering=self._ordering[: self._placed].copy(),
            reachability=self._reach_in_order[: self._placed].copy(),
            core_distances=self.core_by_obj,
        )


def run_optics(
    num_objects: int,
    distances_from: Callable[[int], np.ndarray],
    core_distance: Callable[[int, np.ndarray], float],
    eps: float = np.inf,
) -> ReachabilityPlot:
    """Compute an OPTICS cluster ordering.

    Args:
        num_objects: how many objects to order.
        distances_from: maps an object id to its distance vector to *all*
            objects (self-distance at its own index, typically 0).
        core_distance: maps ``(object id, its distance vector)`` to the
            object's core distance, or ``inf`` if it is not a core object.
        eps: generating distance; neighbours farther than this never have
            their reachability updated. ``inf`` (the default used by the
            evaluation) yields the complete hierarchical ordering.

    Returns:
        The finished :class:`~repro.clustering.reachability.ReachabilityPlot`.
    """
    return OpticsWalk(num_objects, distances_from, core_distance, eps=eps).run()
