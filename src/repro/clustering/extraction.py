"""Automatic cluster extraction from reachability plots.

The paper extracts clusters from the OPTICS output "using a modified
version of an automatic method developed in [16]" (Sander et al. 2003:
significant local maxima of the reachability plot are split points of a
cluster tree). This module provides that extractor plus two simpler ones
used by the evaluation and the tests:

* :func:`clusters_at_threshold` — a single horizontal cut: maximal runs of
  positions whose reachability stays below the threshold (each position
  with a higher bar starts the next group and belongs to it).
* :func:`extract_cluster_tree` — the [16]-style recursive split at
  *significant* local maxima: a maximum splits its region only if both
  sides are large enough (``min_size``) and noticeably denser than the
  separating bar (average interior reachability below
  ``significance · bar``).
* :func:`extract_candidates` — a quantile sweep of horizontal cuts,
  returning every distinct cluster span seen at any level. Together with
  per-class best-match scoring this evaluates the whole hierarchy, the way
  hierarchical F-scores are usually computed (Larsen & Aone 1999).

All extractors operate on a plain reachability array (either a bubble plot
or an expanded per-point plot) and return ``(start, end)`` spans over the
ordering; :func:`labels_from_spans` and :func:`majority_bubble_labels`
convert spans into flat labels.
"""

from __future__ import annotations

import numpy as np

from ..types import NOISE_LABEL
from .cluster_tree import ClusterNode, ClusterTree
from .reachability import ExpandedPlot

__all__ = [
    "clusters_at_threshold",
    "extract_cluster_tree",
    "extract_candidates",
    "labels_from_spans",
    "majority_bubble_labels",
    "local_maxima",
]

Span = tuple[int, int]


def clusters_at_threshold(
    reachability: np.ndarray, threshold: float, min_size: int = 1
) -> list[Span]:
    """Clusters from one horizontal cut of the plot.

    A position whose reachability exceeds the threshold is only reachable
    from what precedes it at more than the threshold, so it *starts* a new
    group (and is part of it — its bar is its distance backwards, not a
    property of the point itself). Groups shorter than ``min_size`` are
    noise at this resolution and dropped.
    """
    reachability = np.asarray(reachability, dtype=np.float64)
    num = reachability.shape[0]
    if num == 0:
        return []
    breaks = np.flatnonzero(reachability > threshold)
    starts = np.concatenate(([0], breaks)) if breaks.size == 0 or breaks[0] != 0 else breaks
    starts = np.unique(starts)
    ends = np.concatenate((starts[1:], [num]))
    return [
        (int(s), int(e)) for s, e in zip(starts, ends) if e - s >= min_size
    ]


def local_maxima(reachability: np.ndarray) -> list[int]:
    """Positions that are local maxima of the plot (possible split points).

    Position 0 is excluded — its (infinite) bar opens the region rather
    than splitting it. Plateaus contribute exactly one position (their last
    entry, the one whose right neighbour is strictly lower).
    """
    reachability = np.asarray(reachability, dtype=np.float64)
    num = reachability.shape[0]
    if num < 2:
        return []
    here = reachability[1:]
    left = reachability[:-1]
    right = np.concatenate((reachability[2:], [-np.inf]))
    mask = (here >= left) & (here > right)
    return (np.flatnonzero(mask) + 1).tolist()


def _interior_average(reachability: np.ndarray, start: int, end: int) -> float:
    """Average finite reachability strictly inside ``(start, end)``.

    The bar at ``start`` is the separation *into* the region and is not
    part of its density; infinite bars (component starts) are ignored.
    """
    interior = reachability[start + 1 : end]
    finite = interior[np.isfinite(interior)]
    if finite.size == 0:
        return 0.0
    return float(finite.mean())


def extract_cluster_tree(
    reachability: np.ndarray,
    min_size: int = 5,
    significance: float = 0.75,
) -> ClusterTree:
    """Hierarchical extraction by significant local maxima (Sander et al. 2003).

    Args:
        reachability: plot heights in ordering position.
        min_size: smallest admissible cluster (both sides of a split).
        significance: a split bar is significant when the average interior
            reachability of *both* resulting regions is below
            ``significance`` times the bar (0.75 in [16]).

    Returns:
        A :class:`~repro.clustering.cluster_tree.ClusterTree` whose root
        spans the whole ordering.
    """
    reachability = np.asarray(reachability, dtype=np.float64)
    if reachability.shape[0] == 0:
        raise ValueError("cannot extract clusters from an empty plot")
    if not 0.0 < significance <= 1.0:
        raise ValueError(
            f"significance must lie in (0, 1], got {significance}"
        )
    maxima = sorted(
        local_maxima(reachability),
        key=lambda pos: (reachability[pos], pos),
    )  # ascending; pop() yields the highest bar first

    root = ClusterNode(start=0, end=int(reachability.shape[0]))
    _split_node(reachability, root, maxima, min_size, significance)
    return ClusterTree(root=root)


def _split_node(
    reachability: np.ndarray,
    node: ClusterNode,
    maxima: list[int],
    min_size: int,
    significance: float,
) -> None:
    """Recursively split ``node`` at its most significant local maximum."""
    while maxima:
        split = maxima.pop()  # highest remaining bar inside this region
        left: Span = (node.start, split)
        right: Span = (split, node.end)
        if left[1] - left[0] < min_size or right[1] - right[0] < min_size:
            continue  # one side would be noise-sized; bar is not a split
        bar = reachability[split]
        if np.isfinite(bar):
            if bar <= 0.0:
                continue
            avg_left = _interior_average(reachability, *left)
            avg_right = _interior_average(reachability, *right)
            if (
                avg_left > significance * bar
                or avg_right > significance * bar
            ):
                continue  # regions are about as sparse as the bar: no split
        left_node = ClusterNode(
            start=left[0], end=left[1], split_value=float(bar)
        )
        right_node = ClusterNode(
            start=right[0], end=right[1], split_value=float(bar)
        )
        node.children = [left_node, right_node]
        left_maxima = [m for m in maxima if left[0] < m < left[1]]
        right_maxima = [m for m in maxima if right[0] < m < right[1]]
        _split_node(reachability, left_node, left_maxima, min_size, significance)
        _split_node(
            reachability, right_node, right_maxima, min_size, significance
        )
        return


def extract_candidates(
    reachability: np.ndarray,
    min_size: int = 5,
    num_levels: int = 32,
) -> list[Span]:
    """All distinct cluster spans across a sweep of horizontal cuts.

    A horizontal cut's outcome only changes when the threshold crosses the
    height of a potential split bar (a local maximum of the plot), so the
    sweep uses exactly those heights as levels: one cut strictly below the
    lowest bar (the finest partition) and one between each pair of
    consecutive bar heights. This enumerates *every* structurally distinct
    dendrogram cut — in particular it is robust to heavily skewed plots
    where quantile levels would skip intermediate separations. When the
    plot has more than ``num_levels`` distinct bar heights, the levels are
    quantile-subsampled from them to bound cost.

    Every span produced at any level is a candidate (duplicates
    collapsed); the evaluation then lets each ground-truth cluster pick
    its best-matching candidate, which scores the whole hierarchy rather
    than one resolution.
    """
    reachability = np.asarray(reachability, dtype=np.float64)
    finite = reachability[np.isfinite(reachability)]
    if finite.size == 0:
        # Degenerate plot: every point opens its own component.
        return []
    bar_positions = local_maxima(reachability)
    heights = np.unique(
        [
            reachability[pos]
            for pos in bar_positions
            if np.isfinite(reachability[pos])
        ]
    )
    if heights.size == 0:
        # No internal structure: the whole plot is one cluster.
        return (
            [(0, int(reachability.shape[0]))]
            if reachability.shape[0] >= min_size
            else []
        )
    if heights.size > num_levels:
        quantiles = np.linspace(0.0, 1.0, num_levels)
        heights = np.unique(np.quantile(heights, quantiles))
    # One threshold below the lowest bar, one between each adjacent pair,
    # and one at the highest bar (no internal split at all).
    thresholds = np.concatenate(
        (
            [heights[0] * 0.5 if heights[0] > 0 else -1.0],
            (heights[:-1] + heights[1:]) / 2.0,
            [heights[-1]],
        )
    )
    spans: set[Span] = set()
    for threshold in thresholds:
        spans.update(
            clusters_at_threshold(reachability, float(threshold), min_size)
        )
    return sorted(spans)


def labels_from_spans(num_entries: int, spans: list[Span]) -> np.ndarray:
    """Flat labels from non-overlapping spans; unassigned entries are noise.

    Spans are numbered in the given order; overlapping spans are a caller
    error (later spans would silently overwrite earlier ones) and raise.
    """
    labels = np.full(num_entries, NOISE_LABEL, dtype=np.int64)
    for cluster_id, (start, end) in enumerate(spans):
        if start < 0 or end > num_entries or start >= end:
            raise ValueError(f"span ({start}, {end}) is out of bounds")
        if (labels[start:end] != NOISE_LABEL).any():
            raise ValueError("labels_from_spans requires disjoint spans")
        labels[start:end] = cluster_id
    return labels


def majority_bubble_labels(
    expanded: ExpandedPlot, spans: list[Span]
) -> dict[int, int]:
    """Assign each bubble the cluster owning most of its expanded entries.

    A span boundary can cut through a bubble's block of entries (the
    separation bar is the bubble's first entry); majority voting restores a
    single label per bubble, which is what the per-point evaluation needs
    (every point of a bubble inherits the bubble's label).

    Returns:
        Mapping of bubble id → cluster index (positions in ``spans``);
        bubbles whose entries are mostly outside every span map to
        :data:`~repro.types.NOISE_LABEL`.
    """
    entry_labels = labels_from_spans(len(expanded), spans)
    result: dict[int, int] = {}
    for bubble_id in np.unique(expanded.source):
        mask = expanded.source == bubble_id
        votes = entry_labels[mask]
        values, counts = np.unique(votes, return_counts=True)
        result[int(bubble_id)] = int(values[np.argmax(counts)])
    return result
