"""OPTICS over raw points (Ankerst et al. 1999).

The reference hierarchical clustering algorithm of the paper: "hierarchical
clustering algorithms like the Single-Link method or OPTICS compute a
representation of the possible hierarchical clustering structure ... in the
form of a dendrogram or a reachability plot". This is the point-level
version, used on full (small) databases and as the ground-truth generator
in tests; production-scale runs go through the bubble version in
:mod:`repro.clustering.bubble_optics`, which is the entire point of data
summarization.

Complexity is O(n²) distance work without an index structure; the paper's
databases are clustered through bubbles precisely to avoid this cost on the
raw points.
"""

from __future__ import annotations

import numpy as np

from ..types import PointMatrix
from .engine import run_optics
from .reachability import ReachabilityPlot

__all__ = ["PointOptics"]


class PointOptics:
    """OPTICS configured for raw point matrices.

    Args:
        min_pts: the MinPts smoothing parameter; an object's core distance
            is the distance to its ``min_pts``-th closest point, counting
            the point itself (the usual convention).
        eps: generating distance; ``inf`` for the complete ordering.

    Example:
        >>> rng = np.random.default_rng(0)
        >>> points = rng.normal(size=(100, 2))
        >>> plot = PointOptics(min_pts=5).fit(points)
        >>> len(plot)
        100
    """

    def __init__(self, min_pts: int = 5, eps: float = np.inf) -> None:
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self._min_pts = int(min_pts)
        self._eps = float(eps)

    @property
    def min_pts(self) -> int:
        """The MinPts parameter."""
        return self._min_pts

    @property
    def eps(self) -> float:
        """The generating distance."""
        return self._eps

    def fit(self, points: PointMatrix) -> ReachabilityPlot:
        """Order ``points`` and return their reachability plot."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty (n, d) matrix, got shape {points.shape}"
            )
        num = points.shape[0]
        sq_norms = np.einsum("ij,ij->i", points, points)
        min_pts = self._min_pts
        eps = self._eps

        def distances_from(obj: int) -> np.ndarray:
            sq = sq_norms + sq_norms[obj] - 2.0 * (points @ points[obj])
            np.maximum(sq, 0.0, out=sq)
            return np.sqrt(sq)

        def core_distance(obj: int, dists: np.ndarray) -> float:
            within = dists[dists <= eps]
            if within.size < min_pts:
                return np.inf
            # k-th smallest distance, self (0) included.
            return float(np.partition(within, min_pts - 1)[min_pts - 1])

        return run_optics(num, distances_from, core_distance, eps=eps)
