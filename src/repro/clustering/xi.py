"""ξ-method cluster extraction (Ankerst et al. 1999, Section 4.3).

The original OPTICS paper extracts clusters from a reachability plot by
locating ξ-steep areas: a *steep-down* area is a maximal region where the
plot repeatedly falls by a factor of at least ``1 - ξ`` per step; a
*steep-up* area rises correspondingly. A cluster is a pair (steep-down
start, steep-up end) whose interior is at least ``min_size`` wide and
whose boundary reachabilities dominate the interior.

This is the third extractor of the library (next to the threshold sweep
and the Sander cluster tree) and the one most faithful to the original
OPTICS publication; the evaluation harness uses the candidate sweep, but
the ξ-method is exposed for users who want sklearn-comparable semantics
and it is cross-checked against the other extractors in the tests.

The implementation follows the published algorithm including the
*maximum-in-between* (mib) filtering that discards steep-down areas
invalidated by higher intervening bars; the predecessor-correction
refinement of later implementations is intentionally out of scope (the
paper under reproduction predates it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["XiCluster", "extract_xi"]


@dataclass(frozen=True)
class XiCluster:
    """One ξ-cluster: a span of ordering positions.

    Attributes:
        start: first position of the cluster (inclusive).
        end: one past the last position (exclusive).
    """

    start: int
    end: int

    @property
    def size(self) -> int:
        """Number of ordering positions covered."""
        return self.end - self.start

    def span(self) -> tuple[int, int]:
        """The ``(start, end)`` pair."""
        return (self.start, self.end)


def _steep_down(reach: np.ndarray, pos: int, xi: float) -> bool:
    """Whether position ``pos`` starts a ξ-steep downward step."""
    return reach[pos] * (1.0 - xi) >= reach[pos + 1]


def _steep_up(reach: np.ndarray, pos: int, xi: float) -> bool:
    """Whether position ``pos`` starts a ξ-steep upward step."""
    return reach[pos] <= reach[pos + 1] * (1.0 - xi)


def _steep_areas(
    reach: np.ndarray, xi: float, direction: str, min_pts: int
) -> list[tuple[int, int]]:
    """Maximal ξ-steep areas ``[start, end]`` in the given direction.

    Within a steep area every point is non-increasing (down) or
    non-decreasing (up), at least one in every ``min_pts`` consecutive
    points is ξ-steep, and the area cannot be extended.
    """
    num = reach.shape[0]
    is_steep = (
        (lambda p: _steep_down(reach, p, xi))
        if direction == "down"
        else (lambda p: _steep_up(reach, p, xi))
    )
    monotone_ok = (
        (lambda p: reach[p + 1] <= reach[p])
        if direction == "down"
        else (lambda p: reach[p + 1] >= reach[p])
    )
    areas: list[tuple[int, int]] = []
    pos = 0
    while pos < num - 1:
        if not is_steep(pos):
            pos += 1
            continue
        start = pos
        end = pos
        flat_run = 0
        probe = pos + 1
        while probe < num - 1:
            if not monotone_ok(probe):
                break
            if is_steep(probe):
                end = probe
                flat_run = 0
            else:
                flat_run += 1
                if flat_run >= min_pts:
                    break
            probe += 1
        areas.append((start, end))
        pos = end + 1
    return areas


def extract_xi(
    reachability: np.ndarray,
    xi: float = 0.05,
    min_size: int = 5,
    min_pts: int = 5,
) -> list[XiCluster]:
    """Extract ξ-clusters from a reachability plot.

    Args:
        reachability: plot heights in ordering position (``inf`` allowed;
            treated as a very high bar).
        xi: steepness parameter in ``(0, 1)``; smaller finds more,
            shallower clusters.
        min_size: minimum cluster width in positions.
        min_pts: maximum number of consecutive non-steep points inside a
            steep area (the OPTICS paper reuses MinPts here).

    Returns:
        Clusters sorted by ``(start, end)``; nested clusters are all
        reported (the ξ hierarchy), like the cluster-tree extractor.
    """
    if not 0.0 < xi < 1.0:
        raise ValueError(f"xi must lie in (0, 1), got {xi}")
    reach = np.asarray(reachability, dtype=np.float64).copy()
    num = reach.shape[0]
    if num == 0:
        return []
    # Replace inf with a huge finite bar so ratio tests stay defined, and
    # append one sentinel bar so a valley running to the end of the plot
    # still has a closing steep-up area (end-of-plot is a boundary).
    finite = reach[np.isfinite(reach)]
    ceiling = (finite.max() * 2.0 + 1.0) if finite.size else 1.0
    reach[~np.isfinite(reach)] = ceiling
    reach = np.append(reach, ceiling)

    downs = _steep_areas(reach, xi, "down", min_pts)
    ups = _steep_areas(reach, xi, "up", min_pts)

    clusters: set[tuple[int, int]] = set()
    # Walk steep-up areas in order; for each, pair with every preceding
    # steep-down area that survives the mib (maximum-in-between) test.
    for up_start, up_end in ups:
        boundary = up_end + 1
        up_reach = (
            reach[boundary] if boundary < reach.shape[0] else reach[up_end]
        )
        for down_start, down_end in downs:
            if down_end >= up_start:
                continue
            # mib: the maximum between the areas must not exceed either
            # boundary height (otherwise a higher bar separates them).
            interior = reach[down_end + 1 : up_start + 1]
            mib = float(interior.max()) if interior.size else 0.0
            sd_reach = reach[down_start]
            if mib > min(sd_reach, up_reach) * (1.0 - xi) and not np.isclose(
                mib, 0.0
            ):
                if mib > min(sd_reach, up_reach):
                    continue
            # Cluster boundary refinement (condition sc2* of the paper):
            # trim the side whose boundary is higher.
            if sd_reach * (1.0 - xi) >= up_reach:
                # down side much higher: shrink start to the first point
                # below the up boundary.
                candidates = np.flatnonzero(
                    reach[down_start : down_end + 1] <= up_reach
                )
                start = (
                    down_start + int(candidates[0])
                    if candidates.size
                    else down_start
                )
                end = up_end
            elif up_reach * (1.0 - xi) >= sd_reach:
                candidates = np.flatnonzero(
                    reach[up_start : up_end + 2] <= sd_reach
                )
                end = (
                    up_start + int(candidates[-1])
                    if candidates.size
                    else up_end
                )
                start = down_start
            else:
                start, end = down_start, up_end
            # The cluster body excludes the closing steep-up edge's last
            # rise; report [start, end+1) in span convention, clamped to
            # the real plot (the sentinel bar is not a position).
            span = (start, min(end + 1, num))
            if span == (0, num):
                continue  # the trivial all-spanning cluster carries no info
            if span[1] - span[0] >= min_size:
                clusters.add(span)
    return [XiCluster(start=s, end=e) for s, e in sorted(clusters)]
