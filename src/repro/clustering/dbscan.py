"""DBSCAN (Ester et al. 1996) — reference density-based substrate.

The paper's related work rests on DBSCAN (IncrementalDBSCAN [10] is the
closest direct-restructuring competitor, and OPTICS generalises DBSCAN's
density notion). A standalone DBSCAN is included as a substrate: the tests
use it to cross-check OPTICS (a horizontal cut of an OPTICS plot at ``eps``
recovers DBSCAN's density-connected components, up to border-point
ambiguity), and the examples use it as the "flat clustering" endpoint.

The implementation is the textbook breadth-first expansion with an O(n²)
neighbourhood computation — appropriate for the library's usage (small
point sets and bubble sets; large databases are summarized first).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..types import NOISE_LABEL, PointMatrix

__all__ = ["DBSCAN"]


class DBSCAN:
    """Density-based flat clustering.

    Args:
        eps: neighbourhood radius.
        min_pts: minimum number of points (self included) within ``eps``
            for a point to be a core point.

    Example:
        >>> rng = np.random.default_rng(0)
        >>> blob = rng.normal(size=(50, 2)) * 0.1
        >>> labels = DBSCAN(eps=0.5, min_pts=5).fit(blob)
        >>> int(labels.max())
        0
    """

    def __init__(self, eps: float, min_pts: int = 5) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        self._eps = float(eps)
        self._min_pts = int(min_pts)

    @property
    def eps(self) -> float:
        """The neighbourhood radius."""
        return self._eps

    @property
    def min_pts(self) -> int:
        """The core-point density threshold."""
        return self._min_pts

    def fit(self, points: PointMatrix) -> np.ndarray:
        """Cluster ``points``; returns labels with ``-1`` for noise."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"expected (n, d) points, got shape {points.shape}")
        num = points.shape[0]
        labels = np.full(num, NOISE_LABEL, dtype=np.int64)
        if num == 0:
            return labels

        sq_norms = np.einsum("ij,ij->i", points, points)
        eps_sq = self._eps * self._eps

        def neighbours(idx: int) -> np.ndarray:
            sq = sq_norms + sq_norms[idx] - 2.0 * (points @ points[idx])
            return np.flatnonzero(sq <= eps_sq)

        visited = np.zeros(num, dtype=bool)
        next_label = 0
        for start in range(num):
            if visited[start]:
                continue
            visited[start] = True
            seeds = neighbours(start)
            if seeds.size < self._min_pts:
                continue  # noise for now; may be claimed as a border point
            labels[start] = next_label
            queue = deque(int(i) for i in seeds if i != start)
            while queue:
                idx = queue.popleft()
                if labels[idx] == NOISE_LABEL:
                    labels[idx] = next_label  # border or newly reached core
                if visited[idx]:
                    continue
                visited[idx] = True
                expansion = neighbours(idx)
                if expansion.size >= self._min_pts:
                    queue.extend(
                        int(i) for i in expansion if not visited[i]
                    )
            next_label += 1
        return labels
