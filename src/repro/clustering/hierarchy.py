"""Utilities over extracted cluster trees.

The cluster tree of :func:`~repro.clustering.extraction.extract_cluster_tree`
is the library's hierarchical result object; these helpers turn it into
the artifacts users actually consume:

* :func:`labels_at_depth` — a flat labelling from cutting the tree at a
  given depth (depth 1 = the root's children);
* :func:`leaf_labels` — the finest flat labelling (every leaf a cluster);
* :func:`render_tree` — an ASCII rendering of the nested structure with
  sizes and split heights, the terminal counterpart of a dendrogram.

All labellings are in *ordering positions* (the coordinate system of the
reachability plot); combine with
:func:`~repro.clustering.extraction.majority_bubble_labels` or the
ordering array to reach bubble ids or point ids.
"""

from __future__ import annotations

import numpy as np

from ..types import NOISE_LABEL
from .cluster_tree import ClusterNode, ClusterTree

__all__ = ["labels_at_depth", "leaf_labels", "render_tree"]


def labels_at_depth(tree: ClusterTree, depth: int) -> np.ndarray:
    """Flat labels from cutting the tree ``depth`` levels below the root.

    Depth 1 labels each child of the root as one cluster; nodes that are
    leaves above the requested depth keep their (coarser) span. Depth 0 is
    rejected — it would be the all-spanning root, which carries no
    grouping.

    Returns:
        Labels per ordering position; with a childless root, everything
        belongs to cluster 0 (the database is one cluster at this
        resolution).
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    size = tree.root.end - tree.root.start
    labels = np.full(size, NOISE_LABEL, dtype=np.int64)

    clusters: list[ClusterNode] = []

    def collect(node: ClusterNode, level: int) -> None:
        if level == depth or node.is_leaf():
            clusters.append(node)
            return
        for child in node.children:
            collect(child, level + 1)

    if tree.root.is_leaf():
        clusters.append(tree.root)
    else:
        for child in tree.root.children:
            collect(child, 1)
    for label, node in enumerate(clusters):
        labels[node.start - tree.root.start : node.end - tree.root.start] = (
            label
        )
    return labels


def leaf_labels(tree: ClusterTree) -> np.ndarray:
    """Flat labels from the tree's leaves (the finest resolution)."""
    size = tree.root.end - tree.root.start
    labels = np.full(size, NOISE_LABEL, dtype=np.int64)
    for label, leaf in enumerate(tree.leaves()):
        labels[leaf.start - tree.root.start : leaf.end - tree.root.start] = (
            label
        )
    return labels


def render_tree(tree: ClusterTree) -> str:
    """ASCII rendering of the nested cluster structure.

    Each line shows the span, its size, and the reachability height that
    separated it from its sibling context — a textual dendrogram::

        [0, 4300)  n=4300
        ├── [0, 1564)  n=1564  split@10.2
        │   ├── [0, 773)  n=773  split@5.1
        │   └── [773, 1564)  n=791  split@5.1
        └── [1564, 4300)  n=2736  split@10.2
    """

    lines: list[str] = []

    def describe(node: ClusterNode) -> str:
        split = (
            f"  split@{node.split_value:.4g}"
            if np.isfinite(node.split_value)
            else ""
        )
        return f"[{node.start}, {node.end})  n={node.size}{split}"

    def walk(node: ClusterNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(describe(node))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + describe(node))
            child_prefix = prefix + ("    " if is_last else "│   ")
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1, False)

    walk(tree.root, "", True, True)
    return "\n".join(lines)
