"""Incremental, anytime OPTICS over data bubbles.

The paper makes *summarization* incremental; this module makes the
*clustering on top of it* incremental too. Three pieces:

**ClusterCache** — derived clustering state keyed on
:attr:`BubbleSet.version <repro.core.bubble_set.BubbleSet.version>` (the
same contract as :class:`~repro.core.assignment.AssignerCache`): the
bubble feature arrays, the K×K bubble distance matrix, the core-distance
vector, and the last reachability plot *with its push trace*. A batch
that touched ``T`` of ``K`` bubbles (absorb/release/reseed/split/merge —
surfaced by :meth:`BubbleSet.touched_since
<repro.core.bubble_set.BubbleSet.touched_since>` and by maintainer batch
callbacks) invalidates exactly the ``T`` rows and columns: repaired rows
are bit-identical to a cold rebuild (see
:func:`~repro.clustering.bubble_optics.bubble_distance_rows`), repaired
core distances equal the from-scratch weighted computation float for
float, and the repaired plot equals a from-scratch
:func:`~repro.clustering.engine.run_optics` **exactly** — same ordering,
same reachability floats, same cores, same trace.

**Reachability repair** — the new walk replays the previous ordering
while tracking the *divergence set* ``D``: the unprocessed bubbles whose
distance column changed (touched) or whose current reachability differs
from the old walk's at the same point. A position splices when its
expander is clean and its reachability bar beats every diverged
reachability (so the pop is forced); its recorded pushes replay verbatim
to non-diverged targets, while pushes into ``D`` are recomputed from the
repaired matrix — push values depend only on the (expander, target)
pair, so this is exact, and a diverged target whose reachability returns
to the recorded value *heals* out of ``D``. When a pop cannot be forced
the walk goes live — the live walk *is* the from-scratch algorithm — and
splicing resumes once the processed sets realign. Every replayed pop is
*verified* against the walk's own pop rule: the replay advances the same
push counters a live walk would, so :meth:`OpticsWalk.peek_pop` is
ground truth for the next expansion, heap tiebreaks included. Bulk
segment replay additionally checks a small *suspect* set — columns whose
last push may sit at a different position than in the old walk — for
reachability ties against the segment's bars. Worst case the repair
walks everything and is still exact.

**Anytime mode** — ``fit(deadline_seconds=...)`` clusters nested subsets
of the bubbles (largest point counts first), yielding a valid — coarse —
:class:`~repro.clustering.cluster_tree.ClusterTree` after the first
stage and refining while the deadline allows. Quality (the fraction of
summarized points covered by the clustered subset) is monotone over
stages by construction. The clock is injectable, which makes deadline
behaviour deterministic under test.

**ClusterLineage** — vineyard-style tracking of leaf clusters across
fits: clusters are matched by shared summarized points, and ``born`` /
``died`` / ``drifted`` events record how the hierarchy deforms as the
window slides.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.bubble_set import BubbleSet
from ..geometry.counting import DistanceCounter
from ..observability.spans import maybe_span
from .bubble_optics import _nn_dist_arrays, bubble_distance_rows
from .cluster_tree import ClusterNode, ClusterTree
from .engine import OpticsWalk, PushBatch
from .extraction import extract_cluster_tree
from .reachability import ExpandedPlot, ReachabilityPlot

__all__ = [
    "ClusterCache",
    "ClusterFit",
    "ClusterLineage",
    "IncrementalClusterer",
    "LineageEvent",
    "StageResult",
]

_EMPTY_POSITIONS = np.empty(0, dtype=np.int64)


# ----------------------------------------------------------------------
# Weighted core distances, many rows at once (satellite: hoist the
# per-object sort work into the version-keyed cache's vectorised kernel)
# ----------------------------------------------------------------------
def _weighted_cores(
    rows: np.ndarray, counts: np.ndarray, min_pts: int, eps: float
) -> np.ndarray:
    """Weighted core distances for a batch of distance rows.

    Float-for-float equal to the per-object computation in
    :func:`~repro.clustering.bubble_optics.optics_over_summaries`: the
    core distance is the row value at which the cumulative point count
    (ascending by distance) first reaches ``min_pts``. That *value* is
    invariant to how equal distances are ordered — the cumulative count
    crossing lands inside an equal-value block wherever its members sit —
    so an ``argpartition`` head (grown geometrically for rows whose head
    does not yet hold ``min_pts`` points) computes the same float as the
    reference's full stable argsort. Beyond-``eps`` entries are masked to
    ``inf``: they sort last, and a crossing that lands on one reproduces
    the reference's "never reached within eps → inf".
    """
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim == 1:
        rows = rows[None, :]
    num_rows, num_cols = rows.shape
    result = np.full(num_rows, np.inf)
    if num_rows == 0 or num_cols == 0:
        return result
    vals = rows if np.isinf(eps) else np.where(rows <= eps, rows, np.inf)
    pending = np.arange(num_rows)
    head = min(32, num_cols)
    while True:
        sub = vals[pending]
        if head < num_cols:
            part = np.argpartition(sub, head - 1, axis=1)[:, :head]
            head_vals = np.take_along_axis(sub, part, axis=1)
            order = np.argsort(head_vals, axis=1, kind="stable")
            svals = np.take_along_axis(head_vals, order, axis=1)
            scols = np.take_along_axis(part, order, axis=1)
        else:
            order = np.argsort(sub, axis=1, kind="stable")
            svals = np.take_along_axis(sub, order, axis=1)
            scols = order
        crossed = np.cumsum(counts[scols], axis=1) >= min_pts
        has = crossed.any(axis=1)
        done = np.flatnonzero(has)
        if done.size:
            first = np.argmax(crossed[done], axis=1)
            result[pending[done]] = svals[done, first]
        if head >= num_cols:
            return result  # rows that never cross stay inf
        pending = pending[~has]
        if pending.size == 0:
            return result
        head = min(head * 4, num_cols)


def _flatten_trace(
    trace: list[PushBatch],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate a push trace into flat arrays plus offsets.

    Returns ``(targets, values, offsets)``: position ``p``'s pushes are
    ``targets[offsets[p]:offsets[p+1]]`` (and the matching values),
    which lets the repair replay or window the old walk's pushes with
    array slices instead of per-batch Python loops.
    """
    lens = np.fromiter(
        (batch[0].size for batch in trace), dtype=np.int64, count=len(trace)
    )
    offsets = np.zeros(len(trace) + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    if offsets[-1]:
        targets = np.concatenate([b[0] for b in trace if b[0].size])
        values = np.concatenate([b[1] for b in trace if b[1].size])
    else:
        targets = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
    return targets, values, offsets


def _sanitize_extent(extent: float) -> float:
    """Clamp a degenerate extent exactly like ``optics_over_summaries``."""
    return extent if np.isfinite(extent) and extent > 0.0 else 0.0


def _sanitize_internal_core(value: float) -> float:
    """NaN/negative internal cores clamp to 0; ``inf`` stays meaningful."""
    if np.isnan(value) or value < 0.0:
        return 0.0
    return value


# ----------------------------------------------------------------------
# Cached state
# ----------------------------------------------------------------------
class _CacheState:
    """Everything derived from one ``(BubbleSet.version, id set)``."""

    __slots__ = (
        "version",
        "bubble_ids",
        "id_to_compact",
        "reps",
        "extents",
        "counts",
        "internal_core",
        "nn1",
        "dist",
        "cores",
        "plot",
        "trace",
        "push_idx",
        "push_val",
        "push_off",
        "virtual",
        "tree",
    )

    def __init__(self) -> None:
        self.version: int = -1
        self.bubble_ids = np.empty(0, dtype=np.int64)
        self.id_to_compact: dict[int, int] = {}
        self.reps = np.empty((0, 0))
        self.extents = np.empty(0)
        self.counts = np.empty(0, dtype=np.int64)
        self.internal_core = np.empty(0)
        self.nn1 = np.empty(0)
        self.dist = np.empty((0, 0))
        self.cores = np.empty(0)
        self.plot: ReachabilityPlot | None = None
        self.trace: list[PushBatch] = []
        self.push_idx = np.empty(0, dtype=np.int64)
        self.push_val = np.empty(0, dtype=np.float64)
        self.push_off = np.zeros(1, dtype=np.int64)
        self.virtual = np.empty(0)
        self.tree: ClusterTree | None = None

    @property
    def num(self) -> int:
        return int(self.bubble_ids.shape[0])


@dataclass(frozen=True)
class SpliceStats:
    """How much of a repair was replayed rather than walked live."""

    spliced: int
    live: int

    @property
    def total(self) -> int:
        return self.spliced + self.live

    @property
    def spliced_fraction(self) -> float:
        return self.spliced / self.total if self.total else 1.0


class ClusterCache:
    """Version-keyed cache of the bubble clustering state.

    Mirrors the :class:`~repro.core.assignment.AssignerCache` contract:
    the key is the :attr:`BubbleSet.version` mutation counter, any
    mutation moves the version, and the refresh decides *how much* of the
    derived state that movement actually invalidates:

    * same version → **hit**: nothing recomputed, zero distances.
    * same non-empty id set → **repair**: only the touched rows/columns
      of the distance matrix, the cores they can actually affect, and the
      dirty region of the reachability ordering are recomputed.
    * different id set (bubbles inserted/retired) → **rebuild**: full
      walk, but distance entries between surviving untouched bubbles are
      reused from the old matrix (bit-identical to recomputing them).
    * no prior state → **cold**.

    Every outcome yields state *exactly* equal to a cold fit of the
    current bubbles; the cache only changes how much work that takes.

    Args:
        min_pts: MinPts in points (summed over bubbles).
        eps: generating distance over bubble distances.
        counter: optional :class:`~repro.geometry.counting.DistanceCounter`
            that receives the honest matrix-level accounting (computed
            entries per refresh, reused entries as pruned).
    """

    def __init__(
        self,
        min_pts: int = 25,
        eps: float = np.inf,
        counter: DistanceCounter | None = None,
    ) -> None:
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self._min_pts = int(min_pts)
        self._eps = float(eps)
        self._counter = counter if counter is not None else DistanceCounter()
        self._state: _CacheState | None = None
        self.hits = 0
        self.repairs = 0
        self.rebuilds = 0
        self.cold_fits = 0
        self.last_splice: SpliceStats | None = None

    @property
    def min_pts(self) -> int:
        return self._min_pts

    @property
    def eps(self) -> float:
        return self._eps

    @property
    def state(self) -> _CacheState | None:
        """The cached state (``None`` before the first refresh)."""
        return self._state

    def invalidate(self) -> None:
        """Drop the cached state entirely."""
        self._state = None

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh(
        self,
        bubbles: BubbleSet,
        extra_touched: Sequence[int] = (),
    ) -> tuple[_CacheState, str]:
        """Bring the cache up to date with ``bubbles``.

        Args:
            bubbles: the live bubble set.
            extra_touched: additional bubble ids known to have mutated
                (from maintainer batch callbacks). These are unioned with
                :meth:`BubbleSet.touched_since`, which is authoritative —
                the callbacks only ever narrow *nothing*, they are a
                second witness.

        Returns:
            ``(state, source)`` with source one of ``"hit"``,
            ``"repair"``, ``"rebuild"``, ``"cold"``.
        """
        version = bubbles.version
        state = self._state
        if state is not None and state.version == version:
            self.hits += 1
            return state, "hit"

        non_empty = np.asarray(bubbles.non_empty_ids(), dtype=np.int64)
        if (
            state is not None
            and state.plot is not None
            and np.array_equal(state.bubble_ids, non_empty)
        ):
            touched = bubbles.touched_since(state.version)
            touched.update(int(i) for i in extra_touched)
            self._repair(state, bubbles, touched)
            state.version = version
            self.repairs += 1
            return state, "repair"

        touched = (
            bubbles.touched_since(state.version)
            if state is not None
            else set()
        )
        touched.update(int(i) for i in extra_touched)
        fresh = self._rebuild(state, bubbles, non_empty, touched)
        fresh.version = version
        self._state = fresh
        if state is None:
            self.cold_fits += 1
            return fresh, "cold"
        self.rebuilds += 1
        return fresh, "rebuild"

    # ------------------------------------------------------------------
    # Feature gathering
    # ------------------------------------------------------------------
    def _refresh_features(
        self, state: _CacheState, bubbles: BubbleSet, compact: np.ndarray
    ) -> None:
        """Re-gather rep/extent/count/internal-core for ``compact`` rows."""
        for c in compact:
            bubble = bubbles[int(state.bubble_ids[c])]
            state.reps[c] = bubble.rep
            state.extents[c] = _sanitize_extent(float(bubble.extent))
            state.counts[c] = bubble.n
            state.internal_core[c] = _sanitize_internal_core(
                float(bubble.nn_dist(self._min_pts))
            )
        state.nn1[compact] = _nn_dist_arrays(
            state.counts[compact],
            state.extents[compact],
            state.reps.shape[1],
            k=1,
        )

    # ------------------------------------------------------------------
    # Rebuild (cold / id-set changed)
    # ------------------------------------------------------------------
    def _rebuild(
        self,
        old: _CacheState | None,
        bubbles: BubbleSet,
        non_empty: np.ndarray,
        touched: set[int],
    ) -> _CacheState:
        state = _CacheState()
        state.bubble_ids = non_empty
        state.id_to_compact = {
            int(bid): c for c, bid in enumerate(non_empty)
        }
        num = state.num
        if num == 0:
            state.plot = ReachabilityPlot(
                ordering=np.empty(0, dtype=np.int64),
                reachability=np.empty(0),
                core_distances=np.empty(0),
            )
            state.trace = []
            state.virtual = np.empty(0)
            return state

        state.reps = np.empty((num, bubbles.dim), dtype=np.float64)
        state.extents = np.empty(num)
        state.counts = np.empty(num, dtype=np.int64)
        state.internal_core = np.empty(num)
        state.nn1 = np.empty(num)
        self._refresh_features(state, bubbles, np.arange(num))

        # Distance matrix: reuse entries between surviving *untouched*
        # bubbles from the old matrix (bit-identical, per-pair values);
        # recompute rows for inserted and touched bubbles.
        state.dist = np.empty((num, num), dtype=np.float64)
        reuse_new = np.empty(0, dtype=np.int64)
        reuse_old = np.empty(0, dtype=np.int64)
        if old is not None and old.num > 0:
            pairs = [
                (c, old.id_to_compact[int(bid)])
                for c, bid in enumerate(non_empty)
                if int(bid) in old.id_to_compact
                and int(bid) not in touched
            ]
            if len(pairs) >= 2:
                reuse_new = np.asarray([p[0] for p in pairs], dtype=np.int64)
                reuse_old = np.asarray([p[1] for p in pairs], dtype=np.int64)
        reuse_set = set(int(c) for c in reuse_new)
        fresh_rows = np.asarray(
            [c for c in range(num) if c not in reuse_set], dtype=np.int64
        )
        if reuse_new.size:
            state.dist[np.ix_(reuse_new, reuse_new)] = old.dist[
                np.ix_(reuse_old, reuse_old)
            ]
        if fresh_rows.size:
            rows = bubble_distance_rows(
                fresh_rows, state.reps, state.extents, state.nn1
            )
            state.dist[fresh_rows, :] = rows
            state.dist[:, fresh_rows] = rows.T
        total_pairs = num * (num - 1) // 2
        reused_pairs = reuse_new.size * (reuse_new.size - 1) // 2
        self._counter.record_computed(total_pairs - reused_pairs)
        self._counter.record_pruned(reused_pairs)

        # Core distances up front: a bubble holding MinPts points is core
        # within itself; the rest go through the vectorised weighted
        # kernel over their (cached) distance rows.
        cores = np.where(
            state.counts >= self._min_pts, state.internal_core, np.inf
        )
        small = np.flatnonzero(state.counts < self._min_pts)
        if small.size:
            cores[small] = _weighted_cores(
                state.dist[small], state.counts, self._min_pts, self._eps
            )
        state.cores = cores

        walk = OpticsWalk(
            num,
            lambda obj: state.dist[obj],
            lambda obj, dists: float(cores[obj]),
            eps=self._eps,
            record_trace=True,
        )
        state.plot = walk.run()
        state.trace = walk.trace if walk.trace is not None else []
        state.push_idx, state.push_val, state.push_off = _flatten_trace(
            state.trace
        )
        state.virtual = self._virtual(state)
        return state

    # ------------------------------------------------------------------
    # Repair (same id set)
    # ------------------------------------------------------------------
    def _repair(
        self,
        state: _CacheState,
        bubbles: BubbleSet,
        touched_ids: set[int],
    ) -> None:
        num = state.num
        if num == 0:
            # An empty set stayed empty across versions: the empty plot
            # is already exact, and a walk over zero objects is illegal.
            self.last_splice = SpliceStats(spliced=0, live=0)
            return
        touched_c = np.asarray(
            sorted(
                state.id_to_compact[int(i)]
                for i in touched_ids
                if int(i) in state.id_to_compact
            ),
            dtype=np.int64,
        )
        if touched_c.size == 0:
            # Every touched bubble is outside the clustered id set (all
            # empty): the cached plot is already exact, verbatim.
            self._counter.record_pruned(num * (num - 1) // 2)
            self.last_splice = SpliceStats(spliced=num, live=0)
            return

        # Snapshot the touched columns *before* overwriting them: the
        # core relevance test below needs both the old and new values.
        old_cols = state.dist[:, touched_c].copy()
        old_cores = state.cores.copy()

        self._refresh_features(state, bubbles, touched_c)
        rows = bubble_distance_rows(
            touched_c, state.reps, state.extents, state.nn1
        )
        state.dist[touched_c, :] = rows
        state.dist[:, touched_c] = rows.T
        computed = touched_c.size * (num - touched_c.size)
        computed += touched_c.size * (touched_c.size - 1) // 2
        self._counter.record_computed(computed)
        self._counter.record_pruned(num * (num - 1) // 2 - computed)

        touched_mask = np.zeros(num, dtype=bool)
        touched_mask[touched_c] = True
        small = state.counts < self._min_pts
        # Touched rows: anything about them may have changed.
        t_big = touched_c[~small[touched_c]]
        t_small = touched_c[small[touched_c]]
        if t_big.size:
            state.cores[t_big] = state.internal_core[t_big]
        if t_small.size:
            state.cores[t_small] = _weighted_cores(
                state.dist[t_small], state.counts, self._min_pts, self._eps
            )
        # Untouched small rows: only their touched columns moved. If
        # every changed column value — old *and* new — sits strictly
        # above the old core, the (value, count) multiset up to the old
        # crossing is unchanged and the core stands; otherwise recompute.
        cand = np.flatnonzero(small & ~touched_mask)
        if cand.size:
            changed_min = np.minimum(
                old_cols[cand], state.dist[np.ix_(cand, touched_c)]
            ).min(axis=1)
            redo = cand[~(changed_min > old_cores[cand])]
            if redo.size:
                state.cores[redo] = _weighted_cores(
                    state.dist[redo], state.counts, self._min_pts, self._eps
                )

        dirty = touched_mask.copy()
        dirty |= state.cores != old_cores
        # NaN never equals itself; treat any NaN core as dirty outright.
        dirty |= np.isnan(state.cores) | np.isnan(old_cores)

        plot, trace, splice = self._repair_walk(state, dirty, touched_mask)
        state.plot = plot
        state.trace = trace
        state.push_idx, state.push_val, state.push_off = _flatten_trace(
            trace
        )
        state.virtual = self._virtual(state)
        state.tree = None
        self.last_splice = splice

    def _repair_walk(
        self,
        state: _CacheState,
        dirty: np.ndarray,
        permanent: np.ndarray,
    ) -> tuple[ReachabilityPlot, list[PushBatch], SpliceStats]:
        """Replay the previous ordering, walking live only where needed.

        ``dirty`` marks expanders whose *outgoing* pushes changed
        (touched rows or changed cores) — those positions always run
        live. ``permanent`` marks the touched bubbles themselves: their
        distance *columns* changed, so every push into them is recomputed
        from the repaired matrix for as long as they are unprocessed
        (they never heal out of the divergence set the way a merely
        diverged-reachability column does). See the module docstring and
        ``docs/CLUSTERING.md`` for the full splice-validity argument.
        The result is exactly what a cold
        :func:`~repro.clustering.engine.run_optics` would produce on the
        repaired state.
        """
        num = state.num
        assert state.plot is not None
        old_ordering = state.plot.ordering
        old_reach = state.plot.reachability
        old_trace = state.trace
        push_idx = state.push_idx
        push_val = state.push_val
        push_off = state.push_off
        cores = state.cores
        dist = state.dist
        eps = self._eps

        pos_of = np.empty(num, dtype=np.int64)
        pos_of[old_ordering] = np.arange(num)
        dirty_positions = np.sort(pos_of[np.flatnonzero(dirty)])
        dp = 0  # pointer into dirty_positions

        walk = OpticsWalk(
            num,
            lambda obj: dist[obj],
            lambda obj, dists: float(cores[obj]),
            eps=eps,
            record_trace=True,
        )

        # The old walk's reachability state, replayed position by
        # position alongside the new walk; a non-diverged column always
        # has walk.reach_by_obj equal to this.
        old_reach_state = np.full(num, np.inf)
        in_divergence = permanent.copy()
        diverged = np.flatnonzero(in_divergence)
        # Ordering position of each column's most recent push, in the old
        # walk and in the new one. Counters advance per push in ascending
        # target order within a position — in both walks — so the pop
        # tiebreak (argmin counter) between any two columns is exactly
        # the lexicographic order of ``(last-push position, column id)``.
        # That turns reachability *ties* against diverged columns from a
        # splice blocker into a direct comparison.
        old_last_push = np.full(num, -1, dtype=np.int64)
        old_last_push[push_idx] = np.repeat(
            np.arange(num), np.diff(push_off)
        )
        new_last_push = np.full(num, -1, dtype=np.int64)
        # A column is *suspect* when its latest push in the new walk may
        # have happened at a different ordering position than in the old
        # walk: every column in the divergence set (its pushes are
        # recomputed rather than replayed — touched columns from the
        # start), healed columns, and anything pushed during a live
        # burst. Counter tiebreaks are only guaranteed to replay for
        # non-suspect columns, so a splice additionally requires that no
        # suspect's reachability ties the bar(s) involved; a verbatim
        # push at the recorded position clears the mark. The divergence
        # set stays a subset of the suspect set throughout (D columns
        # are never verbatim-cleansed).
        suspect = permanent.copy()
        spliced = 0
        live = 0
        only_live: set[int] = set()
        only_old: set[int] = set()

        q = 0
        while q < num:
            e = int(old_ordering[q])
            while dp < dirty_positions.size and dirty_positions[dp] < q:
                dp += 1
            sus = np.flatnonzero(suspect & ~walk.processed)

            if not dirty[e] and not in_divergence[e]:
                # Bulk phase: a run of positions splices in a handful of
                # vector ops when, throughout the run, (a) no expander
                # is dirty or diverged, (b) no diverged column's
                # evolving reachability drops *below* a bar — it would
                # pop first; a non-diverged column's reachability equals
                # the old walk's and can therefore never be below a bar
                # the old walk popped — and (c) every reachability *tie*
                # against a bar resolves in the expander's favour by
                # last-push event order, and no non-diverged suspect
                # ties a bar. Pushes *into* diverged columns do not end
                # the run: their evolution across the run is a running
                # minimum of the would-be push values, so tests (b) and
                # (c) come out in closed form, and the few positions
                # whose pushes differ from the recorded trace get their
                # batches rewritten before the splice.
                limit = (
                    int(dirty_positions[dp])
                    if dp < dirty_positions.size
                    else num
                )
                pushed = None
                if diverged.size and limit > q:
                    limit = min(limit, q + 256)
                    exp_div = np.flatnonzero(
                        in_divergence[old_ordering[q:limit]]
                    )
                    if exp_div.size:
                        limit = q + int(exp_div[0])
                if diverged.size and limit > q:
                    # Row-0 gate: the window computation is pointless
                    # when the first row already fails the pop test,
                    # which is the common state while a diverged column
                    # with a low reachability waits to pop. The per-row
                    # masks below repeat this test for every row.
                    cur = walk.reach_by_obj[diverged]
                    bar0 = float(old_reach[q])
                    viol0 = cur < bar0
                    tie0 = cur == bar0
                    if tie0.any():
                        pos_e0 = int(old_last_push[e])
                        pd0 = new_last_push[diverged]
                        viol0 |= tie0 & ~(
                            (pos_e0 < pd0)
                            | ((pos_e0 == pd0) & (e < diverged))
                        )
                    if viol0.any():
                        limit = q
                if diverged.size and limit > q:
                    objs = old_ordering[q:limit]
                    sub = dist[np.ix_(objs, diverged)]
                    veff = np.maximum(sub, cores[objs][:, None])
                    if np.isfinite(eps):
                        veff[sub > eps] = np.inf
                    # Reachability of each diverged column *entering*
                    # each row: the starting value overlaid with the
                    # running minimum of the pushes above the row.
                    before = np.empty_like(veff)
                    before[0] = walk.reach_by_obj[diverged]
                    if veff.shape[0] > 1:
                        np.minimum(
                            before[0],
                            np.minimum.accumulate(veff[:-1], axis=0),
                            out=before[1:],
                        )
                    pushed = veff < before
                    bars = old_reach[q:limit]
                    viol = before < bars[:, None]
                    tie = before == bars[:, None]
                    if tie.any():
                        # Ties resolve by last-push event order —
                        # ``(position, column id)``, matching counter
                        # order in both walks. A diverged column's
                        # last-push position entering a row is its
                        # running maximum over the window's pushes.
                        span = veff.shape[0]
                        rowpos = np.where(
                            pushed,
                            np.arange(q, q + span)[:, None],
                            np.int64(-1),
                        )
                        ppos = np.empty_like(rowpos)
                        ppos[0] = new_last_push[diverged]
                        if span > 1:
                            np.maximum(
                                ppos[0],
                                np.maximum.accumulate(
                                    rowpos[:-1], axis=0
                                ),
                                out=ppos[1:],
                            )
                        pos_e = old_last_push[objs][:, None]
                        ewin = (pos_e < ppos) | (
                            (pos_e == ppos)
                            & (objs[:, None] < diverged[None, :])
                        )
                        viol |= tie & ~ewin
                    bad = np.flatnonzero(viol.any(axis=1))
                    if bad.size:
                        limit = q + int(bad[0])
                        pushed = pushed[: int(bad[0])]
                        veff = veff[: int(bad[0])]
                if limit > q and sus.size:
                    # Non-diverged suspects hold their window-entry
                    # reachability until a verbatim push (which realigns
                    # them); a bar tying one cannot be resolved without
                    # its true event order, so cut there.
                    sus_nd = sus[~in_divergence[sus]]
                    if sus_nd.size:
                        tie_nd = np.flatnonzero(
                            np.isin(
                                old_reach[q:limit],
                                walk.reach_by_obj[sus_nd],
                            )
                        )
                        if tie_nd.size:
                            limit = q + int(tie_nd[0])
                            if pushed is not None:
                                pushed = pushed[: int(tie_nd[0])]
                                veff = veff[: int(tie_nd[0])]
                if limit > q:
                    seg_t = push_idx[push_off[q] : push_off[limit]]
                    seg_v = push_val[push_off[q] : push_off[limit]]
                    if pushed is None:
                        adjust = _EMPTY_POSITIONS
                    else:
                        adjust = np.flatnonzero(pushed.any(axis=1))
                        hits = np.flatnonzero(in_divergence[seg_t])
                        if hits.size:
                            hit_rows = (
                                np.searchsorted(
                                    push_off,
                                    int(push_off[q]) + hits,
                                    side="right",
                                )
                                - 1
                                - q
                            )
                            adjust = np.union1d(adjust, hit_rows)
                    if adjust.size == 0 and limit >= num:
                        # Terminal verbatim tail — assemble the plot
                        # directly, no walk state to maintain.
                        ordering = np.concatenate(
                            (walk.ordering, old_ordering[q:])
                        )
                        reach = np.concatenate(
                            (walk.reach_in_order, old_reach[q:])
                        )
                        trace = list(walk.trace or []) + list(
                            old_trace[q:]
                        )
                        spliced += num - q
                        plot = ReachabilityPlot(
                            ordering=ordering,
                            reachability=reach,
                            core_distances=cores,
                        )
                        return plot, trace, SpliceStats(spliced, live)
                    objs = old_ordering[q:limit]
                    if adjust.size == 0:
                        walk.splice_segment(
                            objs,
                            old_reach[q:limit],
                            cores[objs],
                            seg_t,
                            seg_v,
                            batches=old_trace[q:limit],
                        )
                        if seg_t.size:
                            new_last_push[seg_t] = np.repeat(
                                np.arange(q, limit),
                                np.diff(push_off[q : limit + 1]),
                            )
                    else:
                        batches = list(old_trace[q:limit])
                        for row in adjust:
                            pos = q + int(row)
                            t_old = push_idx[
                                push_off[pos] : push_off[pos + 1]
                            ]
                            v_old = push_val[
                                push_off[pos] : push_off[pos + 1]
                            ]
                            keep = ~in_divergence[t_old]
                            row_push = pushed[row]
                            merged_t = np.concatenate(
                                (t_old[keep], diverged[row_push])
                            )
                            merged_v = np.concatenate(
                                (v_old[keep], veff[row][row_push])
                            )
                            order = np.argsort(merged_t, kind="stable")
                            batches[int(row)] = (
                                merged_t[order],
                                merged_v[order],
                            )
                        all_t = np.concatenate([b[0] for b in batches])
                        walk.splice_segment(
                            objs,
                            old_reach[q:limit],
                            cores[objs],
                            all_t,
                            np.concatenate([b[1] for b in batches]),
                            batches=batches,
                        )
                        if all_t.size:
                            new_last_push[all_t] = np.repeat(
                                np.arange(q, limit),
                                np.fromiter(
                                    (b[0].size for b in batches),
                                    dtype=np.int64,
                                    count=len(batches),
                                ),
                            )
                    if seg_t.size:
                        # The *old* walk's state advances by its own
                        # recorded pushes (including those into diverged
                        # columns); verbatim pushes — to non-diverged
                        # targets — realign their counter provenance.
                        old_reach_state[seg_t] = seg_v
                        if adjust.size == 0:
                            suspect[seg_t] = False
                        else:
                            suspect[seg_t[~in_divergence[seg_t]]] = False
                    if pushed is not None and adjust.size:
                        affected = diverged[pushed.any(axis=0)]
                        if affected.size:
                            healed = affected[
                                (
                                    walk.reach_by_obj[affected]
                                    == old_reach_state[affected]
                                )
                                & ~permanent[affected]
                            ]
                            if healed.size:
                                in_divergence[healed] = False
                                diverged = diverged[
                                    in_divergence[diverged]
                                ]
                                suspect[healed] = True
                    spliced += limit - q
                    q = limit
                    continue

            # Verified single position: splice when the pop at this
            # position provably replays. A non-suspect expander's
            # ``(reachability, counter)`` relative order against every
            # other non-suspect column is exactly the old walk's — which
            # popped it here — so only a suspect could beat or tie it:
            # compare lexicographically against the (small) unprocessed
            # suspect set, whose reachabilities and counters are the
            # live algorithm's. A suspect expander falls back to the
            # walk's own pop rule (:meth:`OpticsWalk.peek_pop` is ground
            # truth for the same reason). A clean expander replays its
            # recorded pushes verbatim; pushes into diverged columns are
            # recomputed from the repaired matrix.
            if not dirty[e]:
                bar_e = float(walk.reach_by_obj[e])
                if suspect[e]:
                    pop = walk.peek_pop()
                    if pop < 0:
                        # Heap exhausted: a component reopens at the
                        # lowest unprocessed id, as in the classical
                        # loop.
                        verified = int(np.argmax(~walk.processed)) == e
                    else:
                        verified = pop == e
                elif np.isfinite(bar_e):
                    r_x = walk.reach_by_obj[sus]
                    c_x = walk.counter_by_obj[sus]
                    c_e = int(walk.counter_by_obj[e])
                    worse = (r_x < bar_e) | (
                        (r_x == bar_e) & (c_x < c_e)
                    )
                    verified = not worse.any()
                else:
                    # Component start in the old walk: it replays iff no
                    # unprocessed object has been pushed and ``e`` is
                    # the lowest unprocessed id. Non-suspect columns
                    # mirror the old walk's (empty) heap — a finite
                    # reachability the old walk lacked would have marked
                    # them suspect — so only suspects need checking.
                    verified = not np.isfinite(
                        walk.reach_by_obj[sus]
                    ).any() and int(np.argmax(~walk.processed)) == e
            else:
                verified = False
            if verified:
                bar = float(walk.reach_by_obj[e])
                if in_divergence[e]:
                    in_divergence[e] = False
                    diverged = diverged[diverged != e]
                t_old = push_idx[push_off[q] : push_off[q + 1]]
                v_old = push_val[push_off[q] : push_off[q + 1]]
                if diverged.size:
                    keep = ~in_divergence[t_old]
                    dcol = dist[e, diverged]
                    veff = np.maximum(dcol, cores[e])
                    pushed = (dcol <= eps) & (
                        veff < walk.reach_by_obj[diverged]
                    )
                    if keep.all() and not pushed.any():
                        merged_t, merged_v = t_old, v_old
                    else:
                        merged_t = np.concatenate(
                            (t_old[keep], diverged[pushed])
                        )
                        merged_v = np.concatenate(
                            (v_old[keep], veff[pushed])
                        )
                        order = np.argsort(merged_t, kind="stable")
                        merged_t = merged_t[order]
                        merged_v = merged_v[order]
                else:
                    keep = None
                    merged_t, merged_v = t_old, v_old
                walk.splice(e, bar, float(cores[e]), merged_t, merged_v)
                if merged_t.size:
                    new_last_push[merged_t] = q
                if t_old.size:
                    old_reach_state[t_old] = v_old
                spliced += 1
                q += 1
                if keep is None:
                    if t_old.size:
                        suspect[t_old] = False
                else:
                    suspect[t_old[keep]] = False
                    affected = np.concatenate(
                        (t_old[~keep], diverged[pushed])
                    )
                    if affected.size:
                        healed = affected[
                            (
                                walk.reach_by_obj[affected]
                                == old_reach_state[affected]
                            )
                            & ~permanent[affected]
                        ]
                        if healed.size:
                            in_divergence[healed] = False
                            diverged = diverged[in_divergence[diverged]]
                            suspect[healed] = True
                continue

            # Live burst: the walk *is* the from-scratch algorithm here.
            # Keep stepping until the processed sets realign, then
            # re-derive the divergence set and resume splicing.
            burst_start = q
            while not walk.done():
                obj = walk.step()
                live += 1
                assert walk.trace is not None
                stepped = walk.trace[-1][0]
                if stepped.size:
                    new_last_push[stepped] = q
                o_old = int(old_ordering[q])
                if obj != o_old:
                    if obj in only_old:
                        only_old.discard(obj)
                    else:
                        only_live.add(obj)
                    if o_old in only_live:
                        only_live.discard(o_old)
                    else:
                        only_old.add(o_old)
                q += 1
                if q >= num:
                    break
                if not only_live and not only_old:
                    old_reach_state[
                        push_idx[push_off[burst_start] : push_off[q]]
                    ] = push_val[push_off[burst_start] : push_off[q]]
                    mask = ~walk.processed & (
                        (walk.reach_by_obj != old_reach_state) | permanent
                    )
                    in_divergence = mask
                    diverged = np.flatnonzero(mask)
                    # Anything pushed during the burst — by either walk —
                    # may carry a counter from a different position.
                    suspect[
                        push_idx[push_off[burst_start] : push_off[q]]
                    ] = True
                    assert walk.trace is not None
                    for batch in walk.trace[burst_start:q]:
                        if batch[0].size:
                            suspect[batch[0]] = True
                    break

        return (
            walk.plot(),
            list(walk.trace or []),
            SpliceStats(spliced=spliced, live=live),
        )

    def _virtual(self, state: _CacheState) -> np.ndarray:
        """Virtual reachability per compact index (expansion estimate)."""
        virtual = state.cores.copy()
        fallback = ~np.isfinite(virtual) | (virtual <= 0.0)
        virtual[fallback] = state.extents[fallback]
        return virtual


# ----------------------------------------------------------------------
# Lineage
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LineageEvent:
    """One vineyard event: a leaf cluster appearing, moving, or dying.

    Attributes:
        kind: ``"born"``, ``"died"`` or ``"drifted"``.
        cluster_id: stable lineage id (persists across fits while the
            cluster keeps matching).
        fit_index: which observed fit produced the event (0-based).
        points: summarized points in the cluster at this fit (for
            ``died``, its size at the previous fit).
        gained_bubbles: bubble ids that joined since the previous fit.
        lost_bubbles: bubble ids that left since the previous fit.
    """

    kind: str
    cluster_id: int
    fit_index: int
    points: int
    gained_bubbles: tuple[int, ...] = ()
    lost_bubbles: tuple[int, ...] = ()


class ClusterLineage:
    """Matches leaf clusters across fits and records their life events.

    Leaves are identified by the set of bubble ids they span; across two
    fits, each new leaf greedily claims the previous leaf it shares the
    most summarized points with (every pair of leaves matched at most
    once). A matched leaf keeps its lineage id — identical membership is
    silent, changed membership is ``drifted``; an unmatched new leaf is
    ``born`` and an unclaimed previous leaf is ``died``.
    """

    def __init__(self) -> None:
        self._next_id = 0
        self._fit_index = -1
        self._previous: list[tuple[int, dict[int, int]]] = []
        self.events: list[LineageEvent] = []

    @property
    def fits_observed(self) -> int:
        """How many fits this lineage has seen."""
        return self._fit_index + 1

    @property
    def live_clusters(self) -> int:
        """Leaf clusters alive as of the last observed fit."""
        return len(self._previous)

    def observe(self, fit: "ClusterFit") -> list[LineageEvent]:
        """Fold one (full-quality) fit into the lineage.

        Returns:
            The events this fit produced, in cluster order.
        """
        self._fit_index += 1
        current: list[dict[int, int]] = []
        ordering = fit.plot.ordering
        for leaf in fit.tree.leaves():
            if leaf.end <= leaf.start:
                continue
            members = {
                int(fit.bubble_ids[c]): int(fit.counts[c])
                for c in ordering[leaf.start : leaf.end]
            }
            current.append(members)

        overlaps: list[tuple[int, int, int]] = []
        for new_i, members in enumerate(current):
            for prev_i, (_, prev_members) in enumerate(self._previous):
                shared = sum(
                    count
                    for bid, count in members.items()
                    if bid in prev_members
                )
                if shared > 0:
                    overlaps.append((shared, new_i, prev_i))
        overlaps.sort(key=lambda item: (-item[0], item[1], item[2]))
        new_to_prev: dict[int, int] = {}
        claimed_prev: set[int] = set()
        for _, new_i, prev_i in overlaps:
            if new_i in new_to_prev or prev_i in claimed_prev:
                continue
            new_to_prev[new_i] = prev_i
            claimed_prev.add(prev_i)

        produced: list[LineageEvent] = []
        next_previous: list[tuple[int, dict[int, int]]] = []
        for new_i, members in enumerate(current):
            points = sum(members.values())
            if new_i in new_to_prev:
                lineage_id, prev_members = self._previous[
                    new_to_prev[new_i]
                ]
                gained = tuple(
                    sorted(b for b in members if b not in prev_members)
                )
                lost = tuple(
                    sorted(b for b in prev_members if b not in members)
                )
                if gained or lost:
                    produced.append(
                        LineageEvent(
                            kind="drifted",
                            cluster_id=lineage_id,
                            fit_index=self._fit_index,
                            points=points,
                            gained_bubbles=gained,
                            lost_bubbles=lost,
                        )
                    )
            else:
                lineage_id = self._next_id
                self._next_id += 1
                produced.append(
                    LineageEvent(
                        kind="born",
                        cluster_id=lineage_id,
                        fit_index=self._fit_index,
                        points=points,
                        gained_bubbles=tuple(sorted(members)),
                    )
                )
            next_previous.append((lineage_id, members))
        for prev_i, (lineage_id, prev_members) in enumerate(
            self._previous
        ):
            if prev_i not in claimed_prev:
                produced.append(
                    LineageEvent(
                        kind="died",
                        cluster_id=lineage_id,
                        fit_index=self._fit_index,
                        points=sum(prev_members.values()),
                        lost_bubbles=tuple(sorted(prev_members)),
                    )
                )
        self._previous = next_previous
        self.events.extend(produced)
        return produced


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageResult:
    """One completed anytime stage."""

    size: int
    quality: float
    elapsed_seconds: float


@dataclass(frozen=True)
class ClusterFit:
    """One clustering answer: plot + tree + provenance.

    Attributes:
        version: the ``BubbleSet.version`` this fit reflects.
        bubble_ids: compact index → bubble id for the clustered subset.
        counts: per compact index, summarized points.
        virtual_reachability: per compact index, the expansion estimate.
        plot: the reachability plot over compact indices.
        tree: the extracted cluster tree over ordering positions.
        source: ``"hit"``, ``"repair"``, ``"rebuild"``, ``"cold"``,
            ``"anytime"`` or ``"empty"``.
        quality: fraction of all summarized points covered by the
            clustered subset (1.0 for complete fits).
        stages: completed anytime stages (empty for direct fits).
        elapsed_seconds: wall time by the clusterer's clock.
        splice: repair replay statistics (``None`` unless repaired).
    """

    version: int
    bubble_ids: np.ndarray
    counts: np.ndarray
    virtual_reachability: np.ndarray
    plot: ReachabilityPlot
    tree: ClusterTree
    source: str
    quality: float
    stages: tuple[StageResult, ...] = ()
    elapsed_seconds: float = 0.0
    splice: SpliceStats | None = None

    @property
    def num_bubbles(self) -> int:
        return int(self.bubble_ids.shape[0])

    def expanded(self) -> ExpandedPlot:
        """One plot entry per summarized point, attributed to bubble ids."""
        raw = self.plot.expand(self.counts, self.virtual_reachability)
        return ExpandedPlot(
            reachability=raw.reachability,
            source=self.bubble_ids[raw.source],
        )


def _empty_tree() -> ClusterTree:
    return ClusterTree(root=ClusterNode(start=0, end=0))


# ----------------------------------------------------------------------
# Clusterer
# ----------------------------------------------------------------------
class IncrementalClusterer:
    """Anytime "cluster me now" answers over a maintained bubble set.

    Wraps a :class:`ClusterCache` with tree extraction, deadline-bounded
    staged refinement, lineage tracking, and observability. One
    clusterer serves one bubble set (one tenant); the service layer
    holds one per shard.

    Args:
        min_pts: MinPts in points.
        eps: generating distance over bubble distances.
        min_size: smallest admissible cluster, in *bubbles*, for tree
            extraction (bubbles stand for many points, so 2 is already
            selective).
        significance: split-significance threshold for tree extraction.
        counter: shared distance counter for honest accounting.
        obs: observability handle (metrics + spans); ``None`` disables.
        clock: monotonic-seconds callable; injectable for deterministic
            deadline tests.
    """

    #: Smallest first anytime stage, in bubbles.
    FIRST_STAGE_BUBBLES = 64
    #: Growth factor between anytime stages.
    STAGE_GROWTH = 4

    def __init__(
        self,
        min_pts: int = 25,
        eps: float = np.inf,
        min_size: int = 2,
        significance: float = 0.75,
        counter: DistanceCounter | None = None,
        obs=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if min_size < 1:
            raise ValueError(f"min_size must be >= 1, got {min_size}")
        self._cache = ClusterCache(
            min_pts=min_pts, eps=eps, counter=counter
        )
        self._min_size = int(min_size)
        self._significance = float(significance)
        self._obs = obs
        self._clock = clock
        self._lineage = ClusterLineage()
        self._attached: list[tuple[object, Callable]] = []
        self._callback_touched: set[int] = set()
        self.last_fit: ClusterFit | None = None
        if obs is not None:
            self._create_metric_handles(obs)

    def _create_metric_handles(self, obs) -> None:
        m = obs.metrics
        self._m_fits = m.counter(
            "repro_cluster_fits_total",
            help="Clustering fits served (all sources).",
        )
        self._m_hits = m.counter(
            "repro_cluster_cache_hits_total",
            help="Fits answered from the version-keyed cache unchanged.",
        )
        self._m_repairs = m.counter(
            "repro_cluster_repairs_total",
            help="Fits served by incremental reachability repair.",
        )
        self._m_rebuilds = m.counter(
            "repro_cluster_rebuilds_total",
            help="Fits that re-walked from scratch (cold or id-set "
            "change).",
        )
        self._m_stages = m.counter(
            "repro_cluster_anytime_stages_total",
            help="Anytime refinement stages completed under a deadline.",
        )
        self._m_lineage = m.counter(
            "repro_cluster_lineage_events_total",
            help="Cluster lineage events recorded (born/died/drifted).",
        )
        self._m_fit_seconds = m.timer(
            "repro_cluster_fit_seconds",
            help="End-to-end latency of one clustering fit.",
        )
        self._g_leaves = m.gauge(
            "repro_cluster_leaves",
            help="Leaf clusters in the most recent full-quality tree.",
        )
        self._g_spliced = m.gauge(
            "repro_cluster_spliced_fraction",
            help="Fraction of the last repaired ordering replayed "
            "rather than re-walked.",
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache(self) -> ClusterCache:
        """The underlying version-keyed cache."""
        return self._cache

    @property
    def lineage(self) -> ClusterLineage:
        """The cluster lineage across observed full-quality fits."""
        return self._lineage

    @property
    def min_pts(self) -> int:
        return self._cache.min_pts

    def stats(self) -> dict:
        """One rollup row for service shard stats."""
        cache = self._cache
        last = self.last_fit
        return {
            "fits": cache.hits
            + cache.repairs
            + cache.rebuilds
            + cache.cold_fits,
            "cache_hits": cache.hits,
            "repairs": cache.repairs,
            "rebuilds": cache.rebuilds + cache.cold_fits,
            "last_source": last.source if last is not None else None,
            "last_quality": last.quality if last is not None else None,
            "last_leaves": (
                len(last.tree.leaves()) if last is not None else 0
            ),
            "last_spliced_fraction": (
                cache.last_splice.spliced_fraction
                if cache.last_splice is not None
                else None
            ),
            "lineage_events": len(self._lineage.events),
            "live_clusters": self._lineage.live_clusters,
        }

    # ------------------------------------------------------------------
    # Maintainer wiring
    # ------------------------------------------------------------------
    def attach(self, maintainer) -> None:
        """Subscribe to a maintainer's batch callbacks.

        Each applied batch eagerly marks its rebuilt bubbles as touched,
        so a later :meth:`fit` repairs exactly those rows even if the
        mutation log has been compacted. ``BubbleSet.touched_since``
        remains the authoritative source; the callback is a second
        witness, never a narrower one.
        """

        def _on_batch(batch, report) -> None:
            self._callback_touched.update(
                int(b) for b in report.rebuilt_bubbles
            )

        maintainer.add_batch_callback(_on_batch)
        self._attached.append((maintainer, _on_batch))

    def detach(self, maintainer) -> None:
        """Unsubscribe from a maintainer attached via :meth:`attach`."""
        for i, (owner, callback) in enumerate(self._attached):
            if owner is maintainer:
                maintainer.remove_batch_callback(callback)
                del self._attached[i]
                return

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        bubbles: BubbleSet,
        deadline_seconds: float | None = None,
    ) -> ClusterFit:
        """Cluster the current bubbles, as incrementally as possible.

        Args:
            bubbles: the live bubble set.
            deadline_seconds: soft wall-clock budget. ``None`` computes
                the complete answer directly. With a deadline, and when
                no cached state can be repaired, the fit runs *anytime*:
                nested subsets of the bubbles (largest point counts
                first) are clustered in stages of growing size, and the
                best tree completed inside the budget is returned. A
                valid tree is always produced — the first stage never
                yields to the deadline.

        Returns:
            A :class:`ClusterFit`; ``quality == 1.0`` means it covers
            every summarized point.
        """
        started = self._clock()
        with maybe_span(
            self._obs,
            "cluster_fit",
            bubbles=len(bubbles),
            deadline_seconds=deadline_seconds or 0.0,
        ):
            fit = self._fit_inner(bubbles, deadline_seconds, started)
        elapsed = self._clock() - started
        fit = _with_elapsed(fit, elapsed)
        self.last_fit = fit
        if self._obs is not None:
            self._m_fits.inc()
            if fit.source == "hit":
                self._m_hits.inc()
            elif fit.source == "repair":
                self._m_repairs.inc()
            elif fit.source in ("rebuild", "cold"):
                self._m_rebuilds.inc()
            self._m_fit_seconds.observe(elapsed)
            if fit.stages:
                self._m_stages.inc(len(fit.stages))
            if fit.quality >= 1.0:
                self._g_leaves.set(len(fit.tree.leaves()))
            if fit.splice is not None:
                self._g_spliced.set(fit.splice.spliced_fraction)
        if fit.quality >= 1.0 and fit.num_bubbles > 0:
            events = self._lineage.observe(fit)
            if self._obs is not None and events:
                self._m_lineage.inc(len(events))
        return fit

    def _fit_inner(
        self,
        bubbles: BubbleSet,
        deadline_seconds: float | None,
        started: float,
    ) -> ClusterFit:
        cache = self._cache
        state = cache.state
        version = bubbles.version
        if state is not None and state.version == version:
            cache.hits += 1
            return self._fit_from_state(state, "hit")

        anytime_eligible = deadline_seconds is not None and not (
            state is not None
            and state.plot is not None
            and np.array_equal(
                state.bubble_ids,
                np.asarray(bubbles.non_empty_ids(), dtype=np.int64),
            )
        )
        if anytime_eligible:
            return self._fit_anytime(bubbles, deadline_seconds, started)

        extra = tuple(self._callback_touched)
        repairable = (
            state is not None
            and state.plot is not None
            and np.array_equal(
                state.bubble_ids,
                np.asarray(bubbles.non_empty_ids(), dtype=np.int64),
            )
        )
        if repairable:
            with maybe_span(
                self._obs, "cluster_repair", touched=len(extra)
            ):
                state, source = cache.refresh(bubbles, extra_touched=extra)
        else:
            state, source = cache.refresh(bubbles, extra_touched=extra)
        self._callback_touched.clear()
        return self._fit_from_state(state, source)

    def _fit_from_state(
        self, state: _CacheState, source: str
    ) -> ClusterFit:
        if state.num == 0:
            return ClusterFit(
                version=state.version,
                bubble_ids=state.bubble_ids,
                counts=state.counts,
                virtual_reachability=state.virtual,
                plot=state.plot,
                tree=_empty_tree(),
                source="empty",
                quality=1.0,
            )
        if state.tree is None:
            state.tree = extract_cluster_tree(
                state.plot.reachability,
                min_size=self._min_size,
                significance=self._significance,
            )
        return ClusterFit(
            version=state.version,
            bubble_ids=state.bubble_ids,
            counts=state.counts,
            virtual_reachability=state.virtual,
            plot=state.plot,
            tree=state.tree,
            source=source,
            quality=1.0,
            splice=(
                self._cache.last_splice if source == "repair" else None
            ),
        )

    # ------------------------------------------------------------------
    # Anytime staged fitting
    # ------------------------------------------------------------------
    def _stage_sizes(self, num: int) -> list[int]:
        sizes: list[int] = []
        size = min(self.FIRST_STAGE_BUBBLES, num)
        while size < num:
            sizes.append(size)
            size *= self.STAGE_GROWTH
        sizes.append(num)
        return sizes

    def _fit_anytime(
        self,
        bubbles: BubbleSet,
        deadline_seconds: float,
        started: float,
    ) -> ClusterFit:
        non_empty = np.asarray(bubbles.non_empty_ids(), dtype=np.int64)
        num = int(non_empty.shape[0])
        if num == 0:
            state, source = self._cache.refresh(bubbles)
            return self._fit_from_state(state, source)

        counts_all = np.asarray(
            [bubbles[int(i)].n for i in non_empty], dtype=np.int64
        )
        total_points = int(counts_all.sum())
        # Largest bubbles first: each stage's subset nests in the next,
        # so covered-points quality is monotone by construction.
        by_weight = np.argsort(-counts_all, kind="stable")

        stages: list[StageResult] = []
        best: ClusterFit | None = None
        for size in self._stage_sizes(num):
            if stages and self._clock() - started >= deadline_seconds:
                break
            if size == num:
                extra = tuple(self._callback_touched)
                with maybe_span(self._obs, "cluster_stage", size=size):
                    state, source = self._cache.refresh(
                        bubbles, extra_touched=extra
                    )
                self._callback_touched.clear()
                fit = self._fit_from_state(state, source)
                quality = 1.0
            else:
                subset = np.sort(by_weight[:size])
                with maybe_span(self._obs, "cluster_stage", size=size):
                    fit = self._subset_fit(
                        bubbles, non_empty[subset], counts_all[subset]
                    )
                quality = (
                    float(counts_all[subset].sum()) / total_points
                    if total_points
                    else 1.0
                )
            stages.append(
                StageResult(
                    size=size,
                    quality=quality,
                    elapsed_seconds=self._clock() - started,
                )
            )
            best = fit
        assert best is not None
        return ClusterFit(
            version=best.version,
            bubble_ids=best.bubble_ids,
            counts=best.counts,
            virtual_reachability=best.virtual_reachability,
            plot=best.plot,
            tree=best.tree,
            source="anytime" if best.quality < 1.0 or len(stages) > 1
            else best.source,
            quality=stages[-1].quality,
            stages=tuple(stages),
        )

    def _subset_fit(
        self,
        bubbles: BubbleSet,
        subset_ids: np.ndarray,
        subset_counts: np.ndarray,
    ) -> ClusterFit:
        """A complete cold fit of one bubble subset (no caching)."""
        num = int(subset_ids.shape[0])
        reps = np.stack([bubbles[int(i)].rep for i in subset_ids])
        extents = np.asarray(
            [
                _sanitize_extent(float(bubbles[int(i)].extent))
                for i in subset_ids
            ]
        )
        internal_core = np.asarray(
            [
                _sanitize_internal_core(
                    float(bubbles[int(i)].nn_dist(self.min_pts))
                )
                for i in subset_ids
            ]
        )
        from .bubble_optics import optics_over_summaries

        plot = optics_over_summaries(
            reps,
            extents,
            subset_counts,
            internal_core,
            min_pts=self.min_pts,
            eps=self._cache.eps,
        )
        self._cache._counter.record_computed(num * (num - 1) // 2)
        virtual = plot.core_distances.copy()
        fallback = ~np.isfinite(virtual) | (virtual <= 0.0)
        virtual[fallback] = extents[fallback]
        tree = extract_cluster_tree(
            plot.reachability,
            min_size=self._min_size,
            significance=self._significance,
        )
        return ClusterFit(
            version=-1,
            bubble_ids=subset_ids,
            counts=subset_counts,
            virtual_reachability=virtual,
            plot=plot,
            tree=tree,
            source="anytime",
            quality=0.0,
        )


def _with_elapsed(fit: ClusterFit, elapsed: float) -> ClusterFit:
    """Stamp the elapsed time onto a (frozen) fit."""
    return ClusterFit(
        version=fit.version,
        bubble_ids=fit.bubble_ids,
        counts=fit.counts,
        virtual_reachability=fit.virtual_reachability,
        plot=fit.plot,
        tree=fit.tree,
        source=fit.source,
        quality=fit.quality,
        stages=fit.stages,
        elapsed_seconds=elapsed,
        splice=fit.splice,
    )
