"""Single-link agglomerative clustering — the classic hierarchical substrate.

The Single-Link method [17] is the other hierarchical algorithm the paper
names next to OPTICS. It is included both for completeness of the
"standard clustering algorithms applicable to data summaries" claim
(Section 1: the summarization strategy "allows the application of a broad
range of existing standard clustering algorithms") and because its
dendrogram provides an independent cross-check of the OPTICS hierarchy in
tests: for ``min_pts = 1``/``eps = inf``, the OPTICS reachability values
are exactly the single-link merge distances (both are the minimum spanning
tree of the data).

Implemented via Prim's MST in O(n²) time / O(n) memory, then sorted MST
edges + union-find to produce dendrogram merges — the SLINK-equivalent
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import PointMatrix

__all__ = ["SingleLink", "Dendrogram"]


@dataclass(frozen=True)
class Dendrogram:
    """Agglomerative merge history in scipy-linkage-like form.

    Attributes:
        merges: ``(n-1, 2)`` integer matrix; row ``i`` merges the two
            cluster ids given (original points are ``0..n-1``, the cluster
            created by row ``i`` has id ``n + i``).
        heights: the distance at which each merge happened, ascending.
        num_points: number of original observations ``n``.
    """

    merges: np.ndarray
    heights: np.ndarray
    num_points: int

    def cut(self, height: float) -> np.ndarray:
        """Flat labels from cutting all merges strictly above ``height``."""
        parent = np.arange(self.num_points + len(self.heights), dtype=np.int64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for i, merge_height in enumerate(self.heights):
            if merge_height > height:
                break
            a, b = self.merges[i]
            parent[find(int(a))] = self.num_points + i
            parent[find(int(b))] = self.num_points + i

        roots = {}
        labels = np.empty(self.num_points, dtype=np.int64)
        for point in range(self.num_points):
            root = find(point)
            if root not in roots:
                roots[root] = len(roots)
            labels[point] = roots[root]
        return labels

    def num_clusters_at(self, height: float) -> int:
        """How many clusters a cut at ``height`` produces."""
        return int(self.cut(height).max()) + 1


class SingleLink:
    """Single-link hierarchical clustering over points (or bubble reps).

    Example:
        >>> import numpy as np
        >>> points = np.array([[0.0], [0.1], [5.0], [5.1]])
        >>> dendro = SingleLink().fit(points)
        >>> dendro.num_clusters_at(0.5)
        2
    """

    def fit(self, points: PointMatrix) -> Dendrogram:
        """Build the single-link dendrogram of ``points``."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty (n, d) matrix, got shape {points.shape}"
            )
        num = points.shape[0]
        if num == 1:
            return Dendrogram(
                merges=np.empty((0, 2), dtype=np.int64),
                heights=np.empty(0, dtype=np.float64),
                num_points=1,
            )

        # Prim's algorithm: grow the MST from point 0.
        sq_norms = np.einsum("ij,ij->i", points, points)
        in_tree = np.zeros(num, dtype=bool)
        best_dist = np.full(num, np.inf)
        best_from = np.zeros(num, dtype=np.int64)
        edges: list[tuple[float, int, int]] = []

        current = 0
        in_tree[0] = True
        for _ in range(num - 1):
            sq = sq_norms + sq_norms[current] - 2.0 * (points @ points[current])
            np.maximum(sq, 0.0, out=sq)
            dist = np.sqrt(sq)
            closer = dist < best_dist
            best_dist[closer] = dist[closer]
            best_from[closer] = current
            best_dist[in_tree] = np.inf
            nxt = int(np.argmin(best_dist))
            edges.append((float(best_dist[nxt]), int(best_from[nxt]), nxt))
            in_tree[nxt] = True
            current = nxt

        # Sorted MST edges + union-find = single-link merges.
        edges.sort(key=lambda e: e[0])
        parent = np.arange(2 * num - 1, dtype=np.int64)
        cluster_of = np.arange(num, dtype=np.int64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        merges = np.empty((num - 1, 2), dtype=np.int64)
        heights = np.empty(num - 1, dtype=np.float64)
        for i, (height, a, b) in enumerate(edges):
            root_a, root_b = find(a), find(b)
            merges[i] = (cluster_of[root_a], cluster_of[root_b])
            heights[i] = height
            new_id = num + i
            parent[root_a] = root_b
            cluster_of[root_b] = new_id
        return Dendrogram(merges=merges, heights=heights, num_points=num)
