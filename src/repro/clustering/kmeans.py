"""Weighted k-means — the partitioning algorithm applied to summaries.

Section 1 argues that the data-summarization strategy "allows the
application of a broad range of existing standard clustering algorithms
(hierarchical and partitioning) to the data summaries", and the related
work (Aggarwal et al. [1]) clusters micro-clusters with "a modified
k-means algorithm that regards the micro clusters as points". This module
is that modification: Lloyd's algorithm over weighted points, where a data
bubble contributes its representative with weight ``n``.

k-means++-style seeding (D² sampling over the weighted points) keeps the
initialisation robust; ties and empty clusters are handled by re-seeding
the emptied centroid at the point farthest from its assigned centroid, the
standard repair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bubble_set import BubbleSet
from ..types import PointMatrix

__all__ = ["WeightedKMeans", "KMeansResult"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one weighted k-means fit.

    Attributes:
        centroids: ``(k, d)`` final cluster centres.
        labels: per-input-point cluster index, shape ``(m,)``.
        inertia: weighted sum of squared distances to assigned centroids.
        iterations: Lloyd iterations until convergence (or cap).
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int


class WeightedKMeans:
    """Lloyd's algorithm over weighted points.

    Args:
        k: number of clusters.
        max_iter: Lloyd iteration cap.
        tol: relative centroid-movement convergence threshold.
        seed: RNG seed for the k-means++ initialisation.

    Example:
        >>> import numpy as np
        >>> points = np.array([[0.0], [0.1], [10.0], [10.1]])
        >>> result = WeightedKMeans(k=2, seed=0).fit(points)
        >>> sorted(result.centroids.ravel().round(2).tolist())
        [0.05, 10.05]
    """

    def __init__(
        self,
        k: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self._k = k
        self._max_iter = max_iter
        self._tol = tol
        self._rng = np.random.default_rng(seed)

    @property
    def k(self) -> int:
        """The number of clusters."""
        return self._k

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        points: PointMatrix,
        weights: np.ndarray | None = None,
    ) -> KMeansResult:
        """Cluster ``points`` with optional non-negative weights."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty (m, d) matrix, got {points.shape}"
            )
        num = points.shape[0]
        if weights is None:
            weights = np.ones(num)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (num,) or (weights < 0).any():
                raise ValueError("weights must be non-negative, one per point")
            if weights.sum() <= 0:
                raise ValueError("weights must not all be zero")
        if num < self._k:
            raise ValueError(f"cannot form {self._k} clusters from {num} points")

        centroids = self._plus_plus_init(points, weights)
        labels = np.zeros(num, dtype=np.int64)
        iterations = 0
        for iterations in range(1, self._max_iter + 1):
            sq = self._squared_distances(points, centroids)
            labels = np.argmin(sq, axis=1)
            new_centroids = centroids.copy()
            for idx in range(self._k):
                mask = labels == idx
                mass = weights[mask].sum()
                if mass > 0:
                    new_centroids[idx] = (
                        weights[mask, None] * points[mask]
                    ).sum(axis=0) / mass
                else:
                    # Empty cluster: re-seed at the farthest point from its
                    # assigned centroid.
                    assigned_sq = sq[np.arange(num), labels]
                    new_centroids[idx] = points[int(np.argmax(assigned_sq))]
            movement = float(
                np.linalg.norm(new_centroids - centroids, axis=1).max()
            )
            centroids = new_centroids
            scale = float(np.abs(points).max()) or 1.0
            if movement <= self._tol * scale:
                break

        sq = self._squared_distances(points, centroids)
        labels = np.argmin(sq, axis=1)
        inertia = float(
            (weights * sq[np.arange(num), labels]).sum()
        )
        return KMeansResult(
            centroids=centroids,
            labels=labels.astype(np.int64),
            inertia=inertia,
            iterations=iterations,
        )

    def fit_bubbles(self, bubbles: BubbleSet) -> KMeansResult:
        """Cluster a bubble summary: representatives weighted by ``n``.

        The returned labels align with ``bubbles.non_empty_ids()`` order;
        use :meth:`bubble_labels` for an id-keyed mapping.
        """
        non_empty = bubbles.non_empty_ids()
        if not non_empty:
            raise ValueError("cannot cluster a summary with no points")
        reps = np.stack([bubbles[i].rep for i in non_empty])
        weights = np.asarray(
            [bubbles[i].n for i in non_empty], dtype=np.float64
        )
        return self.fit(reps, weights)

    def bubble_labels(self, bubbles: BubbleSet) -> dict[int, int]:
        """``{bubble id: cluster index}`` over the non-empty bubbles."""
        non_empty = bubbles.non_empty_ids()
        result = self.fit_bubbles(bubbles)
        return {
            int(bubble_id): int(label)
            for bubble_id, label in zip(non_empty, result.labels)
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _plus_plus_init(
        self, points: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """k-means++ D² seeding over weighted points."""
        num = points.shape[0]
        probs = weights / weights.sum()
        first = int(self._rng.choice(num, p=probs))
        centroids = [points[first]]
        for _ in range(1, self._k):
            sq = self._squared_distances(points, np.stack(centroids))
            closest = sq.min(axis=1)
            mass = weights * closest
            total = mass.sum()
            if total <= 0:
                # All remaining points coincide with chosen centroids.
                pick = int(self._rng.choice(num, p=probs))
            else:
                pick = int(self._rng.choice(num, p=mass / total))
            centroids.append(points[pick])
        return np.stack(centroids)

    @staticmethod
    def _squared_distances(
        points: np.ndarray, centroids: np.ndarray
    ) -> np.ndarray:
        sq = (
            np.einsum("ij,ij->i", points, points)[:, None]
            + np.einsum("ij,ij->i", centroids, centroids)[None, :]
            - 2.0 * (points @ centroids.T)
        )
        np.maximum(sq, 0.0, out=sq)
        return sq
