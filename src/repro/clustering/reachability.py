"""Reachability plots — the output representation of OPTICS.

OPTICS (Ankerst et al. 1999) does not return a flat partition; it returns a
*cluster ordering*: a permutation of the objects together with, for each
position, the **reachability distance** of that object with respect to the
objects ordered before it. Plotting those distances in order yields the
reachability plot: valleys are clusters, and nested valleys expose the
hierarchical clustering structure.

:class:`ReachabilityPlot` stores the ordering, the reachability values *in
ordering position* (``numpy.inf`` for the first object of each connected
component), and the core distances *indexed by object id*.

For data bubbles there is one extra twist (Breunig et al. 2001): a bubble
stands for ``n`` points, so to make the plot comparable to a plot over the
raw points, each bubble is *expanded* into ``n`` consecutive entries — the
first at the bubble's actual reachability, the remaining ``n - 1`` at the
bubble's **virtual reachability** (the estimated reachability points inside
the bubble have among themselves). :meth:`ReachabilityPlot.expand`
implements that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReachabilityPlot", "ExpandedPlot"]


@dataclass(frozen=True)
class ExpandedPlot:
    """A bubble reachability plot expanded to one entry per point.

    Attributes:
        reachability: per-entry reachability values, length = total points.
        source: for each entry, the id of the object (bubble) it came from.
    """

    reachability: np.ndarray
    source: np.ndarray

    def __len__(self) -> int:
        return int(self.reachability.shape[0])


@dataclass(frozen=True)
class ReachabilityPlot:
    """An OPTICS cluster ordering with reachability and core distances.

    Attributes:
        ordering: object ids in visit order, shape ``(n,)``.
        reachability: reachability of the object at each ordering position,
            shape ``(n,)``; ``inf`` marks the start of a new component.
        core_distances: core distance per *object id* (not position),
            shape ``(n,)``; ``inf`` when the object never had enough
            neighbours.
    """

    ordering: np.ndarray
    reachability: np.ndarray
    core_distances: np.ndarray

    def __post_init__(self) -> None:
        if self.ordering.shape != self.reachability.shape:
            raise ValueError("ordering and reachability must align")
        if self.ordering.ndim != 1:
            raise ValueError("a reachability plot is one-dimensional")

    def __len__(self) -> int:
        return int(self.ordering.shape[0])

    def reachability_of(self, obj: int) -> float:
        """Reachability value of one object id (position looked up)."""
        positions = np.flatnonzero(self.ordering == obj)
        if positions.size == 0:
            raise KeyError(f"object {obj} is not part of this ordering")
        return float(self.reachability[positions[0]])

    def finite_reachability(self) -> np.ndarray:
        """The finite reachability values (plot heights without the infs)."""
        return self.reachability[np.isfinite(self.reachability)]

    def expand(
        self,
        counts: np.ndarray,
        virtual_reachability: np.ndarray,
    ) -> ExpandedPlot:
        """Expand each object into ``counts[obj]`` plot entries.

        Args:
            counts: per-object point counts, indexed by object id. Objects
                with count 0 (empty bubbles) contribute a single entry so
                they remain visible/attributable.
            virtual_reachability: per-object virtual reachability, indexed
                by object id; fills the ``count - 1`` trailing entries.

        Returns:
            An :class:`ExpandedPlot` whose total length is
            ``sum(max(count, 1))`` over the ordering.
        """
        counts = np.asarray(counts, dtype=np.int64)
        virtual = np.asarray(virtual_reachability, dtype=np.float64)
        if counts.shape != virtual.shape or counts.shape[0] < len(self):
            raise ValueError(
                "counts and virtual_reachability must cover every object id"
            )
        chunks_reach: list[np.ndarray] = []
        chunks_src: list[np.ndarray] = []
        for position, obj in enumerate(self.ordering):
            count = max(int(counts[obj]), 1)
            reach = np.full(count, virtual[obj], dtype=np.float64)
            reach[0] = self.reachability[position]
            chunks_reach.append(reach)
            chunks_src.append(np.full(count, obj, dtype=np.int64))
        return ExpandedPlot(
            reachability=np.concatenate(chunks_reach),
            source=np.concatenate(chunks_src),
        )
