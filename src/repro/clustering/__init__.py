"""Hierarchical clustering substrate: OPTICS, extraction, and references.

* :class:`PointOptics` — OPTICS over raw points.
* :class:`BubbleOptics` — OPTICS over data bubbles with bubble distances,
  weighted core distances and virtual-reachability expansion.
* :mod:`~repro.clustering.extraction` — automatic cluster extraction from
  reachability plots (threshold cuts, the Sander et al. 2003 cluster tree,
  and a quantile candidate sweep).
* :mod:`~repro.clustering.incremental` — version-keyed cluster cache,
  incremental reachability repair, anytime deadline-bounded fits, and
  cluster lineage across window slides.
* :class:`DBSCAN`, :class:`SingleLink` — reference algorithms used for
  cross-checks and examples.
"""

from .bubble_optics import (
    BubbleOptics,
    BubbleOpticsResult,
    bubble_distance_matrix,
    bubble_distance_rows,
    optics_over_summaries,
)
from .cluster_tree import ClusterNode, ClusterTree
from .dbscan import DBSCAN
from .engine import OpticsWalk, run_optics
from .hierarchy import labels_at_depth, leaf_labels, render_tree
from .incremental import (
    ClusterCache,
    ClusterFit,
    ClusterLineage,
    IncrementalClusterer,
    LineageEvent,
    SpliceStats,
    StageResult,
)
from .kmeans import KMeansResult, WeightedKMeans
from .extraction import (
    clusters_at_threshold,
    extract_candidates,
    extract_cluster_tree,
    labels_from_spans,
    local_maxima,
    majority_bubble_labels,
)
from .optics import PointOptics
from .reachability import ExpandedPlot, ReachabilityPlot
from .render import render_reachability
from .singlelink import Dendrogram, SingleLink
from .snapshot import ClusteringSnapshot
from .xi import XiCluster, extract_xi

__all__ = [
    "BubbleOptics",
    "BubbleOpticsResult",
    "ClusterCache",
    "ClusterFit",
    "ClusterLineage",
    "ClusterNode",
    "ClusterTree",
    "ClusteringSnapshot",
    "DBSCAN",
    "Dendrogram",
    "ExpandedPlot",
    "IncrementalClusterer",
    "KMeansResult",
    "LineageEvent",
    "OpticsWalk",
    "PointOptics",
    "ReachabilityPlot",
    "SingleLink",
    "SpliceStats",
    "StageResult",
    "WeightedKMeans",
    "XiCluster",
    "bubble_distance_matrix",
    "bubble_distance_rows",
    "clusters_at_threshold",
    "extract_candidates",
    "extract_cluster_tree",
    "extract_xi",
    "labels_at_depth",
    "labels_from_spans",
    "leaf_labels",
    "local_maxima",
    "majority_bubble_labels",
    "optics_over_summaries",
    "render_reachability",
    "render_tree",
    "run_optics",
]
