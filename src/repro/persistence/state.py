"""The captured state of a summarizer — the unit snapshots serialize.

:class:`SummarizerState` is a plain data carrier between the live objects
(:class:`~repro.streaming.SlidingWindowSummarizer` and its
:class:`~repro.core.adaptive.AdaptiveMaintainer`) and the snapshot codec
(:mod:`repro.persistence.snapshot`). It holds everything required to resume
the incremental scheme *bit-identically*:

* the :class:`~repro.database.PointStore` content — alive ids, coordinates,
  labels, bubble ownership and the id counter (dead-id gaps included, since
  ids are never reused);
* the summary — per-bubble seeds, **raw** sufficient statistics
  ``(n, LS, SS)`` (stored verbatim, never recomputed: incremental updates
  accumulate floating point in arrival order) and member-id lists;
* the maintainer — retired-bubble set, steering parameters, and the
  maintenance RNG's bit-generator state, so replayed random choices match
  the crashed process exactly;
* the distance-counter totals, so the paper's cost accounting survives a
  restart.

The module deliberately imports nothing from :mod:`repro.streaming` —
capture/restore live as methods on the summarizer itself, which keeps the
dependency arrow pointing one way (streaming → persistence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import DonorPolicy, MaintenanceConfig, SplitStrategy

__all__ = ["SummarizerState", "config_to_dict", "config_from_dict"]


def config_to_dict(config: MaintenanceConfig) -> dict:
    """JSON-serializable form of a :class:`MaintenanceConfig`."""
    return {
        "probability": config.probability,
        "rebuild_rounds": config.rebuild_rounds,
        "donor_policy": config.donor_policy.value,
        "split_strategy": config.split_strategy.value,
        "use_triangle_inequality": config.use_triangle_inequality,
        "seed": config.seed,
        "use_seed_index": config.use_seed_index,
        "assign_workers": config.assign_workers,
    }


def config_from_dict(data: dict) -> MaintenanceConfig:
    """Inverse of :func:`config_to_dict`.

    The assignment-engine fields default when absent so snapshots
    written before they existed keep recovering (to the behaviour they
    were recorded with: serial, no spatial index).
    """
    return MaintenanceConfig(
        probability=float(data["probability"]),
        rebuild_rounds=int(data["rebuild_rounds"]),
        donor_policy=DonorPolicy(data["donor_policy"]),
        split_strategy=SplitStrategy(data["split_strategy"]),
        use_triangle_inequality=bool(data["use_triangle_inequality"]),
        seed=None if data["seed"] is None else int(data["seed"]),
        use_seed_index=bool(data.get("use_seed_index", False)),
        assign_workers=int(data.get("assign_workers", 0)),
    )


def _empty_i64() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


def _empty_f64() -> np.ndarray:
    return np.empty(0, dtype=np.float64)


@dataclass
class SummarizerState:
    """Everything needed to resume a summarizer exactly where it stopped.

    Attributes:
        dim: stream dimensionality.
        window_size: the sliding window capacity.
        points_per_bubble: adaptive-maintainer compression target.
        seed: the summarizer's construction seed.
        config: maintenance parameters in force.
        batches_applied: how many stream batches this state reflects; WAL
            records with ``seq >= batches_applied`` are the replay tail.
        bootstrapped: whether the summary has been built yet (before
            bootstrap only the buffered store exists).
        store_ids / store_points / store_labels / store_owners: the alive
            rows of the point store, aligned; owners use ``-1`` for
            unowned.
        store_next_id: the store's id counter.
        counter_computed / counter_pruned: distance-accounting totals.
        seeds: ``(B, d)`` bubble seed matrix (empty before bootstrap).
        ns / linear_sums / square_sums: raw per-bubble sufficient
            statistics, aligned with ``seeds``.
        member_offsets / member_ids: CSR-style concatenated member-id
            lists (``member_offsets`` has ``B + 1`` entries).
        retired: ids of retired bubbles.
        max_adjust: the maintainer's per-batch steering bound.
        rng_state: the maintenance RNG bit-generator state dict, or
            ``None`` before bootstrap.
    """

    dim: int
    window_size: int
    points_per_bubble: int
    seed: int | None
    config: MaintenanceConfig
    batches_applied: int
    bootstrapped: bool
    store_ids: np.ndarray = field(default_factory=_empty_i64)
    store_points: np.ndarray = field(default_factory=_empty_f64)
    store_labels: np.ndarray = field(default_factory=_empty_i64)
    store_owners: np.ndarray = field(default_factory=_empty_i64)
    store_next_id: int = 0
    counter_computed: int = 0
    counter_pruned: int = 0
    seeds: np.ndarray = field(default_factory=_empty_f64)
    ns: np.ndarray = field(default_factory=_empty_i64)
    linear_sums: np.ndarray = field(default_factory=_empty_f64)
    square_sums: np.ndarray = field(default_factory=_empty_f64)
    member_offsets: np.ndarray = field(
        default_factory=lambda: np.zeros(1, dtype=np.int64)
    )
    member_ids: np.ndarray = field(default_factory=_empty_i64)
    retired: tuple[int, ...] = ()
    max_adjust: int = 4
    rng_state: dict | None = None

    @property
    def num_bubbles(self) -> int:
        """How many bubbles (including retired ones) the state carries."""
        return int(self.seeds.shape[0]) if self.bootstrapped else 0
