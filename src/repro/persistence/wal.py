"""Append-only write-ahead log of update batches.

The durability contract of the persistence subsystem is write-ahead: every
:class:`~repro.database.UpdateBatch` is appended to this log — and flushed
to disk — *before* it is applied to the in-memory summary. After a crash,
the summary is reconstructed by loading the last snapshot and replaying the
logged batches through the normal maintenance path
(:mod:`repro.persistence.recovery`).

File format (version 2), all integers little-endian:

* an 8-byte file magic ``b"RPROWAL2"``;
* zero or more records, each
  ``[seq: u64][length: u32][crc32: u32][chain: 32B][payload]`` where
  ``seq`` is the zero-based index of the batch in the stream's lifetime,
  ``length`` is the payload size in bytes, ``crc32`` covers the packed
  ``(seq, length)`` header *and* the payload, and ``chain`` is the
  SHA-256 hash-chain digest
  ``sha256(previous_chain + pack("<QI", seq, length) + payload)`` with
  ``sha256(magic)`` as the genesis link — every record's digest covers
  the entire log before it, so any at-rest mutation (a flipped bit, a
  dropped/reordered/replayed record) breaks every subsequent link and is
  reported with the offending ``seq`` (:func:`verify_chain`, and inline
  during :meth:`WriteAheadLog.replay`);
* the payload is an in-memory ``.npz`` archive with the batch's
  ``deletions`` (int64 ids), ``insertions`` (float64 ``(m, d)`` matrix) and
  ``labels`` (int64, one per insertion) — self-describing and free of
  pickled objects.

Version-1 files (magic ``b"RPROWAL1"``, no ``chain`` field) remain fully
readable *and appendable*: an existing v1 log keeps its format for its
whole life (CRC-only integrity), while newly created logs are v2. The
CRC's coverage is identical in both versions, so the torn-tail repair
logic below is version-independent.

Failure semantics on read (:meth:`WriteAheadLog.replay`):

* a **torn final record** — the file ends mid-header or mid-payload, the
  signature of a crash during an append — is truncated away (with a
  traced ``wal_torn_tail`` warning) and replay continues with what came
  before it (the torn batch was never acknowledged as applied, so
  nothing is lost);
* a **checksum or header failure on any complete record** raises
  :class:`~repro.exceptions.WalCorruptionError`: previously fsync'd data
  is damaged and silently skipping it would replay a wrong history.

Failure semantics on write (:meth:`WriteAheadLog.append`):

* **transient** IO errors (``EIO``/``EAGAIN``/``EINTR``/``EBUSY``) are
  retried with bounded exponential backoff
  (:class:`~repro.faults.RetryPolicy`), rolling the file back to the
  last good offset between attempts;
* any append that ultimately fails rolls the file — and the handle
  position — back to the last good offset before raising, so the log
  never accumulates a half-written record from a *surviving* process.

Fault injection: the write/read/fsync paths run through
:mod:`repro.faults` (``io.wal.*`` faults plus the ``wal.*`` failpoints
declared below). With nothing armed, the hooks are a falsy check each.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..database import UpdateBatch
from ..exceptions import WalCorruptionError
from ..faults import FAILPOINTS, RetryPolicy, declare_failpoint, maybe_wrap
from ..faults import fsync as faulty_fsync
from ..observability import Observability

__all__ = [
    "ChainReport",
    "WalRecord",
    "WriteAheadLog",
    "decode_batch",
    "encode_batch",
    "verify_chain",
]

_MAGIC_V1 = b"RPROWAL1"
_MAGIC_V2 = b"RPROWAL2"
_HEADER = struct.Struct("<QII")  # seq, payload length, crc32
_CHAIN_LEN = hashlib.sha256().digest_size  # 32, the v2 chain digest

#: Cap on a single record's payload (guards against reading a garbage
#: length field as a multi-gigabyte allocation).
_MAX_PAYLOAD = 1 << 31

# Crash-matrix failpoints, each at a clean durability boundary.
_FP_APPEND_START = declare_failpoint("wal.append.start")
_FP_APPEND_FLUSHED = declare_failpoint("wal.append.flushed")
_FP_COMPACT_REWRITTEN = declare_failpoint("wal.compact.rewritten")
_FP_COMPACT_REPLACED = declare_failpoint("wal.compact.replaced")


def encode_batch(batch: UpdateBatch) -> bytes:
    """Serialize one batch to the WAL payload format."""
    buffer = io.BytesIO()
    np.savez(
        buffer,
        deletions=np.asarray(batch.deletions, dtype=np.int64),
        insertions=np.asarray(batch.insertions, dtype=np.float64),
        labels=np.asarray(batch.insertion_labels, dtype=np.int64),
    )
    return buffer.getvalue()


def decode_batch(payload: bytes) -> UpdateBatch:
    """Inverse of :func:`encode_batch`."""
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            deletions = archive["deletions"]
            insertions = archive["insertions"]
            labels = archive["labels"]
    except Exception as exc:  # zipfile/KeyError/ValueError zoo
        raise WalCorruptionError(
            f"undecodable WAL payload: {exc}"
        ) from exc
    return UpdateBatch(
        deletions=tuple(int(i) for i in deletions),
        insertions=insertions,
        insertion_labels=tuple(int(l) for l in labels),
    )


def _genesis_chain() -> bytes:
    """The chain link "before" the first record of a v2 log."""
    return hashlib.sha256(_MAGIC_V2).digest()


def _next_chain(previous: bytes, seq: int, payload: bytes) -> bytes:
    """Advance the hash chain over one record."""
    return hashlib.sha256(
        previous + struct.pack("<QI", int(seq), len(payload)) + payload
    ).digest()


@dataclass(frozen=True)
class WalRecord:
    """One durable log entry: the ``seq``-th batch of the stream."""

    seq: int
    batch: UpdateBatch


@dataclass(frozen=True)
class ChainReport:
    """Outcome of a read-only WAL integrity scan (:func:`verify_chain`).

    ``ok`` means every complete record verified (CRC, and for v2 files
    the hash chain). A torn final record — the footprint of a crash
    mid-append, not of at-rest corruption — is reported via
    ``torn_tail`` without failing the scan; callers that expect a
    cleanly closed log can still reject it. On failure ``bad_seq`` /
    ``bad_record`` locate the first offending record and ``reason`` is
    one of ``bad_magic``, ``bad_header``, ``crc_mismatch`` or
    ``chain_mismatch``.
    """

    path: str
    version: int
    records: int
    ok: bool
    torn_tail: bool = False
    bad_seq: int | None = None
    bad_record: int | None = None
    reason: str | None = None


def verify_chain(path: str | pathlib.Path) -> ChainReport:
    """Scan a WAL file end to end without mutating it.

    Recomputes every record's CRC and — for version-2 files — walks the
    SHA-256 hash chain from its genesis link, so a single flipped bit
    anywhere in the file (header, chain digest or payload) surfaces as a
    failed report naming the first record whose stored bytes disagree
    with its recomputed digest. Version-1 files (no chain field) get
    CRC-only coverage and ``version=1`` in the report so callers can
    tell the weaker guarantee apart.

    Unlike :meth:`WriteAheadLog.replay` this never repairs a torn tail:
    the file is opened read-only and left byte-identical.
    """
    path = pathlib.Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC_V2))
        if magic == _MAGIC_V2:
            version = 2
        elif magic == _MAGIC_V1:
            version = 1
        else:
            return ChainReport(
                path=str(path),
                version=0,
                records=0,
                ok=False,
                reason="bad_magic",
            )

        def torn(records: int) -> ChainReport:
            return ChainReport(
                path=str(path),
                version=version,
                records=records,
                ok=True,
                torn_tail=True,
            )

        def bad(records: int, seq: int, reason: str) -> ChainReport:
            return ChainReport(
                path=str(path),
                version=version,
                records=records,
                ok=False,
                bad_seq=int(seq),
                bad_record=records,
                reason=reason,
            )

        chain = _genesis_chain()
        records = 0
        while True:
            header_bytes = handle.read(_HEADER.size)
            if not header_bytes:
                break
            if len(header_bytes) < _HEADER.size:
                return torn(records)
            seq, length, crc = _HEADER.unpack(header_bytes)
            if length >= _MAX_PAYLOAD:
                return bad(records, seq, "bad_header")
            stored_chain = b""
            if version == 2:
                stored_chain = handle.read(_CHAIN_LEN)
                if len(stored_chain) < _CHAIN_LEN:
                    return torn(records)
            payload = handle.read(length)
            if len(payload) < length:
                return torn(records)
            if crc != zlib.crc32(struct.pack("<QI", seq, length) + payload):
                if not handle.read(1):
                    # Final record, short of its advertised bytes on
                    # disk: a torn write, indistinguishable from (and
                    # treated as) a crashed append.
                    return torn(records)
                return bad(records, seq, "crc_mismatch")
            if version == 2:
                chain = _next_chain(chain, seq, payload)
                if stored_chain != chain:
                    # A complete record with a valid CRC can only carry
                    # a wrong chain digest through at-rest mutation —
                    # torn writes always leave the record short.
                    return bad(records, seq, "chain_mismatch")
            records += 1
        return ChainReport(
            path=str(path), version=version, records=records, ok=True
        )


class WriteAheadLog:
    """Checksummed, length-prefixed append-only log in a single file.

    Args:
        path: the log file; created (with its magic header) when missing.
        fsync: whether appends flush through to the disk before returning.
            Leave on for crash durability; tests and benchmarks may turn it
            off for speed (process-crash safety is retained either way —
            only power-loss safety is weakened).
        retry: backoff policy for transient IO errors on appends and
            compactions; a default 3-attempt policy when omitted.
        obs: observability handle; torn-tail repairs and IO retries are
            counted and traced here. ``None`` disables instrumentation.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        fsync: bool = True,
        retry: RetryPolicy | None = None,
        obs: Observability | None = None,
    ) -> None:
        self._path = pathlib.Path(path)
        self._fsync = bool(fsync)
        self._retry = retry if retry is not None else RetryPolicy()
        self._obs = obs
        created = False
        if not self._path.exists():
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with open(self._path, "wb") as handle:
                handle.write(_MAGIC_V2)
                handle.flush()
                os.fsync(handle.fileno())
            created = True
        self._handle = open(self._path, "r+b")
        magic = self._handle.read(len(_MAGIC_V2))
        if magic == _MAGIC_V2:
            self._version = 2
        elif magic == _MAGIC_V1:
            # A log written before the hash chain existed: keep reading
            # and appending in its native CRC-only format for its whole
            # life rather than mixing record layouts in one file.
            self._version = 1
        else:
            self._handle.close()
            raise WalCorruptionError(
                f"{self._path} is not a WAL file (magic {magic!r})"
            )
        # v2 chain head; computed lazily by replay()/_chain_tip() for
        # pre-existing files so plain opens stay O(1).
        self._chain: bytes | None = _genesis_chain() if created else None
        self._handle.seek(0, os.SEEK_END)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @property
    def path(self) -> pathlib.Path:
        """The log file location."""
        return self._path

    @property
    def version(self) -> int:
        """On-disk format version (1 = CRC only, 2 = hash-chained)."""
        return self._version

    @property
    def chained(self) -> bool:
        """Whether records carry the SHA-256 hash-chain digest."""
        return self._version == 2

    def _chain_tip(self) -> bytes:
        """Current chain head, scanning the file on first use (v2 only)."""
        if self._chain is None:
            # replay() walks every record from the genesis link, repairs
            # a torn tail, and leaves self._chain at the verified head.
            self.replay()
            assert self._chain is not None
        return self._chain

    def append(self, seq: int, batch: UpdateBatch) -> int:
        """Durably append one batch as record ``seq``.

        The record is flushed (and fsync'd unless disabled) before this
        returns — the write-ahead guarantee callers rely on. Returns the
        number of bytes appended (header + payload).

        Transient IO errors are retried with backoff; each retry (and a
        final failure) rolls the file and handle back to the last good
        offset, so a failed append leaves the log exactly as it was.
        """
        payload = encode_batch(batch)
        header = _HEADER.pack(
            int(seq),
            len(payload),
            zlib.crc32(struct.pack("<QI", int(seq), len(payload)) + payload),
        )
        chain = b""
        if self._version == 2:
            chain = _next_chain(self._chain_tip(), int(seq), payload)
        FAILPOINTS.fire(_FP_APPEND_START)
        self._handle.seek(0, os.SEEK_END)
        start = self._handle.tell()

        def write_record() -> None:
            self._handle.seek(0, os.SEEK_END)
            handle = maybe_wrap(self._handle, "wal")
            handle.write(header)
            if chain:
                handle.write(chain)
            handle.write(payload)
            handle.flush()
            if self._fsync:
                faulty_fsync(self._handle.fileno(), "wal")

        def roll_back_and_count(attempt: int, exc: BaseException) -> None:
            self._rollback_to(start)
            self._note_retry("wal_append", attempt, exc)

        try:
            self._retry.call(write_record, on_retry=roll_back_and_count)
        except BaseException:
            # A mid-write failure must not leave the handle position (or
            # a half-written record) behind: seek/truncate back to the
            # last good offset before raising, so the next append — or a
            # replay by this same process — starts from a clean tail.
            self._rollback_to(start)
            raise
        if self._version == 2:
            # Only a durably written record advances the chain head; a
            # rolled-back append leaves both the file and the chain as
            # they were.
            self._chain = chain
        FAILPOINTS.fire(_FP_APPEND_FLUSHED)
        return len(header) + len(chain) + len(payload)

    def _rollback_to(self, offset: int) -> None:
        """Best-effort restoration of the log to ``offset`` bytes."""
        self._handle.seek(offset)
        self._handle.truncate(offset)
        with contextlib.suppress(OSError):
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

    def _note_retry(
        self, operation: str, attempt: int, exc: BaseException
    ) -> None:
        if self._obs is None:
            return
        self._obs.metrics.counter(
            "repro_io_retries_total",
            help="Transient IO errors retried with backoff.",
            labels={"operation": operation},
        ).inc()
        self._obs.emit(
            "io_retry",
            operation=operation,
            attempt=attempt,
            error=repr(exc),
        )

    def reset(self) -> None:
        """Drop every record (checkpoint truncation after a snapshot)."""
        self._handle.seek(len(_MAGIC_V2))
        self._handle.truncate()
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        # The chain is per-file content: an emptied log restarts it.
        self._chain = _genesis_chain() if self._version == 2 else None

    def compact(self, min_seq: int) -> int:
        """Atomically drop records with ``seq < min_seq``.

        Checkpoint truncation keeps the tail since the *oldest retained*
        snapshot (not just the newest), so that recovery can fall back to
        an older snapshot — and still replay forward — when the newest is
        corrupted at rest. The rewrite goes through a temporary file and
        an ``os.replace`` so a crash mid-compaction leaves the previous
        log intact. Returns the number of records dropped.
        """
        records = self.replay()
        keep = [r for r in records if r.seq >= min_seq]
        tmp = self._path.with_name(self._path.name + ".tmp")
        magic = _MAGIC_V2 if self._version == 2 else _MAGIC_V1
        rewritten_chain = _genesis_chain()

        def rewrite() -> None:
            nonlocal rewritten_chain
            rewritten_chain = _genesis_chain()
            with open(tmp, "wb") as raw:
                handle = maybe_wrap(raw, "wal")
                handle.write(magic)
                for record in keep:
                    payload = encode_batch(record.batch)
                    header = _HEADER.pack(
                        record.seq,
                        len(payload),
                        zlib.crc32(
                            struct.pack("<QI", record.seq, len(payload))
                            + payload
                        ),
                    )
                    handle.write(header)
                    if self._version == 2:
                        rewritten_chain = _next_chain(
                            rewritten_chain, record.seq, payload
                        )
                        handle.write(rewritten_chain)
                    handle.write(payload)
                handle.flush()
                if self._fsync:
                    faulty_fsync(raw.fileno(), "wal")

        def discard_and_count(attempt: int, exc: BaseException) -> None:
            tmp.unlink(missing_ok=True)
            self._note_retry("wal_compact", attempt, exc)

        try:
            self._retry.call(rewrite, on_retry=discard_and_count)
        except BaseException:
            # The original log is untouched; a leftover tmp is swept by
            # the checkpoint manager on the next startup.
            tmp.unlink(missing_ok=True)
            raise
        FAILPOINTS.fire(_FP_COMPACT_REWRITTEN)
        self._handle.close()
        os.replace(tmp, self._path)
        FAILPOINTS.fire(_FP_COMPACT_REPLACED)
        self._handle = open(self._path, "r+b")
        self._handle.seek(0, os.SEEK_END)
        if self._version == 2:
            # The rewritten file restarted the chain over the kept records.
            self._chain = rewritten_chain
        return len(records) - len(keep)

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay(self) -> list[WalRecord]:
        """Read every intact record, repairing a torn tail in place.

        Returns the records in append order. A torn final record is
        truncated from the file so subsequent appends extend a clean log.

        For version-2 files the SHA-256 hash chain is verified inline —
        recovery therefore detects a diverged or mutated history for
        free, before any batch is re-applied.

        Raises:
            WalCorruptionError: a complete record fails its checksum,
                carries an impossible header, or (v2) disagrees with the
                recomputed hash chain — the log cannot be trusted.
        """
        self._handle.seek(len(_MAGIC_V2))
        handle = maybe_wrap(self._handle, "wal")
        records: list[WalRecord] = []
        good_end = len(_MAGIC_V2)
        chain = _genesis_chain()
        while True:
            header_bytes = handle.read(_HEADER.size)
            if not header_bytes:
                break
            if len(header_bytes) < _HEADER.size:
                self._repair_torn_tail(good_end, len(records), "mid_header")
                break
            seq, length, crc = _HEADER.unpack(header_bytes)
            if length >= _MAX_PAYLOAD:
                raise WalCorruptionError(
                    f"record {len(records)} in {self._path} declares an "
                    f"absurd payload of {length} bytes"
                )
            stored_chain = b""
            if self._version == 2:
                stored_chain = handle.read(_CHAIN_LEN)
                if len(stored_chain) < _CHAIN_LEN:
                    self._repair_torn_tail(
                        good_end, len(records), "mid_chain"
                    )
                    break
            payload = handle.read(length)
            if len(payload) < length:
                self._repair_torn_tail(good_end, len(records), "mid_payload")
                break
            expected = zlib.crc32(
                struct.pack("<QI", seq, length) + payload
            )
            if crc != expected:
                if self._at_eof():
                    # The final record's bytes were only partially persisted
                    # before the crash: a torn write, not corruption.
                    self._repair_torn_tail(
                        good_end, len(records), "checksum_at_eof"
                    )
                    break
                raise WalCorruptionError(
                    f"checksum mismatch on record {len(records)} of "
                    f"{self._path} (seq {seq}); the log is corrupt before "
                    "its tail and cannot be replayed safely"
                )
            if self._version == 2:
                chain = _next_chain(chain, seq, payload)
                if stored_chain != chain:
                    # Torn writes leave the record short, so a complete
                    # record with a valid CRC but the wrong chain digest
                    # means the log's history was mutated at rest (or
                    # diverged from the chain that wrote it).
                    raise WalCorruptionError(
                        f"hash-chain divergence on record {len(records)} "
                        f"of {self._path} (seq {seq}); the log's history "
                        "does not match its chained digests and cannot "
                        "be replayed safely"
                    )
            records.append(WalRecord(seq=int(seq), batch=decode_batch(payload)))
            good_end = self._handle.tell()
        if self._version == 2:
            self._chain = chain
        self._handle.seek(0, os.SEEK_END)
        return records

    def _repair_torn_tail(
        self, good_end: int, intact_records: int, reason: str
    ) -> None:
        """Truncate a torn final record, tracing the repair as a warning."""
        self._handle.seek(0, os.SEEK_END)
        dropped = self._handle.tell() - good_end
        self._truncate_to(good_end)
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_wal_torn_tails_total",
                help="Torn final WAL records truncated during replay.",
            ).inc()
            self._obs.emit(
                "wal_torn_tail",
                reason=reason,
                dropped_bytes=int(dropped),
                intact_records=int(intact_records),
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _at_eof(self) -> bool:
        position = self._handle.tell()
        at_end = not self._handle.read(1)
        self._handle.seek(position)
        return at_end

    def _truncate_to(self, offset: int) -> None:
        self._handle.seek(offset)
        self._handle.truncate()
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteAheadLog(path={str(self._path)!r})"
