"""Append-only write-ahead log of update batches.

The durability contract of the persistence subsystem is write-ahead: every
:class:`~repro.database.UpdateBatch` is appended to this log — and flushed
to disk — *before* it is applied to the in-memory summary. After a crash,
the summary is reconstructed by loading the last snapshot and replaying the
logged batches through the normal maintenance path
(:mod:`repro.persistence.recovery`).

File format (version 1), all integers little-endian:

* an 8-byte file magic ``b"RPROWAL1"``;
* zero or more records, each ``[seq: u64][length: u32][crc32: u32][payload]``
  where ``seq`` is the zero-based index of the batch in the stream's
  lifetime, ``length`` is the payload size in bytes and ``crc32`` covers
  the packed ``(seq, length)`` header *and* the payload;
* the payload is an in-memory ``.npz`` archive with the batch's
  ``deletions`` (int64 ids), ``insertions`` (float64 ``(m, d)`` matrix) and
  ``labels`` (int64, one per insertion) — self-describing and free of
  pickled objects.

Failure semantics on read (:meth:`WriteAheadLog.replay`):

* a **torn final record** — the file ends mid-header or mid-payload, the
  signature of a crash during an append — is truncated away and replay
  continues with what came before it (the torn batch was never
  acknowledged as applied, so nothing is lost);
* a **checksum or header failure on any complete record** raises
  :class:`~repro.exceptions.WalCorruptionError`: previously fsync'd data
  is damaged and silently skipping it would replay a wrong history.
"""

from __future__ import annotations

import io
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..database import UpdateBatch
from ..exceptions import WalCorruptionError

__all__ = ["WalRecord", "WriteAheadLog", "encode_batch", "decode_batch"]

_MAGIC = b"RPROWAL1"
_HEADER = struct.Struct("<QII")  # seq, payload length, crc32

#: Cap on a single record's payload (guards against reading a garbage
#: length field as a multi-gigabyte allocation).
_MAX_PAYLOAD = 1 << 31


def encode_batch(batch: UpdateBatch) -> bytes:
    """Serialize one batch to the WAL payload format."""
    buffer = io.BytesIO()
    np.savez(
        buffer,
        deletions=np.asarray(batch.deletions, dtype=np.int64),
        insertions=np.asarray(batch.insertions, dtype=np.float64),
        labels=np.asarray(batch.insertion_labels, dtype=np.int64),
    )
    return buffer.getvalue()


def decode_batch(payload: bytes) -> UpdateBatch:
    """Inverse of :func:`encode_batch`."""
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            deletions = archive["deletions"]
            insertions = archive["insertions"]
            labels = archive["labels"]
    except Exception as exc:  # zipfile/KeyError/ValueError zoo
        raise WalCorruptionError(
            f"undecodable WAL payload: {exc}"
        ) from exc
    return UpdateBatch(
        deletions=tuple(int(i) for i in deletions),
        insertions=insertions,
        insertion_labels=tuple(int(l) for l in labels),
    )


@dataclass(frozen=True)
class WalRecord:
    """One durable log entry: the ``seq``-th batch of the stream."""

    seq: int
    batch: UpdateBatch


class WriteAheadLog:
    """Checksummed, length-prefixed append-only log in a single file.

    Args:
        path: the log file; created (with its magic header) when missing.
        fsync: whether appends flush through to the disk before returning.
            Leave on for crash durability; tests and benchmarks may turn it
            off for speed (process-crash safety is retained either way —
            only power-loss safety is weakened).
    """

    def __init__(self, path: str | pathlib.Path, fsync: bool = True) -> None:
        self._path = pathlib.Path(path)
        self._fsync = bool(fsync)
        if not self._path.exists():
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with open(self._path, "wb") as handle:
                handle.write(_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
        self._handle = open(self._path, "r+b")
        magic = self._handle.read(len(_MAGIC))
        if magic != _MAGIC:
            self._handle.close()
            raise WalCorruptionError(
                f"{self._path} is not a version-1 WAL file "
                f"(magic {magic!r})"
            )
        self._handle.seek(0, os.SEEK_END)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @property
    def path(self) -> pathlib.Path:
        """The log file location."""
        return self._path

    def append(self, seq: int, batch: UpdateBatch) -> int:
        """Durably append one batch as record ``seq``.

        The record is flushed (and fsync'd unless disabled) before this
        returns — the write-ahead guarantee callers rely on. Returns the
        number of bytes appended (header + payload).
        """
        payload = encode_batch(batch)
        header = _HEADER.pack(
            int(seq),
            len(payload),
            zlib.crc32(struct.pack("<QI", int(seq), len(payload)) + payload),
        )
        self._handle.seek(0, os.SEEK_END)
        self._handle.write(header)
        self._handle.write(payload)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        return len(header) + len(payload)

    def reset(self) -> None:
        """Drop every record (checkpoint truncation after a snapshot)."""
        self._handle.seek(len(_MAGIC))
        self._handle.truncate()
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def compact(self, min_seq: int) -> int:
        """Atomically drop records with ``seq < min_seq``.

        Checkpoint truncation keeps the tail since the *oldest retained*
        snapshot (not just the newest), so that recovery can fall back to
        an older snapshot — and still replay forward — when the newest is
        corrupted at rest. The rewrite goes through a temporary file and
        an ``os.replace`` so a crash mid-compaction leaves the previous
        log intact. Returns the number of records dropped.
        """
        records = self.replay()
        keep = [r for r in records if r.seq >= min_seq]
        tmp = self._path.with_name(self._path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(_MAGIC)
            for record in keep:
                payload = encode_batch(record.batch)
                header = _HEADER.pack(
                    record.seq,
                    len(payload),
                    zlib.crc32(
                        struct.pack("<QI", record.seq, len(payload)) + payload
                    ),
                )
                handle.write(header)
                handle.write(payload)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp, self._path)
        self._handle = open(self._path, "r+b")
        self._handle.seek(0, os.SEEK_END)
        return len(records) - len(keep)

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay(self) -> list[WalRecord]:
        """Read every intact record, repairing a torn tail in place.

        Returns the records in append order. A torn final record is
        truncated from the file so subsequent appends extend a clean log.

        Raises:
            WalCorruptionError: a complete record fails its checksum or
                carries an impossible header — the log cannot be trusted.
        """
        self._handle.seek(len(_MAGIC))
        records: list[WalRecord] = []
        good_end = len(_MAGIC)
        while True:
            header_bytes = self._handle.read(_HEADER.size)
            if not header_bytes:
                break
            if len(header_bytes) < _HEADER.size:
                self._truncate_to(good_end)
                break
            seq, length, crc = _HEADER.unpack(header_bytes)
            if length >= _MAX_PAYLOAD:
                raise WalCorruptionError(
                    f"record {len(records)} in {self._path} declares an "
                    f"absurd payload of {length} bytes"
                )
            payload = self._handle.read(length)
            if len(payload) < length:
                self._truncate_to(good_end)
                break
            expected = zlib.crc32(
                struct.pack("<QI", seq, length) + payload
            )
            if crc != expected:
                if self._at_eof():
                    # The final record's bytes were only partially persisted
                    # before the crash: a torn write, not corruption.
                    self._truncate_to(good_end)
                    break
                raise WalCorruptionError(
                    f"checksum mismatch on record {len(records)} of "
                    f"{self._path} (seq {seq}); the log is corrupt before "
                    "its tail and cannot be replayed safely"
                )
            records.append(WalRecord(seq=int(seq), batch=decode_batch(payload)))
            good_end = self._handle.tell()
        self._handle.seek(0, os.SEEK_END)
        return records

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _at_eof(self) -> bool:
        position = self._handle.tell()
        at_end = not self._handle.read(1)
        self._handle.seek(position)
        return at_end

    def _truncate_to(self, offset: int) -> None:
        self._handle.seek(offset)
        self._handle.truncate()
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteAheadLog(path={str(self._path)!r})"
