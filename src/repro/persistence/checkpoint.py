"""Checkpoint manager: directory layout, snapshot cadence, WAL truncation.

One durable summarizer owns one state directory::

    <wal_dir>/
        manifest.json          construction parameters + format version
        wal.log                the write-ahead log (repro.persistence.wal)
        snapshot-000000000024.npz   state after the first 24 batches
        snapshot-000000000016.npz   an older snapshot kept as fallback

The manager snapshots every ``interval`` applied batches and then truncates
the WAL. The ordering is what makes this crash-safe without any atomicity
across the two files: the snapshot (written atomically, see
``snapshot.py``) lands first, and only then is the log reset. A crash in
between leaves old records whose ``seq`` precedes the snapshot's
``batches_applied`` — recovery simply skips them.

A bounded number of older snapshots is retained so that a damaged newest
snapshot degrades recovery (older snapshot + longer replay) instead of
defeating it. The WAL-truncation-at-checkpoint step means replaying from an
older snapshot is only possible while its tail is still in the log, so
``keep`` > 1 primarily guards against a snapshot corrupted *at rest* being
the only copy.

Degraded-mode behaviour:

* a snapshot that fails to load is **quarantined** — renamed to
  ``<name>.corrupt`` (never deleted, so forensics stay possible) with a
  traced ``snapshot_quarantined`` warning — and :meth:`latest_state`
  falls back to the previous generation;
* stale ``*.tmp`` files left by a crash mid-write are swept (with a
  traced ``stale_tmp_removed`` warning) when the manager opens the
  directory, so they cannot accumulate across crash loops.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import time

from ..exceptions import PersistenceError, SnapshotError
from ..faults import FAILPOINTS, RetryPolicy, declare_failpoint, maybe_wrap
from ..observability import Observability
from ..observability.spans import maybe_span
from .snapshot import read_snapshot, write_snapshot
from .state import SummarizerState
from .wal import WriteAheadLog

__all__ = ["CheckpointManager", "MANIFEST_VERSION"]

MANIFEST_VERSION = 1

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.npz$")

# Crash-matrix failpoints: snapshot_written sits between "snapshot
# durable" and "WAL compacted" (recovery must skip the now-redundant
# records); manifest_tmp_written leaves a directory with no manifest.
_FP_SNAPSHOT_WRITTEN = declare_failpoint("checkpoint.snapshot_written")
_FP_DONE = declare_failpoint("checkpoint.done")
_FP_MANIFEST_TMP = declare_failpoint("manifest.tmp_written")


class CheckpointManager:
    """Owns one durable-state directory.

    Args:
        wal_dir: the state directory; created when missing.
        interval: snapshot every this many applied batches.
        keep: how many snapshots to retain (newest first).
        fsync: whether WAL appends and snapshot writes flush to disk.
        retry: backoff policy for transient IO errors on WAL appends and
            snapshot writes; a default 3-attempt policy when omitted.
        obs: observability handle; ``None`` disables instrumentation.
    """

    def __init__(
        self,
        wal_dir: str | pathlib.Path,
        interval: int = 16,
        keep: int = 2,
        fsync: bool = True,
        retry: RetryPolicy | None = None,
        obs: Observability | None = None,
    ) -> None:
        if interval < 1:
            raise PersistenceError(
                f"checkpoint interval must be >= 1, got {interval}"
            )
        if keep < 1:
            raise PersistenceError(f"keep must be >= 1, got {keep}")
        self._dir = pathlib.Path(wal_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._interval = int(interval)
        self._keep = int(keep)
        self._fsync = bool(fsync)
        self._retry = retry if retry is not None else RetryPolicy()
        self._obs = obs
        self._sweep_stale_tmp()
        self._wal = WriteAheadLog(
            self._dir / "wal.log", fsync=fsync, retry=self._retry, obs=obs
        )
        self._create_metric_handles(obs)

    def _sweep_stale_tmp(self) -> None:
        """Remove ``*.tmp`` leftovers from crashes mid-atomic-write.

        Every durable artifact in this directory is written to a ``.tmp``
        sibling and ``os.replace``d into place, so any surviving ``.tmp``
        is — by construction — an incomplete write from a dead process.
        Removing it is safe (its content was never acknowledged) and
        keeps crash loops from littering the directory.
        """
        for stale in sorted(self._dir.glob("*.tmp")):
            try:
                size = stale.stat().st_size
                stale.unlink()
            except OSError:  # pragma: no cover - racing/readonly dirs
                continue
            if self._obs is not None:
                self._obs.metrics.counter(
                    "repro_stale_tmp_removed_total",
                    help="Stale *.tmp files swept at startup (crash "
                    "leftovers).",
                ).inc()
                self._obs.emit(
                    "stale_tmp_removed", path=stale.name, bytes=int(size)
                )

    def _create_metric_handles(self, obs: Observability | None) -> None:
        if obs is None:
            return
        m = obs.metrics
        self._m_snapshots = m.counter(
            "repro_snapshot_writes_total",
            help="Snapshot files written by checkpoints.",
        )
        self._m_snapshot_bytes = m.counter(
            "repro_snapshot_bytes_total",
            help="Bytes written into snapshot files.",
            unit="bytes",
        )
        self._m_snapshot_seconds = m.timer(
            "repro_snapshot_seconds",
            help="Wall time of one snapshot write plus WAL compaction.",
        )
        self._m_compactions = m.counter(
            "repro_wal_compactions_total",
            help="WAL compactions performed at checkpoints.",
        )
        self._m_compacted_records = m.counter(
            "repro_wal_compacted_records_total",
            help="WAL records dropped by compaction.",
        )

    # ------------------------------------------------------------------
    # Layout accessors
    # ------------------------------------------------------------------
    @property
    def directory(self) -> pathlib.Path:
        """The managed state directory."""
        return self._dir

    @property
    def wal(self) -> WriteAheadLog:
        """The directory's write-ahead log."""
        return self._wal

    @property
    def interval(self) -> int:
        """Batches between snapshots."""
        return self._interval

    @property
    def manifest_path(self) -> pathlib.Path:
        """Location of the manifest file."""
        return self._dir / "manifest.json"

    def snapshot_paths(self) -> list[pathlib.Path]:
        """Existing snapshot files, newest (highest batch count) first."""
        found = []
        for entry in self._dir.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        return [path for _, path in sorted(found, reverse=True)]

    def has_state(self) -> bool:
        """Whether the directory already holds durable state."""
        return self.manifest_path.exists()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def write_manifest(self, params: dict) -> None:
        """Persist construction parameters (atomically) for recovery."""
        document = {"manifest_version": MANIFEST_VERSION, **params}
        payload = (
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        tmp = self.manifest_path.with_name("manifest.json.tmp")
        with open(tmp, "wb") as raw:
            handle = maybe_wrap(raw, "manifest")
            handle.write(payload)
            handle.flush()
            if self._fsync:
                os.fsync(raw.fileno())
        FAILPOINTS.fire(_FP_MANIFEST_TMP)
        os.replace(tmp, self.manifest_path)

    def read_manifest(self) -> dict:
        """Load the manifest written at initialization.

        Raises:
            PersistenceError: when the manifest is missing or unreadable —
                there is nothing to recover from.
        """
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            raise PersistenceError(
                f"{self._dir} holds no durable summarizer state "
                "(manifest.json is missing)"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise PersistenceError(
                f"unreadable manifest in {self._dir}: {exc}"
            ) from exc
        version = int(document.get("manifest_version", -1))
        if version != MANIFEST_VERSION:
            raise PersistenceError(
                f"unsupported manifest version {version} in {self._dir}"
            )
        return document

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def maybe_checkpoint(self, state: SummarizerState) -> bool:
        """Snapshot if the cadence says so; returns whether it did."""
        if state.batches_applied == 0:
            return False
        if state.batches_applied % self._interval != 0:
            return False
        self.checkpoint(state)
        return True

    def checkpoint(self, state: SummarizerState) -> pathlib.Path:
        """Write a snapshot of ``state`` and compact the WAL.

        The log keeps the records since the *oldest retained* snapshot:
        the newest snapshot makes them redundant for the primary recovery
        path, but they are exactly what lets
        :meth:`latest_state`'s fallback to an older snapshot still replay
        forward when the newest file is corrupted at rest.
        """
        started = time.perf_counter()
        with maybe_span(
            self._obs, "checkpoint", batches=state.batches_applied
        ):
            path = self._dir / f"snapshot-{state.batches_applied:012d}.npz"
            write_snapshot(
                path, state, fsync=self._fsync, retry=self._retry
            )
            FAILPOINTS.fire(_FP_SNAPSHOT_WRITTEN)
            self._prune_snapshots()
            retained = self.snapshot_paths()
            oldest = (
                min(
                    int(_SNAPSHOT_RE.match(p.name).group(1))
                    for p in retained
                )
                if retained
                else state.batches_applied
            )
            dropped = self._wal.compact(oldest)
        if self._obs is not None:
            elapsed = time.perf_counter() - started
            size = path.stat().st_size
            self._m_snapshots.inc()
            self._m_snapshot_bytes.inc(size)
            self._m_snapshot_seconds.observe(elapsed)
            self._m_compactions.inc()
            self._m_compacted_records.inc(dropped)
            self._obs.emit(
                "snapshot_write",
                batches=state.batches_applied,
                bytes=size,
                seconds=elapsed,
            )
            self._obs.emit(
                "wal_compaction",
                min_seq=oldest,
                dropped_records=dropped,
            )
        FAILPOINTS.fire(_FP_DONE)
        return path

    def latest_state(self) -> SummarizerState | None:
        """The newest snapshot that loads cleanly, or ``None``.

        Damaged snapshots (torn at rest, version drift) are
        **quarantined** — renamed to ``<name>.corrupt`` so a later read
        cannot trip over them again and forensics stay possible — and
        skipped in favour of older ones; recovery then replays a longer
        WAL tail.
        """
        for path in self.snapshot_paths():
            try:
                return read_snapshot(path)
            except SnapshotError as exc:
                self._quarantine_snapshot(path, exc)
                continue
        return None

    def _quarantine_snapshot(
        self, path: pathlib.Path, exc: SnapshotError
    ) -> None:
        """Rename a damaged snapshot to ``*.corrupt`` (never delete it)."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - read-only directory
            return
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_snapshots_quarantined_total",
                help="Damaged snapshots renamed to *.corrupt during "
                "recovery.",
            ).inc()
            self._obs.emit(
                "snapshot_quarantined",
                path=path.name,
                renamed_to=target.name,
                reason=str(exc),
            )

    def close(self) -> None:
        """Release the WAL file handle."""
        self._wal.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _prune_snapshots(self) -> None:
        for stale in self.snapshot_paths()[self._keep:]:
            stale.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CheckpointManager(dir={str(self._dir)!r}, "
            f"interval={self._interval})"
        )
